"""Tests of the approximate project call graph (`repro.analysis.callgraph`).

Two tiers: synthetic multi-module fixtures pinning each resolution
capability (module-qualified calls, imported names, method calls of every
flavour, nested closures, entry-point detection), and a closure over the
real ``src/`` tree pinning the two acceptance facts the interprocedural
rules rest on — ``_bake_geometry_task`` is worker-shipped, the
pipeline's orchestrating ``run`` is not.
"""

from __future__ import annotations

import pytest

from repro.analysis.callgraph import (
    build_call_graph,
    concurrent_scope,
    format_chain,
    module_name_for_path,
    worker_shipped_scope,
)
from repro.analysis.engine import iter_python_files, load_module


def graph_of(sources: dict):
    """Build a call graph from ``{path: source}`` fixture modules."""
    modules = []
    for path, source in sources.items():
        module = load_module(path, source=source)
        assert module is not None, f"fixture {path} must parse"
        modules.append(module)
    return build_call_graph(modules)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name_for_path("src/repro/exec/dag.py") == "repro.exec.dag"

    def test_init_maps_to_package(self):
        assert module_name_for_path("src/repro/exec/__init__.py") == "repro.exec"

    def test_no_src_segment_uses_full_dotted_path(self):
        assert module_name_for_path("tests/test_x.py") == "tests.test_x"


class TestResolution:
    def test_module_qualified_call_resolves(self):
        graph = graph_of({
            "src/pkg/util.py": "def helper():\n    return 1\n",
            "src/pkg/main.py": (
                "from pkg import util\n"
                "def entry():\n"
                "    return util.helper()\n"
            ),
        })
        assert "pkg.util:helper" in graph.edges["pkg.main:entry"]

    def test_imported_name_resolves_through_alias(self):
        graph = graph_of({
            "src/pkg/util.py": "def helper():\n    return 1\n",
            "src/pkg/main.py": (
                "from pkg.util import helper as h\n"
                "def entry():\n"
                "    return h()\n"
            ),
        })
        assert "pkg.util:helper" in graph.edges["pkg.main:entry"]

    def test_self_method_call_resolves(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "class Runner:\n"
                "    def step(self):\n"
                "        return 1\n"
                "    def run(self):\n"
                "        return self.step()\n"
            ),
        })
        assert "pkg.main:Runner.step" in graph.edges["pkg.main:Runner.run"]

    def test_instance_method_call_resolves_via_constructor_binding(self):
        graph = graph_of({
            "src/pkg/util.py": (
                "class Fitter:\n"
                "    def fit(self):\n"
                "        return 1\n"
            ),
            "src/pkg/main.py": (
                "from pkg.util import Fitter\n"
                "def entry():\n"
                "    fitter = Fitter()\n"
                "    return fitter.fit()\n"
            ),
        })
        edges = graph.edges["pkg.main:entry"]
        assert "pkg.util:Fitter.fit" in edges

    def test_classmethod_style_call_resolves(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "class Model:\n"
                "    @classmethod\n"
                "    def fit(cls):\n"
                "        return cls()\n"
                "def entry():\n"
                "    return Model.fit()\n"
            ),
        })
        assert "pkg.main:Model.fit" in graph.edges["pkg.main:entry"]

    def test_method_on_constructor_result_resolves(self):
        # ProfileFitter(space).fit(...) — the PR 8 profiler chain's shape.
        graph = graph_of({
            "src/pkg/main.py": (
                "class Fitter:\n"
                "    def fit(self):\n"
                "        return 1\n"
                "def entry():\n"
                "    return Fitter().fit()\n"
            ),
        })
        assert "pkg.main:Fitter.fit" in graph.edges["pkg.main:entry"]

    def test_closure_inherits_enclosing_instance_bindings(self):
        # The nested task reads the factory's local (and the `self` alias),
        # exactly how _sharded_fit_task builds its shipped closure.
        graph = graph_of({
            "src/pkg/main.py": (
                "class Helper:\n"
                "    def work(self):\n"
                "        return 1\n"
                "class Pipeline:\n"
                "    def ping(self):\n"
                "        return 0\n"
                "    def factory(self):\n"
                "        pipeline = self\n"
                "        helper = Helper()\n"
                "        def task(item):\n"
                "            pipeline.ping()\n"
                "            return helper.work()\n"
                "        return task\n"
            ),
        })
        task_edges = graph.edges["pkg.main:Pipeline.factory.task"]
        assert "pkg.main:Helper.work" in task_edges
        assert "pkg.main:Pipeline.ping" in task_edges

    def test_bare_reference_counts_as_edge(self):
        # Passing a callable along is how tasks reach dispatch sites.
        graph = graph_of({
            "src/pkg/main.py": (
                "def task(item):\n"
                "    return item\n"
                "def entry(backend):\n"
                "    handoff = task\n"
                "    return handoff\n"
            ),
        })
        assert "pkg.main:task" in graph.edges["pkg.main:entry"]

    def test_unresolvable_names_produce_no_edges(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "import json\n"
                "def entry(obj):\n"
                "    return json.dumps(obj.mystery())\n"
            ),
        })
        assert graph.edges["pkg.main:entry"] == ()


class TestEntryPoints:
    def test_backend_map_ships_its_task(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "def task(item):\n"
                "    return item\n"
                "def run(backend, items):\n"
                "    return backend.map(task, items)\n"
            ),
        })
        assert graph.shipped_entries == ("pkg.main:task",)

    def test_host_run_ships_its_task(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "def task(item):\n"
                "    return item\n"
                "def run(host, item):\n"
                "    return host.run(task, item)\n"
            ),
        })
        assert graph.shipped_entries == ("pkg.main:task",)

    def test_factory_call_in_task_position_promotes_the_factory(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "def make_task(bound):\n"
                "    def task(item):\n"
                "        return bound + item\n"
                "    return task\n"
                "def run(backend, items):\n"
                "    return backend.map(make_task(3), items)\n"
            ),
        })
        assert graph.shipped_entries == ("pkg.main:make_task",)
        # ...and the closure rides along through the nested-def edge.
        shipped = worker_shipped_scope(graph)
        assert "pkg.main:make_task.task" in shipped

    def test_dag_node_body_is_a_concurrent_entry(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "def body(inputs):\n"
                "    return inputs\n"
                "def build(DagNode):\n"
                "    return DagNode(name='n', stage='s', scene='x', body=body)\n"
            ),
        })
        assert graph.dag_entries == ("pkg.main:body",)
        assert "pkg.main:body" in concurrent_scope(graph)
        assert "pkg.main:body" not in worker_shipped_scope(graph)

    def test_plain_map_on_non_backend_receiver_is_ignored(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "def task(item):\n"
                "    return item\n"
                "def run(pool, items):\n"
                "    return pool.map(task, items)\n"
            ),
        })
        assert graph.shipped_entries == ()


class TestClosureAndChains:
    def test_transitive_closure_carries_witness_chains(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "def leaf():\n"
                "    return 1\n"
                "def mid():\n"
                "    return leaf()\n"
                "def task(item):\n"
                "    return mid()\n"
                "def run(backend, items):\n"
                "    return backend.map(task, items)\n"
            ),
        })
        shipped = worker_shipped_scope(graph)
        assert shipped["pkg.main:leaf"] == (
            "pkg.main:task", "pkg.main:mid", "pkg.main:leaf",
        )
        assert format_chain(shipped["pkg.main:leaf"]) == "task -> mid -> leaf"

    def test_dispatcher_itself_is_not_in_scope(self):
        graph = graph_of({
            "src/pkg/main.py": (
                "def task(item):\n"
                "    return item\n"
                "def run(backend, items):\n"
                "    return backend.map(task, items)\n"
            ),
        })
        assert "pkg.main:run" not in worker_shipped_scope(graph)


class TestRealTree:
    @pytest.fixture(scope="class")
    def graph(self):
        modules = [load_module(p) for p in iter_python_files(["src"])]
        return build_call_graph([m for m in modules if m is not None])

    def test_bake_geometry_task_is_worker_shipped(self, graph):
        shipped = worker_shipped_scope(graph)
        assert "repro.core.pipeline:_bake_geometry_task" in shipped

    def test_pipeline_run_is_not_worker_shipped(self, graph):
        # The orchestrator dispatches workers; it never rides along.
        shipped = worker_shipped_scope(graph)
        assert "repro.core.pipeline:NeRFlexPipeline.run" not in shipped

    def test_profiler_fit_chain_is_concurrent(self, graph):
        # The PR 8 race site: QualityModel.fit runs inside sharded fits.
        concurrent = concurrent_scope(graph)
        chain = concurrent.get("repro.core.profiler:QualityModel.fit")
        assert chain is not None
        assert "repro.core.profiler:ProfileFitter.fit" in chain

    def test_scopes_are_not_vacuous(self, graph):
        assert len(graph.shipped_entries) >= 2
        assert len(worker_shipped_scope(graph)) >= 10
        assert len(concurrent_scope(graph)) > len(worker_shipped_scope(graph))
