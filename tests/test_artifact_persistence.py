"""Tests for the persistent artifact tier (:mod:`repro.exec.persist`).

The contract under test is the one the cross-invocation golden tier relies
on: every artefact kind round-trips through disk **bit-identically**, keys
hash to the same filename in any process, and a store directory that has
been truncated, corrupted or written by a different format version behaves
exactly like a cold cache — never like an error.
"""

from __future__ import annotations

import os
import struct
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.baking.baked_model import SizeConstants, bake_field
from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.profiler import ProfileFitter
from repro.exec import ArtifactStore, DiskArtifactStore, create_artifact_store
from repro.exec.persist import (
    FORMAT_VERSION,
    MAGIC,
    canonical_key,
    key_digest,
    key_filename,
)
from repro.render import RenderEngine
from repro.scenes.cameras import orbit_cameras

#: A representative content-addressed key: every leaf type the pipeline
#: actually puts into profile/baked keys (strings, ints, floats, bools,
#: None, nested tuples, a frozen dataclass).
SAMPLE_KEY = (
    "profile",
    "scene4",
    "lego",
    ((None, 0.123456789012), ("a", 1, -2.5)),
    (16, 24, 32),
    (1, 2),
    160,
    1,
    0,
    True,
    SizeConstants(),
)


def make_profile(name: str = "obj"):
    """A deterministic fitted profile (synthetic measurements, no renders)."""
    space = ConfigurationSpace(granularities=(8, 16, 32), patch_sizes=(1, 2, 3))

    def measure(config: Configuration) -> tuple:
        quality = 1.0 - 1.0 / (config.granularity * (config.patch_size + 0.5))
        size = 0.01 * config.granularity**2 * config.patch_size
        return quality, size

    profile = ProfileFitter(space).fit(name, measure)
    profile.detail_weight = 1.375
    return profile


# ---------------------------------------------------------------------------
# Round-trip bit-identity
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_profile_roundtrip_is_bit_identical(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        profile = make_profile()
        key = ("profile",) + SAMPLE_KEY[1:]
        assert store.put(key, profile)
        loaded = store.get(key)
        assert loaded is not profile
        assert loaded.state_tuple() == profile.state_tuple()
        # Exactly equal predictions everywhere the selector can look.
        for config in profile.config_space:
            assert loaded.predict_quality(config) == profile.predict_quality(config)
            assert loaded.predict_size(config) == profile.predict_size(config)
            assert loaded.objective_quality(config) == profile.objective_quality(config)

    @pytest.mark.parametrize("materialize", [False, True], ids=["lazy", "atlas"])
    def test_baked_roundtrip_is_bit_identical(self, tmp_path, two_object_scene, materialize):
        placed = two_object_scene.placed[1]  # the high-frequency cube
        model = bake_field(
            placed, granularity=12, patch_size=2, name="cube",
            materialize_textures=materialize,
        )
        store = DiskArtifactStore(str(tmp_path))
        key = ("baked", "tiny", "cube", 12, 2, materialize, SizeConstants())
        assert store.put(key, model)
        loaded = store.get(key)

        assert loaded.name == model.name
        assert loaded.granularity == model.granularity
        assert loaded.patch_size == model.patch_size
        assert loaded.size_bytes() == model.size_bytes()
        assert loaded.size_constants == model.size_constants
        assert np.array_equal(loaded.grid.occupancy, model.grid.occupancy)
        assert np.array_equal(loaded.grid.origin, model.grid.origin)
        assert loaded.grid.voxel_size == model.grid.voxel_size
        assert np.array_equal(loaded.faces.voxel_indices, model.faces.voxel_indices)
        assert np.array_equal(loaded.faces.axes, model.faces.axes)
        assert np.array_equal(loaded.faces.signs, model.faces.signs)

        # Texture lookup must agree everywhere, including off-centre (u, v)
        # that quantise onto texel centres — this is where the lazy texture
        # materialisation has to be exact.
        rng = np.random.default_rng(3)
        faces = rng.integers(0, model.num_faces, 256)
        u = rng.random(256)
        v = rng.random(256)
        assert np.array_equal(
            loaded.texture.sample(faces, u, v), model.texture.sample(faces, u, v)
        )

    def test_reloaded_lazy_bake_renders_bit_identically(self, tmp_path, two_object_scene):
        placed = two_object_scene.placed[0]
        model = bake_field(placed, granularity=12, patch_size=2, name="sphere")
        store = DiskArtifactStore(str(tmp_path))
        key = ("baked", "tiny", "sphere", 12, 2)
        store.put(key, model)
        loaded = store.get(key)

        camera = orbit_cameras(
            two_object_scene.center,
            radius=1.3 * two_object_scene.extent,
            count=1,
            width=40,
            height=40,
        )[0]
        engine = RenderEngine(chunk_rays=353)
        original = engine.render_baked(model, camera)
        reloaded = engine.render_baked(loaded, camera)
        assert np.array_equal(original.rgb, reloaded.rgb)
        assert np.array_equal(original.hit_mask, reloaded.hit_mask)
        finite = np.isfinite(original.depth)
        assert np.array_equal(finite, np.isfinite(reloaded.depth))
        assert np.array_equal(original.depth[finite], reloaded.depth[finite])


# ---------------------------------------------------------------------------
# Key stability
# ---------------------------------------------------------------------------


class TestKeyStability:
    def test_canonical_key_distinguishes_leaf_types(self):
        assert canonical_key((1,)) != canonical_key((1.0,))
        assert canonical_key((1,)) != canonical_key((True,))
        assert canonical_key((1,)) != canonical_key(("1",))
        assert canonical_key((None,)) != canonical_key((0,))
        assert canonical_key(("ab", "c")) != canonical_key(("a", "bc"))

    def test_unsupported_key_type_raises(self):
        with pytest.raises(TypeError):
            canonical_key(("profile", object()))

    def test_key_digest_stable_across_processes(self):
        """The same key tuple must hash identically in a fresh interpreter.

        This is the property that makes a disk store shared across
        invocations (and CI runs) work at all; it would fail if the
        canonical encoding leaned on ``hash()`` or on ``id``-dependent
        ``repr``.
        """
        script = (
            "from repro.exec.persist import key_digest\n"
            "from repro.baking.baked_model import SizeConstants\n"
            "key = ('profile', 'scene4', 'lego', ((None, 0.123456789012),"
            " ('a', 1, -2.5)), (16, 24, 32), (1, 2), 160, 1, 0, True,"
            " SizeConstants())\n"
            "print(key_digest(key))\n"
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout.strip() == key_digest(SAMPLE_KEY)

    def test_filename_carries_kind_tag(self):
        assert key_filename(SAMPLE_KEY).startswith("profile-")
        assert key_filename(("baked", 1)).startswith("baked-")
        assert key_filename(SAMPLE_KEY).endswith(".art")


# ---------------------------------------------------------------------------
# Robustness: version mismatch, truncation, corruption
# ---------------------------------------------------------------------------


class TestRobustness:
    def _stored(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        key = ("profile", "robust")
        store.put(key, make_profile())
        return store, key, store.path_for(key)

    def test_version_mismatch_is_a_miss_and_discards(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        blob = open(path, "rb").read()
        future = struct.pack("<8sI", MAGIC, FORMAT_VERSION + 1) + blob[12:]
        with open(path, "wb") as handle:
            handle.write(future)
        assert store.get(key) is None
        assert store.stats.version_mismatches == 1
        assert not os.path.exists(path)
        # A subsequent put/get cycle repopulates cleanly.
        store.put(key, make_profile())
        assert store.get(key) is not None

    def test_truncated_file_is_a_miss_and_discards(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not os.path.exists(path)

    def test_flipped_payload_byte_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_garbage_file_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"not an artifact at all")
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        assert store.get(("profile", "absent")) is None
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0

    def test_unwritable_directory_degrades_to_memory_only(self, tmp_path):
        """An unusable cache dir must never turn a put into an error.

        The blocker is a plain *file* where the store expects its
        directory, which raises ``OSError`` for any user (a chmod-based
        check would pass silently when the suite runs as root).
        """
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        store = create_artifact_store(directory=str(blocker))
        key = ("profile", "unwritable")
        store.put(key, make_profile())  # must not raise
        assert store.disk.stats.write_errors == 1
        assert store.disk.stats.puts == 0
        assert store.get(key) is not None  # memory tier still serves it

    def test_non_canonical_key_is_a_miss_on_disk_backed_get(self, tmp_path):
        """Keys outside the canonical vocabulary behave like the memory-only
        store: a miss, never a TypeError."""
        store = create_artifact_store(directory=str(tmp_path))
        key = ("geometry", ("opaque", object()))
        assert store.get(key) is None
        store.put(key, "value")
        assert store.get(key) == "value"


# ---------------------------------------------------------------------------
# Eviction bounds
# ---------------------------------------------------------------------------


class TestEviction:
    def test_disk_store_stays_under_byte_bound(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        probe_key = ("profile", "size-probe")
        store.put(probe_key, make_profile())
        one_file = store.size_bytes()
        assert one_file > 0

        bounded = DiskArtifactStore(str(tmp_path / "bounded"), max_bytes=int(2.5 * one_file))
        for index in range(6):
            bounded.put(("profile", "evict", index), make_profile())
            time.sleep(0.01)  # distinct access times for LRU ordering
        assert bounded.size_bytes() <= bounded.max_bytes
        assert bounded.stats.evictions >= 3
        # The most recent artefact survives; the oldest is gone.
        assert bounded.get(("profile", "evict", 5)) is not None
        assert bounded.get(("profile", "evict", 0)) is None

    def test_invalid_bound_raises(self, tmp_path):
        with pytest.raises(ValueError):
            DiskArtifactStore(str(tmp_path), max_bytes=0)


class TestConcurrentEviction:
    """Two stores sharing one directory must race-tolerantly co-evict.

    Regression for the cross-process eviction race: a stat or unlink on an
    entry another store just evicted must be treated as already-gone —
    never surface as :class:`FileNotFoundError` — and a store must only
    count evictions it actually performed.
    """

    def _filled_store(self, root, files: int = 6) -> DiskArtifactStore:
        store = DiskArtifactStore(str(root), max_bytes=1 << 30)
        for index in range(files):
            store.put(("profile", "race", index), make_profile())
            time.sleep(0.01)
        return store

    def test_entry_vanishing_mid_eviction_is_already_gone(self, tmp_path):
        store = self._filled_store(tmp_path)
        one_file = store.size_bytes() // 6
        store.max_bytes = 2 * one_file
        # Simulate a concurrent evictor winning the race: the LRU-oldest
        # entries disappear after this store listed them.
        for path, _, _ in sorted(store._entries(), key=lambda entry: entry[2])[:3]:
            os.remove(path)
        store._evict_to_bound()  # must not raise
        assert store.size_bytes() <= store.max_bytes
        # Three entries remained (3 files x size), the bound holds two, so
        # exactly one eviction was actually performed by this store — the
        # three that vanished under it are not counted.
        assert store.stats.evictions == 1
        assert len(store) == 2

    def test_discard_reports_already_gone(self, tmp_path):
        store = self._filled_store(tmp_path, files=1)
        (path, _, _) = store._entries()[0]
        assert store._discard(path) is True
        assert store._discard(path) is False  # already gone, not an error

    def test_clear_counts_only_actual_removals(self, tmp_path):
        store = self._filled_store(tmp_path, files=3)
        victim = store._entries()[0][0]
        os.remove(victim)
        assert store.clear() == 2

    def test_two_stores_evicting_concurrently(self, tmp_path):
        first = self._filled_store(tmp_path, files=8)
        one_file = first.size_bytes() // 8
        bound = 3 * one_file
        first.max_bytes = bound
        second = DiskArtifactStore(str(tmp_path), max_bytes=bound)
        errors = []

        def hammer(store, worker):
            try:
                for index in range(12):
                    store.put(("profile", "hammer", worker, index), make_profile())
                    store._evict_to_bound()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        import threading

        threads = [
            threading.Thread(target=hammer, args=(store, worker))
            for worker, store in enumerate([first, second])
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Both stores stayed usable and the directory respects the bound
        # once the dust settles (each store enforces it independently).
        first._evict_to_bound()
        assert first.size_bytes() <= bound
        assert first.stats.evictions + second.stats.evictions > 0


# ---------------------------------------------------------------------------
# Two-level store semantics
# ---------------------------------------------------------------------------


class TestTwoLevelStore:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        key = ("profile", "promote")
        create_artifact_store(directory=str(tmp_path)).put(key, make_profile())

        fresh = create_artifact_store(directory=str(tmp_path))
        first = fresh.get(key)
        assert first is not None
        assert fresh.stats.disk_hits == 1
        second = fresh.get(key)
        assert second is first  # served from the memory tier
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.hits == 2
        assert fresh.recompute_by_kind() == {}

    def test_both_tier_miss_counts_recompute(self, tmp_path):
        store = create_artifact_store(directory=str(tmp_path))
        assert store.get(("profile", "nope")) is None
        assert store.get(("baked", "nope")) is None
        assert store.recompute_by_kind() == {"profile": 1, "baked": 1}
        summary = store.stats_summary()
        assert summary["recompute_by_kind"] == {"profile": 1, "baked": 1}
        assert summary["disk"]["misses"] == 2

    def test_paper_model_profile_stays_memory_only(self, tmp_path):
        """Profiles carrying the reference-only paper models have no codec.

        Persistence must degrade to the memory tier, never error.
        """
        from repro.core.profiler import PaperQualityModel

        profile = make_profile()
        profile.quality_model = PaperQualityModel()
        store = create_artifact_store(directory=str(tmp_path))
        store.put(("profile", "paper-model"), profile)
        assert store.get(("profile", "paper-model")) is profile
        assert store.disk.stats.encode_skips == 1
        assert len(store.disk) == 0

    def test_uncodable_value_stays_memory_only(self, tmp_path):
        store = create_artifact_store(directory=str(tmp_path))
        store.put(("geometry", "mem"), {"not": "serialisable"})
        assert store.get(("geometry", "mem")) == {"not": "serialisable"}
        assert store.disk.stats.encode_skips == 1
        assert len(store.disk) == 0

    def test_invalidate_clears_both_tiers(self, tmp_path):
        store = create_artifact_store(directory=str(tmp_path))
        store.put(("profile", 1), make_profile())
        store.put(("baked", "x"), make_profile())  # profile-shaped, any kind tag
        assert len(store.disk) == 2
        store.invalidate("profile")
        assert ("profile", 1) not in store
        assert len(store.disk) == 1
        store.invalidate()
        assert len(store.disk) == 0
        assert len(store) == 0

    def test_memory_only_store_unaffected(self):
        store = create_artifact_store()
        assert store.disk is None
        store.put(("profile", 1), make_profile())
        assert store.get(("profile", 1)) is not None
        assert "disk" not in store.stats_summary()

    def test_artifact_store_direct_disk_argument(self, tmp_path):
        disk = DiskArtifactStore(str(tmp_path))
        store = ArtifactStore(disk=disk)
        store.put(("profile", "direct"), make_profile())
        assert disk.stats.puts == 1
