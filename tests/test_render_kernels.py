"""Tiered parity suite for the compiled kernel layer (repro.render.kernels).

Every kernel backend is pinned against the vectorised numpy reference at
the tolerance its declared tier (``PARITY_TIERS``) permits:

* **exact** — ``march_occupancy``, ``gather_ray_points``,
  ``sphere_advance``: bit-identical outputs (``np.array_equal`` on values
  *and* matching dtypes).  The per-ray loops visit the same sample ladder
  and replicate numpy's NaN/inf semantics, so no tolerance is needed.
* **bounded-ulp** — ``sdf_to_density``, ``composite_forward``: sequential
  accumulation and scalar ``exp`` may differ from numpy's pairwise sums and
  vectorised ``exp`` by a few ULP; pinned with
  ``np.testing.assert_array_max_ulp`` at small per-kernel bounds.

The suite runs against the uncompiled ``loops`` backend everywhere, which
proves the *algorithms* equivalent even on machines without numba; when
numba is installed (the CI kernel leg) the identical assertions run against
the compiled functions too, pinning the codegen (``fastmath=False``).

Engine-level tests then pin that a full render is bit-identical across
kernels for the exact-tier paths (baked marching, sphere tracing) and
ULP-close for the volume path — including through a process backend, the
fork-safety contract (kernels ship as *names*, never as compiled objects).
"""

import numpy as np
import pytest

from repro.baking.baked_model import BakedMultiModel, bake_field
from repro.baking.meshing import _TANGENT_AXES
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.device.models import DeviceProfile
from repro.exec.backends import SerialBackend
from repro.render import RenderEngine
from repro.render.engine import _face_keys, _ray_aabb
from repro.render.kernels import (
    KERNELS,
    NUMBA_AVAILABLE,
    PARITY_BOUNDED_ULP,
    PARITY_EXACT,
    PARITY_TIERS,
    KernelSet,
    get_kernels,
    known_kernel_names,
    resolve_kernel_name,
    warm_up,
)
from repro.render.kernels import numpy_ref
from repro.render.kernels.loops import KERNEL_FUNCTION_NAMES
from repro.scenes.cameras import camera_rays, orbit_cameras

#: Backends pinned against the numpy reference in this environment.  The
#: uncompiled loops always run; numba joins on the CI leg that installs it.
CANDIDATE_BACKENDS = [name for name in ("loops", "numba") if name in KERNELS]

#: Bounded-ULP tier bounds, per kernel.  sdf_to_density differs only in
#: scalar-vs-vectorised exp; composite_forward also re-orders the rgb /
#: weight / depth reductions (sequential vs pairwise).
MAXULP = {"sdf_to_density": 4, "composite_forward": 128}


def assert_exact(reference, candidate):
    """Bit-identical: equal values (NaN-aware) and equal dtypes."""
    reference = np.asarray(reference)
    candidate = np.asarray(candidate)
    assert reference.dtype == candidate.dtype
    assert reference.shape == candidate.shape
    np.testing.assert_array_equal(reference, candidate)


@pytest.fixture(scope="module")
def baked_models(two_object_scene):
    return BakedMultiModel(
        [
            bake_field(placed, 14, 2, name=placed.instance_name)
            for placed in two_object_scene.placed
        ]
    )


@pytest.fixture(scope="module")
def march_case(baked_models):
    """Real marching inputs: camera rays against a baked sub-model."""
    model = baked_models.submodels[0]
    grid = model.grid
    camera = orbit_cameras(
        np.asarray(grid.bounds_min) + 0.5 * (
            np.asarray(grid.bounds_max) - np.asarray(grid.bounds_min)
        ),
        radius=2.5 * float(np.max(np.asarray(grid.bounds_max) - np.asarray(grid.bounds_min))),
        count=1,
        width=24,
        height=24,
    )[0]
    origins, directions = camera_rays(camera)
    t_near, t_far = _ray_aabb(origins, directions, grid.bounds_min, grid.bounds_max)
    t_near = np.maximum(t_near, 0.0)
    candidates = np.flatnonzero(t_far > t_near)
    assert candidates.size > 50  # the case must actually march
    face_keys, face_order, voxel_keys = _face_keys(model)
    return {
        "origins": origins[candidates],
        "directions": directions[candidates],
        "t_near": t_near[candidates],
        "t_far": t_far[candidates],
        "grid_lo": np.asarray(grid.bounds_min, dtype=np.float64),
        "voxel": float(grid.voxel_size),
        "step": float(grid.voxel_size) * 0.5,
        "resolution": int(grid.resolution),
        "occupancy": np.ascontiguousarray(grid.occupancy),
        "face_keys": face_keys,
        "face_order": face_order,
        "voxel_keys": voxel_keys,
        "slab_steps": 32,
    }


def march_with(kernels, case):
    return kernels.march_occupancy(
        case["origins"], case["directions"], case["t_near"], case["t_far"],
        case["grid_lo"], case["voxel"], case["step"], case["resolution"],
        case["occupancy"], case["face_keys"], case["face_order"],
        case["voxel_keys"], case["slab_steps"],
    )


class TestRegistry:
    def test_numpy_and_loops_always_registered(self):
        assert "numpy" in KERNELS
        assert "loops" in KERNELS
        assert ("numba" in KERNELS) == NUMBA_AVAILABLE

    def test_parity_tiers_cover_every_kernel(self):
        assert set(PARITY_TIERS) == set(KERNEL_FUNCTION_NAMES)
        assert set(PARITY_TIERS.values()) <= {PARITY_EXACT, PARITY_BOUNDED_ULP}
        # The bounds asserted by this suite cover exactly the ULP tier.
        assert set(MAXULP) == {
            name for name, tier in PARITY_TIERS.items()
            if tier == PARITY_BOUNDED_ULP
        }

    def test_kernel_sets_expose_every_function(self):
        for kernel_set in KERNELS.values():
            assert isinstance(kernel_set, KernelSet)
            for fn in KERNEL_FUNCTION_NAMES:
                assert callable(getattr(kernel_set, fn))

    def test_explicit_names_resolve_to_themselves(self):
        for name in KERNELS:
            assert resolve_kernel_name(name) == name
            assert get_kernels(name).name == name

    def test_auto_prefers_compiled_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert resolve_kernel_name("auto") == expected
        assert resolve_kernel_name(None) == expected  # unset environment

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_kernel_name("bogus")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed here")
    def test_explicit_numba_without_numba_is_an_error(self):
        with pytest.raises(ValueError, match="numba is not installed"):
            resolve_kernel_name("numba")

    def test_environment_selection_and_graceful_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "loops")
        assert resolve_kernel_name() == "loops"
        # An environment-selected backend that is absent degrades to auto
        # instead of failing the run (environment knobs are forgiving).
        monkeypatch.setenv("REPRO_KERNEL", "numba")
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert resolve_kernel_name() == expected
        monkeypatch.setenv("REPRO_KERNEL", "not-a-kernel")
        assert resolve_kernel_name() == expected

    def test_warm_up_runs_every_backend(self):
        for name in known_kernel_names():
            assert warm_up(name).name == resolve_kernel_name(name)

    def test_tangent_tables_match_meshing(self):
        for axis in range(3):
            assert numpy_ref.TANGENT_U[axis] == _TANGENT_AXES[axis][0]
            assert numpy_ref.TANGENT_V[axis] == _TANGENT_AXES[axis][1]


@pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
class TestExactTierParity:
    """Bit-identical kernels: march_occupancy, gather_ray_points, sphere_advance."""

    def test_march_real_model(self, backend, march_case):
        reference = march_with(get_kernels("numpy"), march_case)
        candidate = march_with(get_kernels(backend), march_case)
        assert reference[0].size > 0  # the camera actually hits the model
        for ref, cand in zip(reference, candidate):
            assert_exact(ref, cand)

    def test_march_synthetic_grid_with_fallback_faces(self, backend):
        """Random rays against a synthetic grid whose face table is sparse.

        Every occupied voxel carries exactly one face, so rays entering
        through any other (axis, sign) must take the voxel-key fallback —
        the branch a well-formed bake rarely exercises.  Axis-parallel
        directions (exact zeros) and interior origins are included to hit
        the division guards and the t_entry clamp.
        """
        rng = np.random.default_rng(20260808)
        g = 5
        occupancy = rng.random((g, g, g)) < 0.25
        occupied = np.argwhere(occupancy).astype(np.int64)
        if occupied.shape[0] == 0:  # pragma: no cover - seed guarantees hits
            pytest.skip("empty synthetic grid")
        voxel_key = (occupied[:, 0] * g + occupied[:, 1]) * g + occupied[:, 2]
        axes = rng.integers(0, 3, occupied.shape[0])
        signs = rng.choice([-1, 1], occupied.shape[0])
        face_key = voxel_key * 6 + axes * 2 + (signs > 0)
        order = np.argsort(face_key, kind="stable").astype(np.int64)
        case = {
            "grid_lo": np.array([-1.0, -0.5, 0.25]),
            "voxel": 0.3,
            "step": 0.15,
            "resolution": g,
            "occupancy": occupancy,
            "face_keys": face_key[order].astype(np.int64),
            "face_order": order,
            "voxel_keys": voxel_key[order].astype(np.int64),
            "slab_steps": 4,
        }
        num_rays = 400
        origins = rng.normal(scale=1.5, size=(num_rays, 3)) + case["grid_lo"]
        directions = rng.normal(size=(num_rays, 3))
        # A quarter of the rays are axis-parallel (exact zero components).
        parallel = rng.random(num_rays) < 0.25
        zero_axis = rng.integers(0, 3, num_rays)
        keep_axis = (zero_axis + 1 + rng.integers(0, 2, num_rays)) % 3
        for ray in np.flatnonzero(parallel):
            directions[ray] = 0.0
            directions[ray, keep_axis[ray]] = rng.choice([-1.0, 1.0])
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        t_near = np.abs(rng.normal(scale=0.2, size=num_rays))
        t_far = t_near + np.abs(rng.normal(scale=4.0, size=num_rays)) + 0.1
        case.update(
            origins=origins, directions=directions, t_near=t_near, t_far=t_far
        )
        reference = march_with(get_kernels("numpy"), case)
        candidate = march_with(get_kernels(backend), case)
        assert reference[0].size > 0
        for ref, cand in zip(reference, candidate):
            assert_exact(ref, cand)

    def test_march_no_hits_returns_empty(self, backend):
        occupancy = np.zeros((3, 3, 3), dtype=bool)
        keys = np.zeros(1, dtype=np.int64)
        out = get_kernels(backend).march_occupancy(
            np.array([[-2.0, 0.5, 0.5]]), np.array([[1.0, 0.0, 0.0]]),
            np.array([0.0]), np.array([5.0]),
            np.zeros(3), 1.0, 0.5, 3, occupancy, keys, keys, keys, 32,
        )
        for array, dtype in zip(out, (np.int64, np.int64, np.float64,
                                      np.float64, np.float64)):
            assert array.size == 0
            assert array.dtype == dtype

    def test_march_zero_rays(self, backend):
        keys = np.zeros(1, dtype=np.int64)
        out = get_kernels(backend).march_occupancy(
            np.empty((0, 3)), np.empty((0, 3)), np.empty(0), np.empty(0),
            np.zeros(3), 1.0, 0.5, 3, np.ones((3, 3, 3), dtype=bool),
            keys, keys, keys, 32,
        )
        assert all(array.size == 0 for array in out)

    def test_gather_ray_points(self, backend):
        rng = np.random.default_rng(11)
        origins = rng.normal(size=(64, 3))
        directions = rng.normal(size=(64, 3))
        t_values = rng.random(64) * 7.0
        alive = np.flatnonzero(rng.random(64) < 0.6).astype(np.int64)
        assert_exact(
            get_kernels("numpy").gather_ray_points(origins, directions, t_values, alive),
            get_kernels(backend).gather_ray_points(origins, directions, t_values, alive),
        )

    def test_sphere_advance(self, backend):
        rng = np.random.default_rng(13)
        num_rays = 96
        hit_epsilon = 2e-3
        base_t = rng.random(num_rays)
        base_hit = rng.random(num_rays) < 0.1
        alive = np.flatnonzero(rng.random(num_rays) < 0.7).astype(np.int64)
        distances = rng.normal(scale=0.5, size=alive.size)
        # Edge values: exactly the epsilon (not a hit), below it (a hit),
        # and a huge step that escapes the per-ray limit.
        if distances.size >= 3:
            distances[0] = hit_epsilon
            distances[1] = hit_epsilon / 2.0
            distances[2] = 1e6
        limits = rng.random(num_rays) * 2.0 + 0.5

        t_ref, hit_ref = base_t.copy(), base_hit.copy()
        alive_ref = get_kernels("numpy").sphere_advance(
            t_ref, hit_ref, alive, distances, limits, hit_epsilon
        )
        t_cand, hit_cand = base_t.copy(), base_hit.copy()
        alive_cand = get_kernels(backend).sphere_advance(
            t_cand, hit_cand, alive, distances, limits, hit_epsilon
        )
        assert_exact(t_ref, t_cand)
        assert_exact(hit_ref, hit_cand)
        assert_exact(alive_ref.astype(np.int64), alive_cand)


@pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
class TestBoundedUlpTierParity:
    def test_sdf_to_density(self, backend):
        rng = np.random.default_rng(17)
        sdf = rng.normal(scale=0.4, size=(40, 24))
        sdf[0, :4] = [0.0, 1e12, -1e12, 1e-15]  # clip saturation + zero
        for width in (0.05, 1e-12):  # the 1e-9 floor binds for the second
            np.testing.assert_array_max_ulp(
                get_kernels("numpy").sdf_to_density(sdf, width),
                get_kernels(backend).sdf_to_density(sdf, width),
                maxulp=MAXULP["sdf_to_density"],
            )

    def test_composite_forward(self, backend):
        rng = np.random.default_rng(19)
        num_rays, num_samples = 48, 32
        densities = rng.random((num_rays, num_samples)) * 40.0
        densities[0, :3] = [-1.0, 0.0, 1e6]  # clamp + opaque saturation
        colors = rng.random((num_rays, num_samples, 3))
        deltas = rng.random((num_rays, num_samples)) * 0.1 + 1e-4
        background = rng.random(3)
        sample_distances = np.cumsum(deltas, axis=1)
        reference = get_kernels("numpy").composite_forward(
            densities, colors, deltas, background, sample_distances
        )
        candidate = get_kernels(backend).composite_forward(
            densities, colors, deltas, background, sample_distances
        )
        for ref, cand in zip(reference, candidate):
            assert ref.shape == cand.shape
            np.testing.assert_array_max_ulp(
                ref, cand, maxulp=MAXULP["composite_forward"]
            )

    def test_composite_forward_empty_rays(self, backend):
        out = get_kernels(backend).composite_forward(
            np.empty((0, 4)), np.empty((0, 4, 3)), np.empty((0, 4)),
            np.zeros(3), np.empty((0, 4)),
        )
        assert [a.shape for a in out] == [(0, 3), (0, 4), (0, 5), (0,), (0,)]


def assert_buffers_identical(a, b, atol=0.0):
    assert np.array_equal(a["hit"], b["hit"])
    assert np.array_equal(a["object_ids"], b["object_ids"])
    if atol == 0.0:
        np.testing.assert_array_equal(a["depth"], b["depth"])
        np.testing.assert_array_equal(a["rgb"], b["rgb"])
    else:
        finite = np.isfinite(a["depth"])
        assert np.array_equal(finite, np.isfinite(b["depth"]))
        np.testing.assert_allclose(a["depth"][finite], b["depth"][finite],
                                   atol=atol, rtol=0)
        np.testing.assert_allclose(a["rgb"], b["rgb"], atol=atol, rtol=0)


@pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
class TestEngineCrossKernelParity:
    """A full render agrees across kernels at each path's declared tier."""

    def _rays(self, content):
        camera = orbit_cameras(
            content.center, radius=1.4 * content.extent, count=1,
            width=32, height=32,
        )[0]
        return camera_rays(camera)

    def test_baked_render_bit_identical(self, backend, baked_models,
                                        two_object_scene):
        origins, directions = self._rays(two_object_scene)
        reference = RenderEngine(kernel="numpy", chunk_rays=300).render_baked_rays(
            baked_models, origins, directions
        )
        candidate = RenderEngine(kernel=backend, chunk_rays=300).render_baked_rays(
            baked_models, origins, directions
        )
        assert reference["hit"].any()
        assert_buffers_identical(reference, candidate, atol=0.0)

    def test_scene_render_bit_identical(self, backend, two_object_scene):
        origins, directions = self._rays(two_object_scene)
        reference = RenderEngine(kernel="numpy", chunk_rays=300).render_scene_rays(
            two_object_scene, origins, directions, max_distance=8.0
        )
        candidate = RenderEngine(kernel=backend, chunk_rays=300).render_scene_rays(
            two_object_scene, origins, directions, max_distance=8.0
        )
        assert reference["hit"].any()
        assert_buffers_identical(reference, candidate, atol=0.0)

    def test_volume_render_ulp_close(self, backend, two_object_scene):
        camera = orbit_cameras(
            two_object_scene.center, radius=1.4 * two_object_scene.extent,
            count=1, width=24, height=24,
        )[0]
        reference = RenderEngine(kernel="numpy").volume_render_field(
            two_object_scene, camera, num_samples=24
        )
        candidate = RenderEngine(kernel=backend).volume_render_field(
            two_object_scene, camera, num_samples=24
        )
        # Volume compositing sits in the bounded-ULP tier; after clipping
        # and mixing the drift stays far below any perceptual scale.
        np.testing.assert_allclose(candidate.rgb, reference.rgb, atol=1e-9, rtol=0)
        assert np.array_equal(candidate.hit_mask, reference.hit_mask)

    def test_process_backend_matches_serial(self, backend, baked_models,
                                            two_object_scene):
        """Fork safety: kernels resolve by name inside process workers."""
        origins, directions = self._rays(two_object_scene)
        serial = RenderEngine(kernel=backend, chunk_rays=200).render_baked_rays(
            baked_models, origins, directions
        )
        forked_engine = RenderEngine(
            kernel=backend, chunk_rays=200, backend="process", workers=2
        )
        try:
            forked = forked_engine.render_baked_rays(
                baked_models, origins, directions
            )
        finally:
            forked_engine.backend.shutdown()
        assert_buffers_identical(serial, forked, atol=0.0)


class TestEngineKernelKnob:
    def test_engine_stores_resolved_name_string(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        engine = RenderEngine(kernel="loops")
        assert engine.kernel == "loops"
        assert isinstance(engine.kernel, str)
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert RenderEngine().kernel == expected

    def test_pipeline_config_plumbs_kernel(self):
        device = DeviceProfile(
            name="kernel-knob", memory_budget_mb=6.0,
            hard_memory_limit_mb=6.0, compute_score=1.0,
        )
        pipeline = NeRFlexPipeline(
            device, PipelineConfig(kernel="loops", backend="serial")
        )
        assert pipeline.engine.kernel == "loops"

    def test_engine_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            RenderEngine(kernel="bogus")


class CostSpyBackend(SerialBackend):
    """A serial backend that records the cost hints handed to map()."""

    supports_cost_hints = True

    def __init__(self):
        super().__init__()
        self.cost_lists = []

    def map(self, fn, items, timer=None, stage=None, costs=None):
        if costs is not None:
            self.cost_lists.append(list(costs))
        return super().map(fn, items, timer=timer, stage=stage)


class TestBakedCostHints:
    def test_costs_reflect_candidate_count_not_ray_count(
        self, baked_models, two_object_scene
    ):
        """Regression pin: the baked marcher's chunk costs are derived from
        the candidate rays that actually march, not the full ray batch
        (fixed when the shard scheduler landed; a num_rays regression would
        overweight every baked shard)."""
        camera = orbit_cameras(
            two_object_scene.center, radius=2.5 * two_object_scene.extent,
            count=1, width=40, height=40,
        )[0]
        origins, directions = camera_rays(camera)
        model = baked_models.submodels[0]
        t_near, t_far = _ray_aabb(
            origins, directions, model.grid.bounds_min, model.grid.bounds_max
        )
        candidates = int(np.count_nonzero(t_far > np.maximum(t_near, 0.0)))
        num_rays = origins.shape[0]
        assert 0 < candidates < num_rays  # the distant camera misses a lot

        spy = CostSpyBackend()
        chunk_rays = max(candidates // 3, 1)  # force several chunks
        engine = RenderEngine(kernel="numpy", chunk_rays=chunk_rays, backend=spy)
        engine._march_baked_single(model, origins, directions, step_scale=0.5)
        assert spy.cost_lists, "no cost hints reached the backend"
        costs = spy.cost_lists[0]
        assert sum(costs) == pytest.approx(candidates)
        assert max(costs) <= chunk_rays
        assert sum(costs) < num_rays
