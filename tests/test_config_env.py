"""The typed env registry: parser semantics, legacy equivalence, the
accuracy of the declared consumer lists, and staleness of the DESIGN.md
reference table."""

from __future__ import annotations

import os
import re

import pytest

from repro.config import env as repro_env
from repro.config.env import (
    EnvVar,
    all_vars,
    env_table_markdown,
    parse_bool,
    parse_mb_bytes,
    parse_optional_str,
    register,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestParsers:
    @pytest.mark.parametrize("raw", ["0", "", "false", "False"])
    def test_bool_false_spellings(self, raw):
        assert parse_bool(raw) is False

    @pytest.mark.parametrize("raw", ["1", "yes", "TRUE", "on", "2"])
    def test_bool_anything_else_is_true(self, raw):
        assert parse_bool(raw) is True

    def test_optional_str_strips_and_empties_to_none(self):
        assert parse_optional_str("  /tmp/x ") == "/tmp/x"
        assert parse_optional_str("   ") is None

    def test_mb_bytes_fractional_and_floor(self):
        assert parse_mb_bytes("2") == 2 << 20
        assert parse_mb_bytes("0.5") == 1 << 20  # floored at 1 MiB
        assert parse_mb_bytes("1.5") == 3 << 19
        with pytest.raises(ValueError):
            parse_mb_bytes("not-a-number")


class TestGetSemantics:
    def test_unset_yields_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert repro_env.REPRO_BACKEND.get() == "thread"
        assert not repro_env.REPRO_BACKEND.is_set()
        assert repro_env.REPRO_BACKEND.raw() is None

    def test_empty_means_not_configured(self, monkeypatch):
        """``REPRO_BACKEND= pytest ...`` has always meant the default —
        the legacy call sites spelled it ``os.environ.get(X) or DEFAULT``."""
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert repro_env.REPRO_BACKEND.get() == "thread"
        assert repro_env.REPRO_BACKEND.is_set()  # present, just empty

    def test_set_value_is_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert repro_env.REPRO_BACKEND.get() == "process"
        monkeypatch.setenv("REPRO_FULL", "1")
        assert repro_env.REPRO_FULL.get() is True
        monkeypatch.setenv("REPRO_FULL", "0")
        assert repro_env.REPRO_FULL.get() is False

    def test_unparseable_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_MB", "lots")
        assert repro_env.REPRO_ARTIFACT_MAX_MB.get() == 4 << 30

    def test_reparsed_on_every_get(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_MB", "8")
        assert repro_env.REPRO_ARTIFACT_MAX_MB.get() == 8 << 20
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_MB", "16")
        assert repro_env.REPRO_ARTIFACT_MAX_MB.get() == 16 << 20


class TestLegacyEquivalence:
    """The migrated call sites must behave exactly as before the registry."""

    def test_persist_max_bytes(self, monkeypatch):
        from repro.exec import persist

        monkeypatch.setenv("REPRO_ARTIFACT_MAX_MB", "2.5")
        assert persist.max_bytes_from_env() == int(2.5 * (1 << 20))
        monkeypatch.setenv("REPRO_ARTIFACT_MAX_MB", "garbage")
        assert persist.max_bytes_from_env() == persist.DEFAULT_MAX_BYTES

    def test_persist_artifact_dir(self, monkeypatch, tmp_path):
        from repro.exec import persist

        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        assert persist.artifact_dir_from_env() is None
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        assert persist.artifact_dir_from_env() == str(tmp_path)

    def test_backend_resolution_default(self, monkeypatch):
        from repro.exec import backends

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backends.resolve_backend().name == backends.DEFAULT_BACKEND_NAME
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert backends.resolve_backend().name == backends.DEFAULT_BACKEND_NAME

    def test_module_constants_still_exported(self):
        from repro.exec import backends, persist, transport

        assert backends.BACKEND_ENV_VAR == "REPRO_BACKEND"
        assert transport.TRANSPORT_ENV_VAR == "REPRO_TRANSPORT"
        assert persist.ARTIFACT_DIR_ENV_VAR == "REPRO_ARTIFACT_DIR"
        assert persist.ARTIFACT_MAX_MB_ENV_VAR == "REPRO_ARTIFACT_MAX_MB"


class TestRegistry:
    def test_every_repro_var_is_declared(self):
        names = {var.name for var in all_vars()}
        assert {
            "REPRO_BACKEND",
            "REPRO_TRANSPORT",
            "REPRO_ARTIFACT_DIR",
            "REPRO_ARTIFACT_MAX_MB",
            "REPRO_FULL",
            "REPRO_BENCH_QUICK",
            "REPRO_BENCH_SUITE",
            "REPRO_BENCH_DIR",
            "REPRO_REQUIRE_WARM",
        } <= names

    def test_double_registration_is_an_error(self):
        with pytest.raises(ValueError, match="declared twice"):
            register(EnvVar(
                name="REPRO_BACKEND", default="x",
                parser=str, description="dup",
            ))

    def test_lookup_by_name(self):
        assert repro_env.get("REPRO_FULL") is repro_env.REPRO_FULL
        with pytest.raises(KeyError):
            repro_env.get("REPRO_NO_SUCH_KNOB")

    @pytest.mark.parametrize("var", all_vars(), ids=lambda v: v.name)
    def test_consumer_lists_are_accurate(self, var):
        """Each declared consumer module really reads the variable, and no
        undeclared module in the tree reads it behind the registry's back."""
        for module in var.consumers:
            path = os.path.join(REPO_ROOT, module.replace(".", os.sep) + ".py")
            if module.startswith("repro."):
                path = os.path.join(REPO_ROOT, "src", module.replace(".", os.sep) + ".py")
            assert os.path.exists(path), f"{var.name}: consumer {module} not found"
            source = open(path, encoding="utf-8").read()
            assert re.search(rf"\b{var.name}\b", source), (
                f"{var.name}: declared consumer {module} never mentions it"
            )


class TestEnvTable:
    def test_table_covers_every_variable(self):
        table = env_table_markdown()
        for var in all_vars():
            assert f"`{var.name}`" in table

    def test_design_doc_table_is_current(self):
        """DESIGN.md embeds the output of ``--env-table`` between markers;
        regenerate with ``python -m repro.analysis --env-table`` on drift."""
        design = open(os.path.join(REPO_ROOT, "DESIGN.md"), encoding="utf-8").read()
        match = re.search(
            r"<!-- env-table:begin -->\n(.*?)\n<!-- env-table:end -->",
            design,
            re.DOTALL,
        )
        assert match, "DESIGN.md is missing the env-table markers"
        assert match.group(1).strip() == env_table_markdown().strip(), (
            "DESIGN.md env table is stale — regenerate it with "
            "`PYTHONPATH=src python -m repro.analysis --env-table`"
        )
