"""Unit and property tests for the image-quality and FPS metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import FPSTrace, lpips_proxy, mse, psnr, ssim, summarize_fps


def _random_image(seed: int, size: int = 32) -> np.ndarray:
    return np.random.default_rng(seed).uniform(size=(size, size, 3))


class TestSSIM:
    def test_identical_images_score_one(self):
        image = _random_image(0)
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-9)

    def test_noise_reduces_ssim(self):
        image = _random_image(1)
        noisy = np.clip(image + 0.25 * np.random.default_rng(2).standard_normal(image.shape), 0, 1)
        assert ssim(image, noisy) < 0.95

    def test_more_noise_is_worse(self):
        image = _random_image(3)
        rng = np.random.default_rng(4)
        noise = rng.standard_normal(image.shape)
        slightly = np.clip(image + 0.05 * noise, 0, 1)
        heavily = np.clip(image + 0.4 * noise, 0, 1)
        assert ssim(image, heavily) < ssim(image, slightly)

    def test_symmetry(self):
        a, b = _random_image(5), _random_image(6)
        assert ssim(a, b) == pytest.approx(ssim(b, a), abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((8, 8)), np.zeros((9, 8)))

    def test_masked_ssim_isolates_region(self):
        image = _random_image(7)
        corrupted = image.copy()
        corrupted[16:, :, :] = 0.0
        # Far from the corruption boundary the masked score is ~1; inside the
        # corrupted region it collapses.  (Rows adjacent to the boundary are
        # excluded because the Gaussian window mixes both regions there.)
        mask_clean = np.zeros((32, 32), dtype=bool)
        mask_clean[:8] = True
        mask_corrupt = np.zeros((32, 32), dtype=bool)
        mask_corrupt[24:] = True
        assert ssim(image, corrupted, mask=mask_clean) == pytest.approx(1.0, abs=1e-3)
        assert ssim(image, corrupted, mask=mask_corrupt) < 0.5

    def test_empty_mask_raises(self):
        image = _random_image(8)
        with pytest.raises(ValueError):
            ssim(image, image, mask=np.zeros((32, 32), dtype=bool))

    def test_return_map_shape(self):
        image = _random_image(9)
        value, ssim_map = ssim(image, image, return_map=True)
        assert ssim_map.shape == (32, 32)
        assert value == pytest.approx(float(ssim_map.mean()))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_bounded(self, seed):
        a = _random_image(seed, size=16)
        b = _random_image(seed + 1, size=16)
        value = ssim(a, b)
        assert -1.0 <= value <= 1.0


class TestPSNR:
    def test_identical_is_infinite(self):
        image = _random_image(10)
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-6)

    def test_mse_matches_definition(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_monotone_in_error(self):
        image = _random_image(11)
        small = np.clip(image + 0.02, 0, 1)
        large = np.clip(image + 0.2, 0, 1)
        assert psnr(image, small) > psnr(image, large)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((5, 4)))


class TestLPIPSProxy:
    def test_identical_is_zero(self):
        image = _random_image(12, size=48)
        assert lpips_proxy(image, image) == pytest.approx(0.0, abs=1e-12)

    def test_blur_increases_distance(self):
        from scipy.ndimage import gaussian_filter

        image = _random_image(13, size=48)
        light_blur = gaussian_filter(image, sigma=(0.5, 0.5, 0))
        heavy_blur = gaussian_filter(image, sigma=(3.0, 3.0, 0))
        assert lpips_proxy(image, heavy_blur) > lpips_proxy(image, light_blur)

    def test_symmetry(self):
        a, b = _random_image(14, 48), _random_image(15, 48)
        assert lpips_proxy(a, b) == pytest.approx(lpips_proxy(b, a), rel=1e-9)

    def test_too_small_image_raises(self):
        with pytest.raises(ValueError):
            lpips_proxy(np.zeros((4, 4)), np.zeros((4, 4)))

    def test_uniform_shift_barely_matters(self):
        """A small uniform brightness shift should cost far less than
        structural damage of comparable magnitude — the perceptual property
        that distinguishes LPIPS-like metrics from MSE."""
        image = _random_image(16, size=48)
        shifted = np.clip(image + 0.08, 0, 1)
        scrambled = image.copy()
        scrambled[::2, ::2] = 1.0 - scrambled[::2, ::2]
        assert lpips_proxy(image, shifted) < lpips_proxy(image, scrambled)


class TestFPSTrace:
    def test_average(self):
        trace = FPSTrace(fps=np.array([30.0, 40.0, 50.0]))
        assert trace.average == pytest.approx(40.0)

    def test_failed_trace_reports_zero(self):
        trace = FPSTrace(fps=np.zeros(10), failed=True)
        assert trace.average == 0.0
        assert trace.stutter_rate() == 1.0

    def test_steady_state_excludes_warmup(self):
        fps = np.concatenate([np.full(10, 5.0), np.full(90, 30.0)])
        trace = FPSTrace(fps=fps)
        assert trace.steady_state_average(warmup_fraction=0.1) == pytest.approx(30.0)
        assert trace.average < 30.0

    def test_stutter_rate_counts_slow_frames(self):
        fps = np.full(100, 30.0)
        fps[10:15] = 5.0
        trace = FPSTrace(fps=fps)
        assert 0.0 < trace.stutter_rate() <= 0.06

    def test_summary_keys(self):
        summary = summarize_fps(FPSTrace(fps=np.full(20, 24.0)))
        assert summary["average_fps"] == pytest.approx(24.0)
        assert summary["failed"] is False
        assert summary["num_frames"] == 20
