"""Tests for the radiance-field substrate: encoding, MLP, rendering, training,
and the training-coverage degradation model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nerf import (
    AnalyticField,
    DegradedField,
    MLP,
    AdamOptimizer,
    PositionalEncoding,
    coverage_detail_scale,
    composite_samples,
    stratified_samples,
    train_distilled_field,
    train_nerf_from_images,
    volume_render_field,
)
from repro.nerf.rendering import composite_gradients
from repro.metrics import ssim
from repro.scenes.cameras import orbit_cameras
from repro.scenes.library import make_single_object_scene
from repro.scenes.raytrace import render_scene


class TestPositionalEncoding:
    def test_output_dimension(self):
        encoding = PositionalEncoding(num_frequencies=4, include_input=True)
        assert encoding.output_dim == 3 + 2 * 4 * 3
        assert encoding(np.zeros((5, 3))).shape == (5, encoding.output_dim)

    def test_without_input_passthrough(self):
        encoding = PositionalEncoding(num_frequencies=2, include_input=False)
        assert encoding.output_dim == 12

    def test_zero_maps_to_known_values(self):
        encoding = PositionalEncoding(num_frequencies=1, include_input=False)
        encoded = encoding(np.zeros((1, 3)))
        # sin(0) = 0 for the first three entries, cos(0) = 1 for the rest.
        assert np.allclose(encoded[0, :3], 0.0)
        assert np.allclose(encoded[0, 3:], 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PositionalEncoding(num_frequencies=0)
        with pytest.raises(ValueError):
            PositionalEncoding()(np.zeros((5, 2)))

    def test_distinct_points_get_distinct_codes(self):
        encoding = PositionalEncoding(num_frequencies=6)
        points = np.array([[0.1, 0.2, 0.3], [0.1, 0.2, 0.31]])
        codes = encoding(points)
        assert not np.allclose(codes[0], codes[1])


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP([4, 16, 8, 2], seed=0)
        assert mlp(np.zeros((7, 4))).shape == (7, 2)
        assert mlp.num_layers == 3

    def test_parameter_count(self):
        mlp = MLP([3, 5, 2], seed=0)
        assert mlp.num_parameters == (3 * 5 + 5) + (5 * 2 + 2)

    def test_needs_two_layers(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_gradient_matches_numerical(self):
        """Analytic backprop agrees with central finite differences."""
        rng = np.random.default_rng(0)
        mlp = MLP([3, 8, 2], seed=1)
        inputs = rng.normal(size=(5, 3))
        targets = rng.normal(size=(5, 2))

        def loss_value() -> float:
            return float(np.mean((mlp.forward(inputs) - targets) ** 2))

        outputs, cache = mlp.forward(inputs, return_cache=True)
        grad_out = 2.0 * (outputs - targets) / outputs.size
        grads = mlp.backward(grad_out, cache)
        params = mlp.parameters()

        epsilon = 1e-6
        for param, grad in zip(params, grads):
            flat_index = np.unravel_index(np.argmax(np.abs(grad)), grad.shape)
            original = param[flat_index]
            param[flat_index] = original + epsilon
            plus = loss_value()
            param[flat_index] = original - epsilon
            minus = loss_value()
            param[flat_index] = original
            numerical = (plus - minus) / (2 * epsilon)
            assert numerical == pytest.approx(grad[flat_index], rel=1e-4, abs=1e-7)

    def test_adam_reduces_loss_on_regression(self):
        rng = np.random.default_rng(2)
        mlp = MLP([2, 32, 1], seed=3)
        optimizer = AdamOptimizer(learning_rate=5e-3)
        inputs = rng.uniform(-1, 1, size=(256, 2))
        targets = (inputs[:, :1] * inputs[:, 1:2])  # simple product function
        first_loss = None
        for _ in range(150):
            outputs, cache = mlp.forward(inputs, return_cache=True)
            residual = outputs - targets
            loss = float(np.mean(residual**2))
            if first_loss is None:
                first_loss = loss
            grads = mlp.backward(2.0 * residual / residual.size, cache)
            optimizer.step(mlp.parameters(), grads)
        assert loss < 0.3 * first_loss

    def test_adam_mismatched_lengths(self):
        mlp = MLP([2, 2], seed=0)
        with pytest.raises(ValueError):
            AdamOptimizer().step(mlp.parameters(), [np.zeros((2, 2))])


class TestSampling:
    def test_samples_within_bounds_and_sorted(self):
        samples = stratified_samples(np.array([1.0, 2.0]), np.array([3.0, 4.0]), 16, rng=0)
        assert samples.shape == (2, 16)
        assert np.all(samples >= np.array([[1.0], [2.0]]))
        assert np.all(samples <= np.array([[3.0], [4.0]]))
        assert np.all(np.diff(samples, axis=1) >= 0)

    def test_deterministic_without_jitter(self):
        a = stratified_samples(np.zeros(3), np.ones(3), 8, jitter=False)
        b = stratified_samples(np.zeros(3), np.ones(3), 8, jitter=False)
        assert np.array_equal(a, b)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            stratified_samples(np.zeros(2), np.ones(2), 0)
        with pytest.raises(ValueError):
            stratified_samples(np.ones(2), np.zeros(2), 4)


class TestCompositing:
    def test_opaque_first_sample_wins(self):
        densities = np.array([[1e4, 1e4]])
        colors = np.array([[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]])
        deltas = np.full((1, 2), 0.1)
        out = composite_samples(densities, colors, deltas, background=(0, 0, 1))
        assert np.allclose(out["rgb"][0], [1.0, 0.0, 0.0], atol=1e-3)

    def test_empty_space_shows_background(self):
        densities = np.zeros((1, 4))
        colors = np.zeros((1, 4, 3))
        deltas = np.full((1, 4), 0.1)
        out = composite_samples(densities, colors, deltas, background=(0.3, 0.6, 0.9))
        assert np.allclose(out["rgb"][0], [0.3, 0.6, 0.9], atol=1e-6)

    def test_weights_sum_to_alpha(self):
        rng = np.random.default_rng(1)
        densities = rng.uniform(0, 20, size=(6, 12))
        colors = rng.uniform(size=(6, 12, 3))
        deltas = np.full((6, 12), 0.05)
        out = composite_samples(densities, colors, deltas)
        assert np.allclose(out["weights"].sum(axis=1), out["alpha"], atol=1e-9)
        assert np.all(out["alpha"] <= 1.0 + 1e-9)

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(3)
        densities = rng.uniform(0.5, 5.0, size=(2, 5))
        colors = rng.uniform(size=(2, 5, 3))
        deltas = rng.uniform(0.05, 0.15, size=(2, 5))
        background = np.array([0.2, 0.3, 0.4])
        grad_rgb = rng.normal(size=(2, 3))

        def scalar_loss(d):
            out = composite_samples(d, colors, deltas, background=background)
            return float(np.sum(out["rgb"] * grad_rgb))

        out = composite_samples(densities, colors, deltas, background=background)
        grad_density, grad_colors = composite_gradients(
            densities, colors, deltas, grad_rgb, out, background=background
        )
        epsilon = 1e-6
        for index in [(0, 0), (0, 4), (1, 2)]:
            perturbed = densities.copy()
            perturbed[index] += epsilon
            plus = scalar_loss(perturbed)
            perturbed[index] -= 2 * epsilon
            minus = scalar_loss(perturbed)
            numerical = (plus - minus) / (2 * epsilon)
            assert numerical == pytest.approx(grad_density[index], rel=1e-4, abs=1e-7)
        # Colour gradient is exact: dC/dc_i = w_i * grad_rgb.
        expected = out["weights"][..., None] * grad_rgb[:, None, :]
        assert np.allclose(grad_colors, expected)


class TestTraining:
    def test_distillation_learns_a_sphere(self):
        scene = make_single_object_scene("sphere")
        field, log = train_distilled_field(scene, num_iterations=200, batch_size=512, seed=0)
        assert log.final_loss < 0.25 * log.initial_loss
        # The learned SDF separates inside from outside at the centre/far point.
        inside = field.sdf(np.array([[0.0, 0.0, 0.0]]))[0]
        outside = field.sdf(np.array([[0.44, 0.44, 0.44]]))[0]
        assert inside < outside

    def test_image_based_training_reduces_loss(self):
        scene = make_single_object_scene("cube")
        cameras = orbit_cameras(scene.center, radius=1.4 * scene.extent, count=3, width=36, height=36)
        views = [render_scene(scene, camera) for camera in cameras]
        field, log = train_nerf_from_images(
            views,
            cameras,
            scene.bounds_min,
            scene.bounds_max,
            num_iterations=60,
            rays_per_batch=128,
            num_samples=24,
            seed=0,
        )
        early = float(np.mean(log.losses[:10]))
        late = float(np.mean(log.losses[-10:]))
        assert late < early
        assert np.all(field.density(np.zeros((1, 3))) >= 0.0)

    def test_training_input_validation(self):
        with pytest.raises(ValueError):
            train_nerf_from_images([], [], np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            train_nerf_from_images([np.zeros((4, 4, 3))], [], np.zeros(3), np.ones(3))


class TestVolumeRenderField:
    def test_volume_render_resembles_ground_truth(self):
        scene = make_single_object_scene("sphere")
        camera = orbit_cameras(scene.center, radius=1.3 * scene.extent, count=1, width=48, height=48)[0]
        reference = render_scene(scene, camera)
        rendered = volume_render_field(scene, camera, num_samples=96)
        assert ssim(reference.rgb, rendered.rgb) > 0.6
        assert rendered.hit_mask.any()


class TestDegradation:
    def test_detail_scale_from_coverage(self):
        # 100x100 pixels on a unit-extent object -> 0.01 world units per pixel.
        assert coverage_detail_scale([10000], 1.0) == pytest.approx(0.01)
        # The best view (max count) wins.
        assert coverage_detail_scale([100, 10000], 1.0) == pytest.approx(0.01)
        # Stronger networks (factor < 1) resolve finer detail.
        assert coverage_detail_scale([10000], 1.0, network_factor=0.5) == pytest.approx(0.005)

    def test_unobserved_object_degrades_to_extent(self):
        assert coverage_detail_scale([0, 0], 2.0) == pytest.approx(2.0)

    def test_invalid_detail_scale(self):
        scene = make_single_object_scene("cube")
        with pytest.raises(ValueError):
            DegradedField(scene, detail_scale=0.0)

    def test_mild_degradation_preserves_geometry(self):
        scene = make_single_object_scene("cube")
        degraded = DegradedField(scene, detail_scale=0.005, seed=0)
        rng = np.random.default_rng(0)
        points = rng.uniform(scene.bounds_min, scene.bounds_max, size=(2000, 3))
        difference = np.abs(degraded.sdf(points) - scene.sdf(points))
        assert difference.max() < 0.02

    def test_heavier_degradation_hurts_rendered_quality(self):
        scene = make_single_object_scene("lego")
        camera = orbit_cameras(scene.center, radius=1.3 * scene.extent, count=1, width=64, height=64)[0]
        reference = render_scene(scene, camera)
        from repro.baking import bake_field, render_baked

        mild = render_baked(bake_field(DegradedField(scene, 0.004, seed=0), 32, 2), camera)
        heavy = render_baked(bake_field(DegradedField(scene, 0.08, seed=0), 32, 2), camera)
        assert ssim(reference.rgb, mild.rgb) > ssim(reference.rgb, heavy.rgb)

    def test_floaters_appear_only_for_poor_coverage(self):
        scene = make_single_object_scene("cube")
        well_covered = DegradedField(scene, detail_scale=0.004, seed=0)
        poorly_covered = DegradedField(scene, detail_scale=0.1, seed=0)
        assert well_covered.floater_rate == 0.0
        assert poorly_covered.floater_rate > 0.0

    def test_degradation_is_deterministic(self):
        scene = make_single_object_scene("torus")
        points = np.random.default_rng(5).uniform(-0.4, 0.4, size=(100, 3))
        a = DegradedField(scene, 0.03, seed=7).sdf(points)
        b = DegradedField(scene, 0.03, seed=7).sdf(points)
        assert np.array_equal(a, b)
        c = DegradedField(scene, 0.03, seed=8).sdf(points)
        assert not np.array_equal(a, c)

    def test_albedo_quantisation_removes_fine_detail(self):
        scene = make_single_object_scene("lego")
        degraded = DegradedField(scene, detail_scale=0.2, seed=0)
        # Two nearby points inside the same quantisation cell share a colour.
        points = np.array([[0.01, 0.01, 0.01], [0.03, 0.02, 0.01]])
        colors = degraded.albedo(points)
        assert np.allclose(colors[0], colors[1])

    def test_analytic_field_passthrough(self):
        scene = make_single_object_scene("sphere")
        adapter = AnalyticField(scene)
        points = np.random.default_rng(0).uniform(-0.4, 0.4, size=(50, 3))
        assert np.array_equal(adapter.sdf(points), scene.sdf(points))
        assert np.array_equal(adapter.albedo(points), scene.albedo(points))
        assert np.array_equal(adapter.bounds_min, scene.bounds_min)

    @given(scale=st.floats(0.002, 0.2))
    @settings(max_examples=15, deadline=None)
    def test_noise_amplitude_scales_with_detail(self, scale):
        scene = make_single_object_scene("sphere")
        degraded = DegradedField(scene, detail_scale=scale, seed=0)
        assert degraded.noise_amplitude == pytest.approx(0.45 * scale)
        assert degraded.noise_wavelength >= 2.0 * scale
