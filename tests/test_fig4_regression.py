"""Regression test for the Fig. 4 detail-region quality gap (unit tier).

The seed reproduction failed the paper's central Fig. 4 claim: NeRFlex's
detail-region SSIM trailed Instant-NGP by ~0.11 instead of matching it.
Root cause: the baked-size calibration charged 128 bytes per dense grid
cell, so the ``g^3`` volume term dominated every model's byte budget and
priced the granularity the detail objects need (``g ~ 96+``) out of any
mobile budget — the selector could only afford ``g = 64`` everywhere.  The
fix re-calibrates :class:`~repro.baking.baked_model.SizeConstants` so the
byte budget is carried by feature texels and geometry (as in real
MobileNeRF-class bundles) and routes the segmentation module's detail
frequencies into the selector objective as per-object weights.

This file reproduces the end-to-end comparison at a small resolution so the
regression is caught in seconds by the unit tier rather than minutes inside
``benchmarks/``.  Everything is seeded and jitter-free, so the scores are
deterministic.
"""

import numpy as np
import pytest

from repro.baking.baked_model import DEFAULT_SIZE_CONSTANTS
from repro.baselines import NGPEmulator
from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.device.models import DeviceProfile
from repro.metrics import ssim
from repro.render import default_engine
from repro.scenes.dataset import generate_dataset
from repro.scenes.library import make_realworld_scene

#: Paper tolerance of Fig. 4 / Table I: NeRFlex's detail-region SSIM must
#: stay within 0.03 of the Instant-NGP workstation reference.
NGP_TOLERANCE = 0.03


@pytest.fixture(scope="module")
def fig4_small():
    """A small forward-facing real-world-style comparison (seeded)."""
    scene = make_realworld_scene(seed=0, num_objects=2)
    dataset = generate_dataset(
        scene,
        num_train=4,
        num_test=1,
        resolution=80,
        trajectory="forward",
        name="fig4-small",
    )
    # An "iPhone-13-like" budget scaled to the small scene: it binds (the
    # full-configuration bundle would not fit) without starving everything.
    device = DeviceProfile(
        name="tiny-iphone", memory_budget_mb=90.0, hard_memory_limit_mb=90.0
    )
    config = PipelineConfig(
        config_space=ConfigurationSpace(
            granularities=(16, 24, 32, 48, 64, 96), patch_sizes=(1, 2, 4)
        ),
        profile_resolution=96,
        num_eval_views=1,
        object_eval_resolution=104,
        num_fps_frames=100,
    )
    pipeline = NeRFlexPipeline(device, config)
    preparation, model, report = pipeline.run(dataset)
    return scene, dataset, preparation, model, report


def detail_region_ssim(scene, dataset, rendered) -> float:
    """SSIM over the foreground-object (high-frequency detail) pixels."""
    foreground = [
        placed.instance_id
        for placed in scene.placed
        if placed.instance_name != "backdrop"
    ]
    view = dataset.test_views[0]
    mask = np.isin(view.object_ids, foreground)
    assert mask.sum() >= 32
    return float(ssim(view.rgb, rendered.rgb, mask=mask))


class TestFig4DetailRegion:
    def test_nerflex_within_ngp_tolerance_under_budget(self, fig4_small):
        """The paper's headline: detail-based segmentation + the DP selector
        recover workstation-class detail quality under a mobile budget."""
        scene, dataset, preparation, model, report = fig4_small
        assert report.loaded, "NeRFlex must fit the scaled device budget"
        assert model.size_mb() <= 90.0 + 1e-6

        engine = default_engine()
        camera = dataset.test_cameras[0]
        nerflex = detail_region_ssim(
            scene,
            dataset,
            engine.render_baked(model, camera, background=scene.background_color),
        )
        ngp_field = NGPEmulator().build_field(dataset)
        ngp = detail_region_ssim(
            scene,
            dataset,
            engine.render_field(ngp_field, camera, background=scene.background_color),
        )
        assert nerflex >= ngp - NGP_TOLERANCE, (
            f"detail-region SSIM regressed: NeRFlex {nerflex:.4f} vs "
            f"Instant-NGP {ngp:.4f} (tolerance {NGP_TOLERANCE})"
        )

    def test_detail_weights_flow_into_selector(self, fig4_small):
        """Segmentation detail frequencies reach the selector objective:
        the low-frequency backdrop must not outweigh the detail objects."""
        _, _, preparation, _, _ = fig4_small
        weights = {p.name: p.detail_weight for p in preparation.profiles}
        assert weights["backdrop"] < min(
            w for name, w in weights.items() if name != "backdrop"
        )
        assert np.mean(list(weights.values())) == pytest.approx(1.0, abs=1e-9)

    def test_size_model_is_texture_dominated(self):
        """The regression's mechanism: a dense ``g^3`` volume term must not
        dominate the byte budget; textures carry it (MobileNeRF-style)."""
        constants = DEFAULT_SIZE_CONSTANTS
        g, p = 96, 4
        faces = 15_000  # a typical detail object at g=96
        dense = g**3 * constants.dense_grid_bytes_per_cell
        textures = faces * p**2 * constants.texel_bytes
        total = constants.model_bytes(
            num_faces=faces, patch_size=p, num_occupied_voxels=40_000, grid_resolution=g
        )
        assert textures > 0.5 * total
        assert dense < 0.1 * total

    def test_selected_bundle_respects_budget_accounting(self, fig4_small):
        """Deployed sizes come from the shared constants and sum correctly."""
        _, _, preparation, model, report = fig4_small
        assert report.size_mb == pytest.approx(model.size_mb())
        assert sum(report.per_object_size_mb.values()) == pytest.approx(model.size_mb())
        for name, config in preparation.selection.assignments.items():
            assert isinstance(config, Configuration)
