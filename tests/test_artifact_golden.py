"""Cross-invocation golden tier for the persistent artifact store.

Two *separate interpreter invocations* run the full staged pipeline against
one ``$REPRO_ARTIFACT_DIR``.  The second must (a) serve every profile and
bake from disk — zero recomputes in the store statistics — and (b) produce
bit-identical allocations and deployment numbers.  This pins the whole
exec/store surface end to end: canonical key hashing, the container format,
every artefact codec and the pipeline's store wiring.  Any drift — a codec
losing precision, a key picking up process-dependent state, a stage
bypassing the store — fails here before it can corrupt a benchmark.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DRIVER = os.path.join(REPO_ROOT, "tests", "_golden_driver.py")


def run_driver(artifact_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_ARTIFACT_DIR"] = artifact_dir
    # Different hash seeds per invocation: key stability must not depend on
    # string hashing.
    env.pop("PYTHONHASHSEED", None)
    result = subprocess.run(
        [sys.executable, DRIVER],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


@pytest.fixture(scope="module")
def golden_runs(tmp_path_factory):
    artifact_dir = str(tmp_path_factory.mktemp("golden-store"))
    cold = run_driver(artifact_dir)
    warm = run_driver(artifact_dir)
    return cold, warm


class TestCrossInvocationGolden:
    def test_cold_run_populates_the_store(self, golden_runs):
        cold, _ = golden_runs
        recomputes = cold["store"]["recompute_by_kind"]
        assert recomputes.get("profile", 0) > 0
        assert recomputes.get("baked", 0) > 0
        assert cold["store"]["disk_puts"] >= recomputes["profile"] + recomputes["baked"]
        assert cold["report"]["loaded"] is True

    def test_warm_run_recomputes_nothing(self, golden_runs):
        cold, warm = golden_runs
        assert warm["store"]["recompute_by_kind"] == {}
        # Everything the cold run computed came back off the disk tier.
        assert warm["store"]["disk_hits"] >= (
            cold["store"]["recompute_by_kind"]["profile"]
            + cold["store"]["recompute_by_kind"]["baked"]
        )
        assert warm["store"]["reuse_by_kind"].get("profile", 0) > 0
        assert warm["store"]["reuse_by_kind"].get("baked", 0) > 0

    def test_warm_run_is_bit_identical(self, golden_runs):
        cold, warm = golden_runs
        # Allocations, profile state and the full deployment report: exact
        # equality, no tolerances (floats round-trip through JSON repr).
        assert warm["assignments"] == cold["assignments"]
        assert warm["predicted_size_mb"] == cold["predicted_size_mb"]
        assert warm["predicted_quality"] == cold["predicted_quality"]
        assert warm["profile_state_sha256"] == cold["profile_state_sha256"]
        assert warm["report"] == cold["report"]
