"""Mixed-complexity regression: the paper's SLSQP misallocation vs the DP.

On the default benchmark scene subset the SLSQP baseline happens to tie the
DP (texture-dominated sizes leave the continuous relaxation no gap — see
EXPERIMENTS.md), which is why the paper's §IV-C claim needs a *mixed*
complexity scene to show: high-complexity objects (lego, ship) whose
saturating quality curves give the relaxation vanishing gradients next to
cheap low-complexity ones (sphere, cube).  There SLSQP exhibits the
paper's failure mode: started from the minimum configuration, it leaves
high-detail objects at the space floor and walks away with a large slice
of the budget unspent, while the DP — optimal for the discrete problem up
to size discretisation — spends the budget on them.

The test runs the real profiler (segmentation -> profile) on such a scene
and pins the allocation signature.  It rides the ``REPRO_FULL=1`` sweep
(the ROADMAP's open item) because fitting real profiles for four objects
is benchmark-scale work, not unit-tier work.
"""

from __future__ import annotations

import pytest

from repro.config import env as repro_env
from repro.core.config_space import ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.core.selector import NeRFlexDPSelector
from repro.core.selector_baselines import SLSQPSelector
from repro.device.models import DeviceProfile
from repro.exec import ArtifactStore
from repro.scenes.dataset import generate_dataset
from repro.scenes.scene import compose_scene

FULL_SWEEP = repro_env.REPRO_FULL.get()

pytestmark = pytest.mark.skipif(
    not FULL_SWEEP, reason="mixed-complexity profiling sweep; set REPRO_FULL=1"
)

MIXED_DEVICE = DeviceProfile(
    name="MixedPhone",
    memory_budget_mb=160.0,
    hard_memory_limit_mb=210.0,
    compute_score=6.0,
)


@pytest.fixture(scope="module")
def mixed_profiles():
    """Real fitted profiles for a mixed-complexity four-object scene."""
    scene = compose_scene(
        ["lego", "ship", "sphere", "cube"], layout="cluster", spacing=1.15, seed=0
    )
    dataset = generate_dataset(scene, num_train=4, num_test=1, resolution=64, name="mixed")
    config = PipelineConfig(
        config_space=ConfigurationSpace(
            granularities=(16, 24, 32, 48, 64), patch_sizes=(1, 2, 3)
        ),
        profile_resolution=64,
        object_eval_resolution=64,
        num_eval_views=1,
        num_fps_frames=64,
        backend="serial",
    )
    pipeline = NeRFlexPipeline(MIXED_DEVICE, config, artifacts=ArtifactStore())
    preparation = pipeline.prepare(dataset)
    budget = MIXED_DEVICE.memory_budget_mb * (1.0 - config.selector_safety_margin)
    return preparation.profiles, budget


def total_objective(profiles, selection) -> float:
    return sum(
        profile.objective_quality(selection.assignments[profile.name])
        for profile in profiles
    )


class TestSLSQPMisallocation:
    def test_dp_dominates_slsqp_objective(self, mixed_profiles):
        profiles, budget = mixed_profiles
        dp = NeRFlexDPSelector().select(profiles, budget)
        slsqp = SLSQPSelector().select(profiles, budget)
        assert dp.feasible
        # The DP is optimal for the discrete problem; the relaxation can
        # never beat it on its own objective.
        assert total_objective(profiles, dp) >= total_objective(profiles, slsqp)

    def test_slsqp_starves_a_high_detail_object(self, mixed_profiles):
        """The paper's misallocation signature, pinned structurally.

        SLSQP leaves at least one above-average-detail object at the
        configuration-space floor *while* leaving a large slice of the
        budget unspent; the DP upgrades that same object beyond the floor.
        """
        profiles, budget = mixed_profiles
        dp = NeRFlexDPSelector().select(profiles, budget)
        slsqp = SLSQPSelector().select(profiles, budget)

        starved = [
            profile
            for profile in profiles
            if profile.detail_weight > 1.0
            and slsqp.assignments[profile.name] == profile.config_space.min_config
            and dp.assignments[profile.name] != profile.config_space.min_config
        ]
        assert starved, (
            "expected SLSQP to leave a high-detail object at the minimum "
            f"configuration; got {[(p.name, slsqp.assignments[p.name].as_tuple()) for p in profiles]}"
        )
        for profile in starved:
            assert (
                dp.assignments[profile.name].granularity
                > slsqp.assignments[profile.name].granularity
            )

        # ... and the starvation is not forced by the budget: SLSQP leaves
        # a double-digit share of it on the table, the DP spends it.
        assert slsqp.total_predicted_size_mb < 0.8 * budget
        assert dp.total_predicted_size_mb > slsqp.total_predicted_size_mb
