"""Tests for the mobile-device simulator (memory model and FPS traces)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import (
    DEVICE_LIBRARY,
    IPHONE_13,
    PIXEL_4,
    DeviceProfile,
    MemoryModel,
    RenderSimulator,
    simulate_fps_trace,
)


class TestDeviceProfiles:
    def test_paper_budgets(self):
        assert IPHONE_13.memory_budget_mb == 240.0
        assert PIXEL_4.memory_budget_mb == 150.0

    def test_library_contains_both_devices(self):
        assert set(DEVICE_LIBRARY) == {"iphone13", "pixel4"}

    def test_iphone_is_faster_than_pixel(self):
        assert IPHONE_13.compute_score > PIXEL_4.compute_score
        assert IPHONE_13.steady_state_fps(150.0) > PIXEL_4.steady_state_fps(150.0)

    def test_frame_time_monotone_in_size(self):
        assert IPHONE_13.frame_time_ms(200.0) > IPHONE_13.frame_time_ms(100.0)

    def test_excess_penalty_kicks_in_above_budget(self):
        below = PIXEL_4.frame_time_ms(150.0)
        above = PIXEL_4.frame_time_ms(151.0)
        assert (above - below) > (PIXEL_4.frame_time_ms(150.0) - PIXEL_4.frame_time_ms(149.0))

    def test_unloadable_size_gives_zero_fps(self):
        assert IPHONE_13.steady_state_fps(300.0) == 0.0

    def test_paper_fps_targets(self):
        """The calibration of the frame-time model reproduces the paper's
        headline numbers: ~35 FPS on iPhone and ~25 FPS on Pixel for
        NeRFlex-sized data, and roughly half that for oversized data on the
        Pixel."""
        assert 30.0 <= IPHONE_13.steady_state_fps(230.0, num_submodels=5) <= 40.0
        assert 20.0 <= PIXEL_4.steady_state_fps(145.0, num_submodels=5) <= 30.0
        assert PIXEL_4.steady_state_fps(280.0) < 0.6 * PIXEL_4.steady_state_fps(145.0)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", memory_budget_mb=0, hard_memory_limit_mb=10)
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", memory_budget_mb=10, hard_memory_limit_mb=10, compute_score=0)
        with pytest.raises(ValueError):
            IPHONE_13.frame_time_ms(-1.0)


class TestMemoryModel:
    def test_iphone_refuses_oversized_data(self):
        outcome = MemoryModel(IPHONE_13).try_load(260.0)
        assert not outcome.loaded
        assert "exceeds" in outcome.reason

    def test_pixel_loads_oversized_data(self):
        outcome = MemoryModel(PIXEL_4).try_load(260.0)
        assert outcome.loaded
        assert outcome.load_time_s > 0.0

    def test_within_budget(self):
        memory = MemoryModel(PIXEL_4)
        assert memory.within_budget(150.0)
        assert not memory.within_budget(150.1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(IPHONE_13).try_load(-5.0)


class TestRenderSimulator:
    def test_failed_load_gives_failed_trace(self):
        trace = simulate_fps_trace(IPHONE_13, size_mb=300.0, num_frames=100)
        assert trace.failed
        assert trace.average == 0.0

    def test_trace_length_and_positivity(self):
        trace = simulate_fps_trace(IPHONE_13, size_mb=200.0, num_frames=500)
        assert trace.num_frames == 500
        assert np.all(trace.fps > 0.0)

    def test_steady_state_matches_analytic_model(self):
        trace = simulate_fps_trace(PIXEL_4, size_mb=140.0, num_submodels=5, num_frames=2000)
        analytic = PIXEL_4.steady_state_fps(140.0, num_submodels=5)
        assert trace.steady_state_average() == pytest.approx(analytic, rel=0.1)

    def test_loading_phase_is_slower(self):
        trace = simulate_fps_trace(IPHONE_13, size_mb=200.0, num_frames=2000)
        loading = trace.fps[:50].mean()
        steady = trace.fps[500:].mean()
        assert loading < steady

    def test_deterministic_for_fixed_seed(self):
        a = RenderSimulator(IPHONE_13, seed=3).simulate(100.0, num_frames=200)
        b = RenderSimulator(IPHONE_13, seed=3).simulate(100.0, num_frames=200)
        assert np.array_equal(a.fps, b.fps)

    def test_invalid_frame_count(self):
        with pytest.raises(ValueError):
            RenderSimulator(IPHONE_13).simulate(100.0, num_frames=0)

    @given(size=st.floats(1.0, 400.0))
    @settings(max_examples=20, deadline=None)
    def test_larger_data_never_renders_faster(self, size):
        smaller = PIXEL_4.steady_state_fps(size)
        larger = PIXEL_4.steady_state_fps(size + 20.0)
        assert larger <= smaller + 1e-9
