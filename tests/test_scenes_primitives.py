"""Tests for SDF primitives, objects and scene composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenes import primitives as prim
from repro.scenes.objects import (
    OBJECT_LIBRARY,
    REFERENCE_OBJECT_NAMES,
    list_objects,
    make_object,
)
from repro.scenes.scene import PlacedObject, Scene, compose_scene

_POINTS = st.lists(
    st.tuples(
        st.floats(-2, 2, allow_nan=False),
        st.floats(-2, 2, allow_nan=False),
        st.floats(-2, 2, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
).map(np.array)


class TestPrimitives:
    def test_sphere_distances(self):
        points = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        dist = prim.sdf_sphere(points, (0, 0, 0), 1.0)
        assert dist[0] == pytest.approx(-1.0)
        assert dist[1] == pytest.approx(1.0)
        assert dist[2] == pytest.approx(0.0, abs=1e-12)

    def test_box_center_is_inside(self):
        dist = prim.sdf_box(np.zeros((1, 3)), (0, 0, 0), (0.5, 0.5, 0.5))
        assert dist[0] == pytest.approx(-0.5)

    def test_box_outside_corner_distance(self):
        point = np.array([[1.0, 1.0, 1.0]])
        dist = prim.sdf_box(point, (0, 0, 0), (0.5, 0.5, 0.5))
        assert dist[0] == pytest.approx(np.sqrt(3 * 0.25))

    def test_torus_ring_is_surface(self):
        point = np.array([[0.5, 0.0, 0.0]])
        assert prim.sdf_torus(point, (0, 0, 0), 0.4, 0.1)[0] == pytest.approx(0.0, abs=1e-12)

    def test_cylinder_contains_axis(self):
        points = np.array([[0.0, 0.2, 0.0]])
        assert prim.sdf_cylinder(points, (0, 0, 0), 0.3, 0.5)[0] < 0

    def test_capsule_degenerate_is_sphere(self):
        points = np.array([[0.2, 0.0, 0.0]])
        capsule = prim.sdf_capsule(points, (0, 0, 0), (0, 0, 0), 0.5)
        sphere = prim.sdf_sphere(points, (0, 0, 0), 0.5)
        assert capsule[0] == pytest.approx(sphere[0])

    def test_union_is_min(self):
        a = np.array([1.0, -0.5])
        b = np.array([0.2, 0.3])
        assert np.allclose(prim.sdf_union(a, b), [0.2, -0.5])

    def test_subtraction_removes_overlap(self):
        points = np.zeros((1, 3))
        base = prim.sdf_sphere(points, (0, 0, 0), 1.0)
        cut = prim.sdf_sphere(points, (0, 0, 0), 0.5)
        assert prim.sdf_subtraction(base, cut)[0] > 0  # centre was carved out

    def test_repeat_wraps_coordinates(self):
        points = np.array([[1.05, 0.3, -0.95]])
        wrapped = prim.repeat_xz(points, 1.0)
        assert abs(wrapped[0, 0]) <= 0.5
        assert abs(wrapped[0, 2]) <= 0.5
        assert wrapped[0, 1] == pytest.approx(0.3)

    def test_rounded_box_rejects_large_radius(self):
        with pytest.raises(ValueError):
            prim.sdf_rounded_box(np.zeros((1, 3)), (0, 0, 0), (0.1, 0.1, 0.1), 0.2)

    def test_bad_points_shape_rejected(self):
        with pytest.raises(ValueError):
            prim.sdf_sphere(np.zeros((3,)), (0, 0, 0), 1.0)

    @given(points=_POINTS)
    @settings(max_examples=25, deadline=None)
    def test_union_lower_bound_property(self, points):
        """The union distance never exceeds either operand (metric property)."""
        a = prim.sdf_sphere(points, (0.2, 0.0, 0.0), 0.4)
        b = prim.sdf_box(points, (-0.3, 0.1, 0.0), (0.3, 0.2, 0.25))
        union = prim.sdf_union(a, b)
        assert np.all(union <= a + 1e-12)
        assert np.all(union <= b + 1e-12)

    @given(points=_POINTS)
    @settings(max_examples=25, deadline=None)
    def test_sphere_is_exact_distance(self, points):
        """The sphere SDF is 1-Lipschitz (true distances)."""
        dist = prim.sdf_sphere(points, (0, 0, 0), 0.7)
        radius = np.linalg.norm(points, axis=1)
        assert np.allclose(dist, radius - 0.7)


class TestObjects:
    def test_library_contains_reference_objects(self):
        for name in REFERENCE_OBJECT_NAMES:
            assert name in OBJECT_LIBRARY

    def test_unknown_object_raises(self):
        with pytest.raises(KeyError):
            make_object("spaceship")

    def test_list_objects_sorted(self):
        names = list_objects()
        assert names == sorted(names)

    @pytest.mark.parametrize("name", list_objects())
    def test_object_has_interior_and_exterior(self, name):
        obj = make_object(name)
        rng = np.random.default_rng(0)
        points = rng.uniform(obj.bounds_min, obj.bounds_max, size=(4000, 3))
        distances = obj.sdf(points)
        assert np.any(distances < 0), f"{name} has no interior samples"
        assert np.any(distances > 0), f"{name} has no exterior samples"

    @pytest.mark.parametrize("name", list_objects())
    def test_albedo_in_unit_range(self, name):
        obj = make_object(name)
        rng = np.random.default_rng(1)
        points = rng.uniform(obj.bounds_min, obj.bounds_max, size=(500, 3))
        colors = obj.albedo(points)
        assert colors.shape == (500, 3)
        assert colors.min() >= 0.0 and colors.max() <= 1.0

    @pytest.mark.parametrize("name", list_objects())
    def test_surface_within_bounds(self, name):
        """No interior point may lie outside the declared bounding box."""
        obj = make_object(name)
        rng = np.random.default_rng(2)
        margin = 0.25
        lo = obj.bounds_min - margin
        hi = obj.bounds_max + margin
        points = rng.uniform(lo, hi, size=(6000, 3))
        inside = obj.sdf(points) <= 0
        outside_box = np.any((points < obj.bounds_min) | (points > obj.bounds_max), axis=1)
        assert not np.any(inside & outside_box), f"{name} spills outside its bounds"

    def test_complexity_ranks_follow_paper_order(self):
        ranks = [make_object(name).complexity_rank for name in REFERENCE_OBJECT_NAMES]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_texture_frequency_increases_with_complexity(self):
        freqs = [make_object(name).texture_frequency for name in REFERENCE_OBJECT_NAMES]
        assert freqs[0] < freqs[-1]


class TestSceneComposition:
    def test_placed_object_translation(self):
        obj = make_object("sphere")
        placed = PlacedObject(obj=obj, translation=np.array([2.0, 0.0, 0.0]), instance_id=0)
        assert placed.sdf(np.array([[2.0, 0.0, 0.0]]))[0] < 0
        assert placed.sdf(np.array([[0.0, 0.0, 0.0]]))[0] > 0

    def test_placed_object_scaling_scales_distance(self):
        obj = make_object("sphere")  # radius 0.35
        placed = PlacedObject(obj=obj, scale=2.0, instance_id=0)
        dist = placed.sdf(np.array([[1.4, 0.0, 0.0]]))
        assert dist[0] == pytest.approx(0.7, abs=1e-9)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            PlacedObject(obj=make_object("cube"), scale=0.0, instance_id=0)

    def test_scene_requires_unique_ids(self):
        obj = make_object("cube")
        with pytest.raises(ValueError):
            Scene(
                [
                    PlacedObject(obj=obj, instance_id=0, instance_name="a"),
                    PlacedObject(obj=obj, instance_id=0, instance_name="b"),
                ]
            )

    def test_compose_scene_unique_names_for_duplicates(self):
        scene = compose_scene(["lego", "lego", "ship"], layout="line", seed=None)
        assert scene.instance_names == ["lego", "lego_2", "ship"]

    def test_scene_sdf_is_min_of_members(self, two_object_scene):
        points = np.random.default_rng(3).uniform(-1.2, 1.2, size=(200, 3))
        combined = two_object_scene.sdf(points)
        member = np.min(
            [placed.sdf(points) for placed in two_object_scene.placed], axis=0
        )
        assert np.allclose(combined, member)

    def test_classify_returns_nearest_instance(self, two_object_scene):
        points = np.array([[-0.55, 0.0, 0.0], [0.55, 0.0, 0.0]])
        _, ids = two_object_scene.classify(points)
        assert ids.tolist() == [0, 1]

    def test_subset_preserves_placement(self, two_object_scene):
        subset = two_object_scene.subset([1])
        assert subset.instance_names == ["cube"]
        assert np.allclose(subset.placed[0].translation, [0.55, 0.0, 0.0])

    def test_subset_missing_id_raises(self, two_object_scene):
        with pytest.raises(ValueError):
            two_object_scene.subset([99])

    def test_bounds_contain_all_members(self, two_object_scene):
        for placed in two_object_scene.placed:
            assert np.all(two_object_scene.bounds_min <= placed.bounds_min + 1e-9)
            assert np.all(two_object_scene.bounds_max >= placed.bounds_max - 1e-9)

    @pytest.mark.parametrize("layout", ["cluster", "circle", "line", "grid"])
    def test_layouts_produce_disjoint_centres(self, layout):
        scene = compose_scene(["sphere", "cube", "torus", "mug"], layout=layout, seed=0)
        centres = np.array([placed.translation for placed in scene.placed])
        distances = np.linalg.norm(centres[:, None, :] - centres[None, :, :], axis=-1)
        off_diagonal = distances[~np.eye(len(centres), dtype=bool)]
        assert off_diagonal.min() > 0.3

    def test_unknown_layout_raises(self):
        with pytest.raises(ValueError):
            compose_scene(["sphere"], layout="spiral")

    def test_empty_scene_rejected(self):
        with pytest.raises(ValueError):
            compose_scene([])
