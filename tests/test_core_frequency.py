"""Tests for detail-frequency analysis and the configuration space."""

import numpy as np
import pytest

from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.frequency import (
    detail_frequency,
    max_frequency_over_views,
    radial_energy_profile,
    spectral_residual_saliency,
)


def _pattern_image(frequency: float, size: int = 64) -> np.ndarray:
    xs = np.linspace(0, 1, size)
    grid_x, grid_y = np.meshgrid(xs, xs)
    return 0.5 + 0.5 * np.sin(2 * np.pi * frequency * grid_x) * np.sin(
        2 * np.pi * frequency * grid_y
    )


class TestDetailFrequency:
    def test_high_frequency_pattern_scores_higher(self):
        low = detail_frequency(_pattern_image(2))
        high = detail_frequency(_pattern_image(14))
        assert high > low

    def test_flat_image_scores_zero(self):
        assert detail_frequency(np.full((32, 32), 0.5)) == 0.0

    def test_frequency_is_bounded_by_nyquist(self):
        assert 0.0 <= detail_frequency(_pattern_image(30)) <= 0.5

    def test_mask_restricts_analysis(self):
        image = np.full((64, 64), 0.5)
        image[:, 32:] = _pattern_image(14)[:, 32:]
        flat_mask = np.zeros((64, 64), dtype=bool)
        flat_mask[:, :32] = True
        busy_mask = ~flat_mask
        assert detail_frequency(image, busy_mask) > detail_frequency(image, flat_mask)

    def test_tiny_mask_scores_zero(self):
        image = _pattern_image(8)
        mask = np.zeros((64, 64), dtype=bool)
        mask[0, 0] = True
        assert detail_frequency(image, mask) == 0.0

    def test_mask_shape_mismatch(self):
        with pytest.raises(ValueError):
            detail_frequency(np.zeros((8, 8)), np.zeros((4, 4), dtype=bool))

    def test_reference_objects_ranked_by_texture_detail(self, small_dataset):
        """In rendered views, the high-frequency cube scores above the smooth
        sphere — the signal the segmentation module relies on."""
        view = small_dataset.train_views[0]
        sphere_freq = detail_frequency(view.rgb, view.object_mask(0))
        cube_freq = detail_frequency(view.rgb, view.object_mask(1))
        assert cube_freq > sphere_freq

    def test_max_over_views(self):
        images = [_pattern_image(2), _pattern_image(16)]
        masks = [np.ones((64, 64), bool), np.ones((64, 64), bool)]
        value = max_frequency_over_views(images, masks)
        assert value == pytest.approx(detail_frequency(images[1]), abs=1e-9)

    def test_max_over_views_skips_missing(self):
        images = [_pattern_image(4), _pattern_image(16)]
        masks = [np.ones((64, 64), bool), None]
        assert max_frequency_over_views(images, masks) == pytest.approx(
            detail_frequency(images[0]), abs=1e-9
        )

    def test_max_over_views_length_mismatch(self):
        with pytest.raises(ValueError):
            max_frequency_over_views([np.zeros((8, 8))], [])

    def test_radial_profile_shapes(self):
        frequencies, energy = radial_energy_profile(_pattern_image(6), num_bins=16)
        assert frequencies.shape == (16,)
        assert energy.shape == (16,)
        assert np.all(energy >= 0)

    def test_saliency_highlights_structured_region(self):
        image = np.full((64, 64), 0.5)
        image[20:44, 20:44] = _pattern_image(10)[20:44, 20:44]
        saliency = spectral_residual_saliency(image)
        assert saliency.shape == (64, 64)
        # The region containing the novel textured object (including its
        # boundary, where spectral-residual saliency concentrates) scores
        # higher than a featureless corner.
        assert saliency[18:46, 18:46].mean() > 1.2 * saliency[:12, :12].mean()
        assert saliency[18:46, 18:46].max() > saliency[:12, :12].max()
        assert 0.0 <= saliency.min() and saliency.max() <= 1.0


class TestConfiguration:
    def test_aliases_match_paper_notation(self):
        config = Configuration(64, 4)
        assert config.g == 64 and config.p == 4
        assert config.as_tuple() == (64, 4)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            Configuration(1, 4)
        with pytest.raises(ValueError):
            Configuration(16, 0)

    def test_ordering_and_hashing(self):
        assert Configuration(16, 2) < Configuration(32, 1)
        assert len({Configuration(16, 2), Configuration(16, 2)}) == 1


class TestConfigurationSpace:
    def test_iteration_covers_product(self):
        space = ConfigurationSpace(granularities=(8, 16), patch_sizes=(1, 2, 3))
        assert len(space) == 6
        assert len(list(space)) == 6

    def test_membership(self):
        space = ConfigurationSpace(granularities=(8, 16), patch_sizes=(1, 2))
        assert Configuration(8, 2) in space
        assert Configuration(12, 2) not in space

    def test_min_and_max_config(self):
        space = ConfigurationSpace(granularities=(32, 8, 16), patch_sizes=(4, 1))
        assert space.min_config == Configuration(8, 1)
        assert space.max_config == Configuration(32, 4)

    def test_values_are_sorted_and_deduplicated(self):
        space = ConfigurationSpace(granularities=(16, 8, 16), patch_sizes=(2, 2, 1))
        assert space.granularities == (8, 16)
        assert space.patch_sizes == (1, 2)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(granularities=(), patch_sizes=(1,))

    def test_profiling_granularities_follow_tripling_rule(self):
        space = ConfigurationSpace(granularities=(16, 24, 32, 48, 64, 96, 128), patch_sizes=(1, 2, 4))
        samples = space.profiling_granularities()
        assert samples[0] == 16
        assert samples[-1] == 128
        assert len(samples) <= 4

    def test_profiling_patch_sizes_min_mid_max(self):
        space = ConfigurationSpace(granularities=(16, 32), patch_sizes=(1, 2, 3, 4, 6, 8))
        assert space.profiling_patch_sizes() == (1, 4, 8)

    def test_profiling_configs_cover_both_knobs(self, tiny_config_space):
        configs = tiny_config_space.profiling_configs()
        granularities = {config.granularity for config in configs}
        patches = {config.patch_size for config in configs}
        assert len(granularities) >= 2
        assert len(patches) >= 2
        assert len(configs) >= 4
