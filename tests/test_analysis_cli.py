"""End-to-end tests of ``python -m repro.analysis``: exit codes, JSON
output schema, baseline round-trips, and the CI-gate contract (a clean
tree exits 0; reintroducing any regression-fixture bug exits 1)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import Baseline, BaselineEntry, all_rules, analyze_paths
from repro.analysis.__main__ import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")


def run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=120,
    )


def write_module(tmp_path, rel_path, source):
    path = tmp_path / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


#: One known-bad module per regression class the acceptance criteria name.
REGRESSION_FIXTURES = {
    "seed-aliasing": (
        "src/repro/exec/bad_rng.py",
        "import numpy as np\n"
        "def shard_rng(seed, shard_index):\n"
        "    root = int(np.random.SeedSequence().entropy) if seed is None else seed\n"
        "    return np.random.default_rng([root, shard_index])\n",
        "REP-D105",
    ),
    "hash-key": (
        "src/repro/exec/bad_key.py",
        "def key_filename(key):\n"
        "    return f'{hash(key):x}.npz'\n",
        "REP-D101",
    ),
    "unlocked-mutation": (
        "src/repro/render/bad_lock.py",
        "import threading\n"
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.hits = 0\n"
        "    def record(self):\n"
        "        self.hits += 1\n",
        "REP-L301",
    ),
    "raw-env-read": (
        "src/repro/core/bad_env.py",
        "import os\n"
        "FULL = os.environ.get('REPRO_FULL', '0') != '0'\n",
        "REP-E401",
    ),
}


class TestCliGate:
    def test_clean_tree_exits_zero(self, tmp_path):
        write_module(tmp_path, "src/repro/core/good.py", "VALUE = 1\n")
        result = run_cli(["src"], cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 new finding(s)" in result.stdout

    @pytest.mark.parametrize("name", sorted(REGRESSION_FIXTURES))
    def test_regression_fixture_fails_the_gate(self, tmp_path, name):
        rel_path, source, expected_rule = REGRESSION_FIXTURES[name]
        write_module(tmp_path, rel_path, source)
        result = run_cli(["src"], cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert expected_rule in result.stdout
        assert rel_path.replace(os.sep, "/") in result.stdout

    def test_default_paths_and_missing_dirs_are_tolerated(self, tmp_path):
        # The default invocation lints src tests benchmarks; a tree that
        # only has src must still work (the others contribute no files).
        write_module(tmp_path, "src/repro/core/good.py", "VALUE = 1\n")
        result = run_cli([], cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_list_rules_names_every_family(self, tmp_path):
        result = run_cli(["--list-rules"], cwd=tmp_path)
        assert result.returncode == 0
        listed = result.stdout
        for family_rule in ("REP-D101", "REP-F201", "REP-L301", "REP-E401"):
            assert family_rule in listed

    def test_rule_catalog_has_at_least_four_families(self):
        families = {rule.rule_id[:5] for rule in all_rules()}
        assert {"REP-D", "REP-F", "REP-L", "REP-E"} <= families


class TestJsonOutput:
    def test_schema(self, tmp_path):
        rel_path, source, expected_rule = REGRESSION_FIXTURES["hash-key"]
        write_module(tmp_path, rel_path, source)
        result = run_cli(["--json", "src"], cwd=tmp_path)
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert {"id", "title", "severity"} <= set(payload["rules"][0])
        assert payload["summary"]["files"] == 1
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["baselined"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == expected_rule
        assert finding["path"].endswith("bad_key.py")
        assert finding["line"] == 2
        assert finding["col"] > 0
        assert finding["severity"] in ("error", "warning")
        assert finding["message"]

    def test_clean_json_run(self, tmp_path):
        write_module(tmp_path, "src/repro/core/good.py", "VALUE = 1\n")
        result = run_cli(["--json", "src"], cwd=tmp_path)
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["findings"] == []


class TestBaseline:
    def test_round_trip_suppresses_exactly_the_written_findings(self, tmp_path):
        rel_path, source, _ = REGRESSION_FIXTURES["hash-key"]
        write_module(tmp_path, rel_path, source)

        # Without a baseline the finding gates.
        assert run_cli(["src"], cwd=tmp_path).returncode == 1

        # --write-baseline accepts it ...
        result = run_cli(["--write-baseline", "src"], cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        baseline_path = tmp_path / ".analysis-baseline.json"
        assert baseline_path.exists()

        # ... and the next run is green, reporting it as baselined.
        result = run_cli(["src"], cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "1 baselined" in result.stdout

        # A *different* new finding still gates.
        write_module(
            tmp_path, "src/repro/core/bad_env.py",
            REGRESSION_FIXTURES["raw-env-read"][1],
        )
        assert run_cli(["src"], cwd=tmp_path).returncode == 1

    def test_baseline_match_ignores_line_drift(self, tmp_path):
        rel_path, source, _ = REGRESSION_FIXTURES["hash-key"]
        write_module(tmp_path, rel_path, source)
        run_cli(["--write-baseline", "src"], cwd=tmp_path)
        # Prepend a comment block: every line number shifts, the entry
        # must still match (identity is rule+path+message, not line).
        write_module(tmp_path, rel_path, "# shifted\n# shifted\n" + source)
        result = run_cli(["src"], cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_write_baseline_preserves_human_reasons(self, tmp_path):
        rel_path, source, _ = REGRESSION_FIXTURES["hash-key"]
        write_module(tmp_path, rel_path, source)
        run_cli(["--write-baseline", "src"], cwd=tmp_path)
        baseline_path = str(tmp_path / ".analysis-baseline.json")

        payload = json.load(open(baseline_path))
        payload["entries"][0]["reason"] = "legacy digest, migrating in PR 7"
        with open(baseline_path, "w") as handle:
            json.dump(payload, handle)

        run_cli(["--write-baseline", "src"], cwd=tmp_path)
        payload = json.load(open(baseline_path))
        assert payload["entries"][0]["reason"] == "legacy digest, migrating in PR 7"

    def test_write_baseline_prunes_fixed_findings(self, tmp_path):
        rel_path, source, _ = REGRESSION_FIXTURES["hash-key"]
        path = write_module(tmp_path, rel_path, source)
        run_cli(["--write-baseline", "src"], cwd=tmp_path)
        path.write_text("import hashlib\n")  # fixed
        run_cli(["--write-baseline", "src"], cwd=tmp_path)
        payload = json.load(open(tmp_path / ".analysis-baseline.json"))
        assert payload["entries"] == []

    def test_api_round_trip(self, tmp_path):
        entries = [
            BaselineEntry(rule="REP-D101", path="src/a.py", message="m1", reason="r"),
            BaselineEntry(rule="REP-E401", path="src/b.py", message="m2"),
        ]
        baseline = Baseline(entries=entries)
        path = str(tmp_path / "base.json")
        baseline.save(path)
        loaded = Baseline.load(path)
        assert {entry.key() for entry in loaded.entries} == {
            entry.key() for entry in entries
        }
        assert loaded.entries[0].reason in ("r", "")

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(Baseline.load(str(tmp_path / "nope.json"))) == 0

    def test_version_mismatch_is_an_error(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(str(path))
        # And the CLI reports it as a usage error, not a crash.
        write_module(tmp_path, "src/repro/core/good.py", "VALUE = 1\n")
        result = run_cli(["--baseline", str(path), "src"], cwd=tmp_path)
        assert result.returncode == 2
        assert "baseline" in result.stderr


class TestRepositoryGate:
    def test_whole_repo_is_clean_under_the_checked_in_baseline(self):
        """The exact CI invocation: src + tests + benchmarks from the repo
        root must produce zero non-baselined findings."""
        baseline = Baseline.load(os.path.join(REPO_ROOT, ".analysis-baseline.json"))
        result = analyze_paths(
            [os.path.join(REPO_ROOT, d) for d in ("src", "tests", "benchmarks")],
            all_rules(),
            baseline=baseline,
        )
        assert result.files_checked > 90
        assert result.findings == [], "\n".join(f.format() for f in result.findings)

    def test_in_process_main_matches_subprocess(self, tmp_path, capsys, monkeypatch):
        write_module(tmp_path, "src/repro/core/good.py", "VALUE = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out


#: Known-bad interprocedural fixtures: each must fail the CLI gate with
#: its rule, including the pre-fix PR 8 profiler shape.
INTERPROCEDURAL_FIXTURES = {
    "shipped-wall-clock": (
        "src/repro/exec/bad_reach.py",
        "import time\n"
        "def helper():\n"
        "    return time.time()\n"
        "def task(item):\n"
        "    return helper()\n"
        "def run(backend, items):\n"
        "    return backend.map(task, items)\n",
        "REP-F203",
    ),
    "shipped-lock": (
        "src/repro/exec/bad_lock_reach.py",
        "import threading\n"
        "def helper():\n"
        "    return threading.Lock()\n"
        "def task(item):\n"
        "    return helper()\n"
        "def run(backend, items):\n"
        "    return backend.map(task, items)\n",
        "REP-F204",
    ),
    "pre-fix-profiler-race": (
        # The pre-PR-8 profiler: a DagNode body reaching a fit that probes
        # convergence via simplefilter("error", ...) — the QualityModel race.
        "src/repro/core/bad_profiler.py",
        "import warnings\n"
        "def fit(configs, qualities):\n"
        "    with warnings.catch_warnings():\n"
        "        warnings.simplefilter('error')\n"
        "        return configs\n"
        "def _fit_body(inputs):\n"
        "    return fit(inputs['configs'], inputs['qualities'])\n"
        "def build(DagNode, scene):\n"
        "    return DagNode('profile', 'profile', scene, body=_fit_body)\n",
        "REP-G501",
    ),
    "stale-waiver": (
        "src/repro/core/bad_waiver.py",
        "# repro-analysis: allow=REP-D101 nothing here hashes any more\n"
        "VALUE = 1\n",
        "REP-W001",
    ),
}


class TestInterproceduralGate:
    @pytest.mark.parametrize("name", sorted(INTERPROCEDURAL_FIXTURES))
    def test_known_bad_fixture_fails_the_gate(self, tmp_path, name):
        rel_path, source, expected_rule = INTERPROCEDURAL_FIXTURES[name]
        write_module(tmp_path, rel_path, source)
        result = run_cli(["src"], cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert expected_rule in result.stdout
        assert rel_path.replace(os.sep, "/") in result.stdout

    def test_reachability_finding_prints_the_witness_chain(self, tmp_path):
        rel_path, source, _ = INTERPROCEDURAL_FIXTURES["shipped-wall-clock"]
        write_module(tmp_path, rel_path, source)
        result = run_cli(["src"], cwd=tmp_path)
        assert "reachable via task -> helper" in result.stdout


class TestWaiversAudit:
    WAIVED = (
        "import os\n"
        "def intake():\n"
        "    # repro-analysis: allow=REP-E401 boot probe, registry not importable yet\n"
        "    return os.environ.get('REPRO_BOOT')\n"
    )

    def test_waivers_lists_location_rules_count_and_reason(self, tmp_path):
        write_module(tmp_path, "src/repro/core/waived.py", self.WAIVED)
        result = run_cli(["--waivers", "src"], cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "src/repro/core/waived.py:3" in result.stdout
        assert "allow=REP-E401" in result.stdout
        assert "suppresses 1 finding(s)" in result.stdout
        assert "boot probe, registry not importable yet" in result.stdout
        assert "1 active waiver(s)" in result.stdout

    def test_stale_waiver_audits_with_zero_count(self, tmp_path):
        write_module(
            tmp_path, "src/repro/core/stale.py",
            "# repro-analysis: allow=REP-D101 long gone\nVALUE = 1\n",
        )
        result = run_cli(["--waivers", "src"], cwd=tmp_path)
        assert result.returncode == 0
        assert "suppresses 0 finding(s)" in result.stdout
        assert "long gone" in result.stdout

    def test_missing_reason_is_called_out(self, tmp_path):
        write_module(
            tmp_path, "src/repro/core/bare.py",
            "x = 1  # repro-analysis: allow=REP-D102\n",
        )
        result = run_cli(["--waivers", "src"], cwd=tmp_path)
        assert "(no reason given)" in result.stdout

    def test_repo_waivers_all_carry_reasons_and_suppress(self):
        # The repository's own waivers must stay justified and live.
        result = analyze_paths(
            [os.path.join(REPO_ROOT, d) for d in ("src", "tests", "benchmarks")],
            all_rules(),
        )
        for waiver in result.waivers:
            assert waiver.reason, f"{waiver.path}:{waiver.line} has no reason"
            assert waiver.suppressed > 0, (
                f"{waiver.path}:{waiver.line} suppresses nothing"
            )


class TestJsonStability:
    def test_repeated_runs_are_byte_identical(self, tmp_path):
        # The CI artifact contract: two runs over the same tree produce
        # byte-identical --json output (sorted traversal, deterministic
        # finding order, no timestamps or absolute paths).
        for name in ("shipped-wall-clock", "pre-fix-profiler-race", "stale-waiver"):
            rel_path, source, _ = INTERPROCEDURAL_FIXTURES[name]
            write_module(tmp_path, rel_path, source)
        write_module(tmp_path, "src/repro/core/good.py", "VALUE = 1\n")

        def run_bytes():
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
            return subprocess.run(
                [sys.executable, "-m", "repro.analysis", "--json", "src"],
                cwd=tmp_path, env=env, capture_output=True, timeout=120,
            ).stdout

        first, second = run_bytes(), run_bytes()
        assert first
        assert first == second
