"""Fixture tests for every lint rule in :mod:`repro.analysis.rules`.

Each rule gets known-bad snippets (must produce exactly its finding) and
known-good snippets (must stay clean), including regression fixtures that
reproduce the shapes of the PR 4 ``shard_rng(None, i)`` seed-aliasing bug
and the PR 3 ``hash()``-in-store-keys bug — the two incidents this
subsystem exists to catch at lint time instead of golden-test time.
"""

from __future__ import annotations

import pytest

from repro.analysis import all_rules, analyze_module, load_module

#: A path inside a golden-artefact package (determinism rules apply).
GOLDEN_PATH = "src/repro/exec/fixture.py"
#: A path outside every golden package (determinism rules do not apply).
PLAIN_PATH = "src/repro/scenes/fixture.py"


def lint(source: str, path: str = GOLDEN_PATH) -> list:
    module = load_module(path, source=source)
    assert module is not None, "fixture must parse"
    return analyze_module(module, all_rules())


def rule_ids(source: str, path: str = GOLDEN_PATH) -> list:
    return [finding.rule for finding in lint(source, path)]


# ---------------------------------------------------------------------------
# REP-D101 / REP-D102 — hash() / id()
# ---------------------------------------------------------------------------

class TestHashAndId:
    def test_pr3_hash_key_regression_is_flagged(self):
        # Regression fixture: the PR 3 bug put builtin hash() into the
        # artifact store's key -> filename digest, which broke warm-store
        # reuse across processes (hash() is salted per invocation).
        source = '''
def key_filename(key):
    return f"{hash(key) & 0xffffffff:08x}.npz"
'''
        findings = lint(source)
        assert [f.rule for f in findings] == ["REP-D101"]
        assert "process-salted" in findings[0].message

    def test_canonical_digest_is_clean(self):
        source = '''
import hashlib

def key_filename(key):
    return hashlib.sha256(repr(key).encode()).hexdigest() + ".npz"
'''
        assert rule_ids(source) == []

    def test_hash_outside_golden_scope_is_clean(self):
        assert rule_ids("x = hash((1, 2))\n", path=PLAIN_PATH) == []
        assert rule_ids("x = hash((1, 2))\n", path="tests/fixture.py") == []

    def test_id_in_golden_scope_is_flagged(self):
        assert rule_ids("key = (id(model), 3)\n") == ["REP-D102"]

    def test_method_named_hash_is_clean(self):
        # Only the builtin is flagged, not attribute calls.
        assert rule_ids("d = obj.hash()\n") == []


# ---------------------------------------------------------------------------
# REP-D103 — wall clock
# ---------------------------------------------------------------------------

class TestWallClock:
    def test_time_time_is_flagged(self):
        assert rule_ids("import time\nstamp = time.time()\n") == ["REP-D103"]

    def test_perf_counter_is_clean(self):
        source = "import time\nt0 = time.perf_counter()\nt1 = time.monotonic()\n"
        assert rule_ids(source) == []

    def test_datetime_now_is_flagged(self):
        source = "import datetime\nwhen = datetime.datetime.now()\n"
        assert rule_ids(source) == ["REP-D103"]


# ---------------------------------------------------------------------------
# REP-D104 / REP-D105 — unseeded RNG and ad-hoc entropy
# ---------------------------------------------------------------------------

class TestRngRules:
    def test_pr4_seed_aliasing_regression_is_flagged(self):
        # Regression fixture: the shape of the PR 4 bug.  shard_rng(None, i)
        # must not derive per-shard streams from ad-hoc entropy (or, as
        # originally shipped, silently alias seed 0); the fixed contract is
        # one fresh_seed_root() draw per map, passed as an int seed.  Both
        # ad-hoc variants below must be flagged.
        source = '''
import numpy as np

def shard_rng(seed, shard_index):
    if seed is None:
        return np.random.default_rng()
    root = int(np.random.SeedSequence().entropy)
    return np.random.default_rng([root, shard_index])
'''
        ids = rule_ids(source)
        assert ids == ["REP-D104", "REP-D105"]

    def test_fresh_seed_root_is_blessed(self):
        # The fixed PR 4 shape: entropy drawn only inside fresh_seed_root.
        source = '''
import numpy as np

def fresh_seed_root():
    return int(np.random.SeedSequence().entropy)

def shard_rng(seed, shard_index):
    root = fresh_seed_root() if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence([root, int(shard_index)]))
'''
        assert rule_ids(source) == []

    def test_legacy_numpy_global_state_is_flagged(self):
        assert rule_ids("import numpy as np\nx = np.random.rand(3)\n") == ["REP-D104"]
        assert rule_ids("import numpy as np\nnp.random.seed(0)\n") == ["REP-D104"]

    def test_stdlib_random_is_flagged(self):
        assert rule_ids("import random\nx = random.random()\n") == ["REP-D104"]

    def test_seeded_generators_are_clean(self):
        source = '''
import numpy as np

def draw(seed):
    rng = np.random.default_rng(seed)
    return rng.random(4)
'''
        assert rule_ids(source) == []

    def test_os_urandom_is_flagged_and_allow_comment_waives(self):
        flagged = "import os\nsecret = os.urandom(16)\n"
        assert rule_ids(flagged) == ["REP-D105"]
        waived = (
            "import os\n"
            "secret = os.urandom(16)  # repro-analysis: allow=REP-D105 reason\n"
        )
        assert rule_ids(waived) == []

    def test_standalone_allow_comment_waives_next_line(self):
        waived = (
            "import os\n"
            "# repro-analysis: allow=REP-D105 handshake secret\n"
            "secret = os.urandom(16)\n"
        )
        assert rule_ids(waived) == []


# ---------------------------------------------------------------------------
# REP-D106 — set iteration into ordered output
# ---------------------------------------------------------------------------

class TestSetIteration:
    def test_list_of_set_is_flagged(self):
        assert rule_ids("names = list({\"a\", \"b\"})\n") == ["REP-D106"]

    def test_for_over_set_call_is_flagged(self):
        source = '''
def emit(items):
    out = []
    for key in set(items):
        out.append(key)
    return out
'''
        assert rule_ids(source) == ["REP-D106"]

    def test_join_of_set_is_flagged(self):
        assert rule_ids("label = ','.join({\"b\", \"a\"})\n") == ["REP-D106"]

    def test_sorted_set_is_clean(self):
        source = '''
def emit(items):
    return sorted(set(items))
'''
        assert rule_ids(source) == []

    def test_order_free_consumers_are_clean(self):
        source = '''
def summarise(items, probe):
    count = len(set(items))
    hit = probe in {1, 2, 3}
    lo = min(set(items))
    return count, hit, lo
'''
        assert rule_ids(source) == []


# ---------------------------------------------------------------------------
# REP-F201 / REP-F202 — fork/pickle safety
# ---------------------------------------------------------------------------

class TestWorkerClosure:
    def test_lambda_capturing_lock_is_flagged(self):
        source = '''
import threading

def run(backend, items):
    lock = threading.Lock()
    return backend.map(lambda item: (lock, item), items)
'''
        findings = lint(source, path=PLAIN_PATH)
        assert [f.rule for f in findings] == ["REP-F201"]
        assert "'lock'" in findings[0].message

    def test_nested_def_capturing_open_file_is_flagged(self):
        source = '''
def run(backend, items, path):
    handle = open(path)

    def task(item):
        return handle.read(item)

    return backend.map(task, items)
'''
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-F201"]

    def test_with_bound_socket_capture_is_flagged(self):
        source = '''
import socket

def run(host, items):
    with socket.create_connection(("x", 1)) as conn:
        return host.run(lambda item: conn.send(item), items)
'''
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-F201"]

    def test_shm_handle_in_shipped_closure_is_flagged(self):
        # Transport-v2 bug class: a SharedMemory handle captured by a
        # shipped task is a process-local resource — the fork-side dup
        # double-closes the mapping and the worker may outlive the unlink.
        source = '''
from multiprocessing import shared_memory

def run(backend, items):
    block = shared_memory.SharedMemory(create=True, size=1 << 20)
    return backend.map(lambda item: block.buf[item], items)
'''
        findings = lint(source, path=PLAIN_PATH)
        assert [f.rule for f in findings] == ["REP-F201"]
        assert "'block'" in findings[0].message

    def test_shm_attached_inside_the_worker_is_clean(self):
        # The known-good twin — and exactly how the array plane works:
        # only the segment *name* crosses the closure; the worker attaches
        # (and closes) its own handle.
        source = '''
from multiprocessing import shared_memory

def run(backend, items, segment_name):
    def task(item):
        block = shared_memory.SharedMemory(name=segment_name)
        try:
            return bytes(block.buf[:item])
        finally:
            block.close()

    return backend.map(task, items)
'''
        assert rule_ids(source, path=PLAIN_PATH) == []

    def test_closure_over_plain_data_is_clean(self):
        # The fork transport deliberately supports closures over plain
        # (even unpicklable-by-value) *data*; only resource state is flagged.
        source = '''
def run(backend, items, scene):
    scale = 2.0
    return backend.map(lambda item: scene.eval(item) * scale, items)
'''
        assert rule_ids(source, path=PLAIN_PATH) == []

    def test_module_level_callable_is_clean(self):
        source = '''
def task(item):
    return item * 2

def run(backend, items):
    return backend.map(task, items)
'''
        assert rule_ids(source, path=PLAIN_PATH) == []

    def test_non_backend_receivers_are_ignored(self):
        source = '''
import threading

def run(pool, items):
    lock = threading.Lock()
    return pool.map(lambda item: (lock, item), items)
'''
        assert rule_ids(source, path=PLAIN_PATH) == []


class TestThreadInForkingModule:
    def test_thread_plus_fork_is_flagged(self):
        source = '''
import os
import threading

def spawn():
    if os.fork() == 0:
        raise SystemExit(0)

def watch(fn):
    return threading.Thread(target=fn, daemon=True)
'''
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-F202"]

    def test_thread_without_fork_is_clean(self):
        source = '''
import threading

def watch(fn):
    return threading.Thread(target=fn, daemon=True)
'''
        assert rule_ids(source, path=PLAIN_PATH) == []


# ---------------------------------------------------------------------------
# REP-L301 — lock discipline
# ---------------------------------------------------------------------------

class TestLockDiscipline:
    def test_unlocked_mutation_is_flagged(self):
        source = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        self.count += 1
'''
        findings = lint(source, path=PLAIN_PATH)
        assert [f.rule for f in findings] == ["REP-L301"]
        assert "self.count" in findings[0].message

    def test_locked_mutation_is_clean(self):
        source = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1
'''
        assert rule_ids(source, path=PLAIN_PATH) == []

    def test_locked_lru_guard_is_recognised(self):
        # The ArtifactStore / RenderCache idiom: the lock lives on an owned
        # LockedLRU, and `with self._lru.lock:` is the guard.
        source = '''
from repro.utils.lru import LockedLRU

class Store:
    def __init__(self):
        self._lru = LockedLRU()
        self.hits = 0

    def get(self, key):
        with self._lru.lock:
            self.hits += 1
            return self._lru.get(key)

    def reset(self):
        self.hits = 0
'''
        findings = lint(source, path=PLAIN_PATH)
        assert [(f.rule, f.line) for f in findings] == [("REP-L301", 15)]

    def test_nested_attribute_mutation_is_flagged(self):
        source = '''
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.stats = object()

    def record(self):
        self.stats.hits += 1
'''
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-L301"]

    def test_container_mutator_outside_lock_is_flagged(self):
        source = '''
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}

    def stash(self, key, value):
        self.items.setdefault(key, value)
'''
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-L301"]

    def test_dataclass_field_container_is_tracked(self):
        source = '''
import threading
from dataclasses import dataclass, field

@dataclass
class Timer:
    stages: dict = field(default_factory=dict)

    def __post_init__(self):
        self._lock = threading.Lock()

    def add(self, name, seconds):
        self.stages.update({name: seconds})
'''
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-L301"]

    def test_lockless_class_is_ignored(self):
        source = '''
class Plain:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
'''
        assert rule_ids(source, path=PLAIN_PATH) == []

    def test_constructor_assignments_are_exempt(self):
        source = '''
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.ready = False
        self.ready = True
'''
        assert rule_ids(source, path=PLAIN_PATH) == []


# ---------------------------------------------------------------------------
# REP-E401 — environment hygiene
# ---------------------------------------------------------------------------

class TestRawEnviron:
    def test_environ_get_is_flagged(self):
        source = 'import os\nbackend = os.environ.get("REPRO_BACKEND", "thread")\n'
        findings = lint(source, path=PLAIN_PATH)
        assert [f.rule for f in findings] == ["REP-E401"]
        assert "'REPRO_BACKEND'" in findings[0].message

    def test_environ_subscript_read_is_flagged(self):
        source = 'import os\nvalue = os.environ["REPRO_FULL"]\n'
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-E401"]

    def test_membership_test_is_flagged(self):
        source = 'import os\nconfigured = "REPRO_BACKEND" in os.environ\n'
        findings = lint(source, path=PLAIN_PATH)
        assert [f.rule for f in findings] == ["REP-E401"]
        assert "is_set()" in findings[0].message

    def test_getenv_is_flagged(self):
        source = 'import os\nhome = os.getenv("HOME")\n'
        assert rule_ids(source, path=PLAIN_PATH) == ["REP-E401"]

    def test_writes_and_copies_are_clean(self):
        source = '''
import os

def launch_env():
    env = dict(os.environ)
    os.environ["REPRO_BACKEND"] = "serial"
    del os.environ["REPRO_BACKEND"]
    return env, os.environ.copy()
'''
        assert rule_ids(source, path=PLAIN_PATH) == []

    def test_registry_module_itself_is_exempt(self):
        source = 'import os\nraw = os.environ.get("REPRO_FULL")\n'
        assert rule_ids(source, path="src/repro/config/env.py") == []

    def test_registry_usage_is_clean(self):
        source = '''
from repro.config import env

FULL = env.REPRO_FULL.get()
'''
        assert rule_ids(source, path=PLAIN_PATH) == []


# ---------------------------------------------------------------------------
# Kernel-layer fixtures — the compiled-kernel package is golden scope
# ---------------------------------------------------------------------------

#: A path inside the compiled-kernel package, which is pinned explicitly in
#: GOLDEN_PACKAGES (it renders golden artefacts, and compiled code makes
#: determinism bugs especially easy to hide behind "the JIT did it").
KERNELS_PATH = "src/repro/render/kernels/fixture.py"


class TestKernelModuleFixtures:
    def test_kernel_package_is_golden_scope(self):
        assert load_module(KERNELS_PATH, source="x = 1\n").in_golden_scope

    def test_known_bad_kernel_module_is_flagged(self):
        # Known-bad: a warm-up helper that stamps wall-clock compile time
        # (REP-D103) and probes the kernels with unseeded random inputs
        # (REP-D104).  Both shapes are tempting in JIT warm-up code and
        # both must fire inside the kernel package.
        source = '''
import time

import numpy as np


def warm_up(kernels):
    compiled_at = time.time()
    probe = np.random.default_rng().random((4, 3))
    kernels.march(probe)
    return compiled_at
'''
        assert rule_ids(source, path=KERNELS_PATH) == ["REP-D103", "REP-D104"]

    def test_known_bad_compiled_closure_is_flagged(self):
        # Known-bad: a chunk closure capturing a compile-cache lock.  The
        # kernel layer's fork contract is that workers re-resolve kernels
        # *by name*; shipping resource state into backend.map is the exact
        # bug class REP-F201 exists for.
        source = '''
import threading


def render_chunks(backend, chunks, kernels):
    compile_lock = threading.Lock()

    def process(chunk):
        with compile_lock:
            return kernels.march(chunk)

    return backend.map(process, chunks)
'''
        assert rule_ids(source, path=KERNELS_PATH) == ["REP-F201"]

    def test_known_good_kernel_module_is_clean(self):
        # Known-good: the shape the real registry uses — deterministic
        # warm-up probes, perf_counter for timing, kernels resolved by name
        # inside the worker closure, no resource capture.
        source = '''
import time

import numpy as np


def warm_up(get_kernels, name):
    kernels = get_kernels(name)
    started = time.perf_counter()
    probe = np.random.default_rng(0).random((4, 3))
    kernels.march(probe)
    return time.perf_counter() - started


def render_chunks(backend, chunks, get_kernels, kernel_name):
    def process(chunk):
        kernels = get_kernels(kernel_name)
        return kernels.march(chunk)

    return backend.map(process, chunks)
'''
        assert rule_ids(source, path=KERNELS_PATH) == []


DAG_PATH = "src/repro/exec/dag.py"
COSTMODEL_PATH = "src/repro/exec/costmodel.py"


class TestDagAndCostModelFixtures:
    """Golden-scope pins for the stage-DAG executor and the cost model.

    Both modules carry determinism contracts (stable topological order,
    reproducible fits), so both are pinned into the project-invariant
    golden scope with known-bad/known-good fixtures."""

    @pytest.mark.parametrize("path", [DAG_PATH, COSTMODEL_PATH])
    def test_modules_are_golden_scope(self, path):
        assert load_module(path, source="x = 1\n").in_golden_scope

    def test_known_bad_dag_scheduler_is_flagged(self):
        # Known-bad: a scheduler that times out on wall-clock (REP-D103)
        # and dispatches by iterating a *set* of ready nodes (REP-D106) —
        # exactly the shape that would break the DAG's deterministic
        # heaviest-first order.
        source = '''
import time


def run_ready(dag, artifacts):
    deadline = time.time() + 30.0
    for node in set(dag.nodes):
        artifacts[node.name] = node.body(artifacts)
    return deadline
'''
        assert rule_ids(source, path=DAG_PATH) == ["REP-D103", "REP-D106"]

    def test_known_bad_cost_model_is_flagged(self):
        # Known-bad: a fit memoised on salted hash() (REP-D101) and
        # regularised with unseeded noise (REP-D104) — either one makes
        # "same trajectories -> same shard plan" unreproducible.
        source = '''
import numpy as np


def fit_with_jitter(rows):
    cache_key = hash(tuple(rows))
    noise = np.random.default_rng().normal(size=len(rows))
    return cache_key, noise
'''
        assert rule_ids(source, path=COSTMODEL_PATH) == [
            "REP-D101",
            "REP-D104",
        ]

    def test_known_good_scheduler_and_fit_are_clean(self):
        # Known-good: the shapes the real modules use — perf_counter for
        # node timing, sorted iteration, closed-form least squares with no
        # entropy at all.
        source = '''
import time

import numpy as np


def execute(node, artifacts):
    started = time.perf_counter()
    outputs = node.body(artifacts)
    return outputs, time.perf_counter() - started


def fit(features, seconds):
    gram = features.T @ features + 1e-6 * np.eye(features.shape[1])
    return np.linalg.solve(gram, features.T @ seconds)


def stages(coefficients):
    return sorted(coefficients)
'''
        assert rule_ids(source, path=DAG_PATH) == []
        assert rule_ids(source, path=COSTMODEL_PATH) == []


# ---------------------------------------------------------------------------
# Engine-level behaviour shared by all rules
# ---------------------------------------------------------------------------

class TestEngineBehaviour:
    def test_syntax_error_files_are_skipped(self):
        assert load_module("src/x.py", source="def broken(:\n") is None

    def test_findings_are_sorted_and_located(self):
        source = (
            "import os\n"
            "b = os.environ.get(\"B\")\n"
            "a = os.environ.get(\"A\")\n"
        )
        findings = lint(source, path=PLAIN_PATH)
        assert [f.line for f in findings] == [2, 3]
        assert all(f.path == PLAIN_PATH for f in findings)
        assert all(f.col > 0 for f in findings)

    def test_real_tree_is_clean(self):
        # The repository's own src tree must stay finding-free: the CI lint
        # gate relies on it, and any new violation should fail here first
        # with a precise location.
        from repro.analysis import analyze_paths

        result = analyze_paths(["src"], all_rules())
        assert result.files_checked > 40
        assert result.findings == [], "\n".join(
            f.format() for f in result.findings
        )

    @pytest.mark.parametrize(
        "package", ["core", "exec", "render", "render/kernels", "baking"]
    )
    def test_golden_scope_detection(self, package):
        module = load_module(f"src/repro/{package}/m.py", source="x = 1\n")
        assert module.in_golden_scope

    @pytest.mark.parametrize(
        "path", ["src/repro/scenes/m.py", "tests/test_x.py", "benchmarks/c.py"]
    )
    def test_non_golden_scope_detection(self, path):
        assert not load_module(path, source="x = 1\n").in_golden_scope


# ---------------------------------------------------------------------------
# Interprocedural rules — REP-F203 / REP-F204 / REP-G501 / REP-W001
# ---------------------------------------------------------------------------

def lint_project(sources: dict) -> list:
    """Project-rule findings over ``{path: source}`` fixture modules,
    routed through the inline-allow machinery exactly as
    ``analyze_paths`` routes them (per-module rules excluded, so each
    fixture pins exactly one interprocedural rule)."""
    from repro.analysis.engine import ProjectRule

    modules = []
    for path, source in sources.items():
        module = load_module(path, source=source)
        assert module is not None, f"fixture {path} must parse"
        modules.append(module)
    findings = []
    by_path = {module.path: module for module in modules}
    for rule in all_rules():
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(modules):
            module = by_path.get(finding.path)
            if module is None or not module.allowed(finding):
                findings.append(finding)
    return sorted(findings)


#: A shipped task calling one helper — the minimal interprocedural shape.
def shipped_fixture(helper_body: str) -> dict:
    return {
        "src/repro/exec/fixture.py": (
            "import os\n"
            "import time\n"
            "import threading\n"
            "import random\n"
            "import warnings\n"
            "import numpy as np\n"
            "def helper():\n"
            f"    {helper_body}\n"
            "def task(item):\n"
            "    return helper()\n"
            "def run(backend, items):\n"
            "    return backend.map(task, items)\n"
        ),
    }


class TestReachableImpurity:
    def test_wall_clock_two_calls_deep_is_flagged(self):
        findings = lint_project(shipped_fixture("return time.time()"))
        assert [f.rule for f in findings] == ["REP-F203"]
        assert "reachable via task -> helper" in findings[0].message

    def test_stdlib_random_in_helper_is_flagged(self):
        findings = lint_project(shipped_fixture("return random.random()"))
        assert [f.rule for f in findings] == ["REP-F203"]

    def test_environ_read_in_helper_is_flagged(self):
        findings = lint_project(
            shipped_fixture("return os.environ.get('REPRO_X')")
        )
        assert [f.rule for f in findings] == ["REP-F203"]

    def test_impurity_on_the_entry_itself_names_the_entry(self):
        sources = {
            "src/repro/exec/fixture.py": (
                "import time\n"
                "def task(item):\n"
                "    return time.time()\n"
                "def run(backend, items):\n"
                "    return backend.map(task, items)\n"
            ),
        }
        findings = lint_project(sources)
        assert [f.rule for f in findings] == ["REP-F203"]
        assert "shipped entry point" in findings[0].message

    def test_unreachable_impurity_is_clean(self):
        sources = {
            "src/repro/exec/fixture.py": (
                "import time\n"
                "def orchestrate():\n"
                "    return time.time()\n"
                "def task(item):\n"
                "    return item\n"
                "def run(backend, items):\n"
                "    orchestrate()\n"
                "    return backend.map(task, items)\n"
            ),
        }
        assert lint_project(sources) == []

    def test_cross_module_reach_is_flagged(self):
        sources = {
            "src/repro/exec/helpers.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "src/repro/exec/fixture.py": (
                "from repro.exec.helpers import stamp\n"
                "def task(item):\n"
                "    return stamp()\n"
                "def run(backend, items):\n"
                "    return backend.map(task, items)\n"
            ),
        }
        findings = lint_project(sources)
        assert [f.rule for f in findings] == ["REP-F203"]
        assert findings[0].path == "src/repro/exec/helpers.py"


class TestReachableLock:
    def test_lock_construction_in_helper_is_flagged(self):
        findings = lint_project(
            shipped_fixture("return threading.Lock()")
        )
        assert [f.rule for f in findings] == ["REP-F204"]

    def test_explicit_acquire_in_helper_is_flagged(self):
        findings = lint_project(shipped_fixture("item_lock.acquire()"))
        assert [f.rule for f in findings] == ["REP-F204"]

    def test_file_open_in_helper_is_flagged(self):
        findings = lint_project(
            shipped_fixture("return open('/tmp/shard.bin', 'wb')")
        )
        assert [f.rule for f in findings] == ["REP-F204"]

    def test_lock_outside_shipped_scope_is_clean(self):
        sources = {
            "src/repro/exec/fixture.py": (
                "import threading\n"
                "def run(backend, items):\n"
                "    gate = threading.Lock()\n"
                "    def task(item):\n"
                "        return item\n"
                "    return backend.map(task, items)\n"
            ),
        }
        # run() holds the lock but is the dispatcher, not the cargo; the
        # nested task is shipped via reference and stays clean.
        assert lint_project(sources) == []


class TestConcurrentGlobalState:
    #: The pre-fix PR 8 profiler, reconstructed: a DagNode body reaching a
    #: fit that probes convergence by flipping the warning filters to
    #: "error" inside catch_warnings — two concurrent fits corrupt each
    #: other's filter stacks.
    PRE_FIX_PROFILER = {
        "src/repro/core/fixture.py": (
            "import warnings\n"
            "from scipy.optimize import OptimizeWarning\n"
            "def fit(configs, qualities):\n"
            "    with warnings.catch_warnings():\n"
            "        warnings.simplefilter('error', OptimizeWarning)\n"
            "        return _solve(configs, qualities)\n"
            "def _solve(configs, qualities):\n"
            "    return configs\n"
            "def _fit_body(inputs):\n"
            "    return fit(inputs['configs'], inputs['qualities'])\n"
            "def build(DagNode, scene):\n"
            "    return DagNode('profile', 'profile', scene, body=_fit_body)\n"
        ),
    }

    def test_pr8_profiler_race_shape_is_flagged(self):
        findings = lint_project(self.PRE_FIX_PROFILER)
        assert [f.rule for f in findings] == ["REP-G501"]
        assert "QualityModel race" in findings[0].message
        assert "reachable via _fit_body -> fit" in findings[0].message

    def test_fixed_profiler_shape_is_clean(self):
        # The post-fix shape: idempotent "ignore" filter, outcome read
        # from data (pcov finiteness) instead of an exception probe.
        fixed = {
            "src/repro/core/fixture.py": (
                self.PRE_FIX_PROFILER["src/repro/core/fixture.py"].replace(
                    "simplefilter('error', OptimizeWarning)",
                    "simplefilter('ignore', OptimizeWarning)",
                )
            ),
        }
        assert lint_project(fixed) == []

    def test_seterr_in_dag_body_is_flagged(self):
        sources = {
            "src/repro/core/fixture.py": (
                "import numpy as np\n"
                "def body(inputs):\n"
                "    np.seterr(all='raise')\n"
                "    return inputs\n"
                "def build(DagNode, scene):\n"
                "    return DagNode('n', 's', scene, body=body)\n"
            ),
        }
        findings = lint_project(sources)
        assert [f.rule for f in findings] == ["REP-G501"]

    def test_environ_assignment_in_shipped_task_is_flagged(self):
        sources = {
            "src/repro/exec/fixture.py": (
                "import os\n"
                "def task(item):\n"
                "    os.environ['REPRO_X'] = str(item)\n"
                "    return item\n"
                "def run(backend, items):\n"
                "    return backend.map(task, items)\n"
            ),
        }
        rules = [f.rule for f in lint_project(sources)]
        # Both the concurrency rule and the reachable-impurity rule have a
        # say here (env mutation + env dependence); G501 must be among them.
        assert "REP-G501" in rules

    def test_global_state_outside_concurrent_scope_is_clean(self):
        sources = {
            "src/repro/core/fixture.py": (
                "import warnings\n"
                "def configure():\n"
                "    warnings.simplefilter('error')\n"
            ),
        }
        assert lint_project(sources) == []

    def test_inline_allow_waives_a_reachability_finding(self):
        sources = {
            "src/repro/core/fixture.py": (
                "import numpy as np\n"
                "def body(inputs):\n"
                "    # repro-analysis: allow=REP-G501 single-threaded test harness\n"
                "    np.seterr(all='raise')\n"
                "    return inputs\n"
                "def build(DagNode, scene):\n"
                "    return DagNode('n', 's', scene, body=body)\n"
            ),
        }
        assert lint_project(sources) == []


class TestStaleWaiver:
    def test_waiver_suppressing_nothing_is_flagged(self):
        sources = {
            "src/repro/exec/fixture.py": (
                "# repro-analysis: allow=REP-D101 long-gone hash usage\n"
                "x = 1\n"
            ),
        }
        findings = lint_project(sources)
        assert [f.rule for f in findings] == ["REP-W001"]
        assert findings[0].line == 1
        assert "REP-D101" in findings[0].message

    def test_waiver_that_suppresses_is_clean(self):
        sources = {
            "src/repro/core/fixture.py": (
                "import numpy as np\n"
                "def body(inputs):\n"
                "    # repro-analysis: allow=REP-G501 deliberate, tested\n"
                "    np.seterr(all='raise')\n"
                "    return inputs\n"
                "def build(DagNode, scene):\n"
                "    return DagNode('n', 's', scene, body=body)\n"
            ),
        }
        assert lint_project(sources) == []

    def test_quoting_the_syntax_in_prose_is_not_a_waiver(self):
        # Anchoring regression: a doc comment *mentioning* the directive
        # must neither waive anything nor count as a stale waiver.
        sources = {
            "src/repro/exec/fixture.py": (
                "#: e.g. ``# repro-analysis: allow=REP-D101 reason``\n"
                "x = 1\n"
            ),
        }
        assert lint_project(sources) == []
