"""Tests for the lightweight profiler (white-box quality/size models)."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.profiler import (
    ObjectProfile,
    PaperQualityModel,
    PaperSizeModel,
    ProfileFitter,
    QualityModel,
    SizeModel,
    profile_error_analysis,
)

SPACE = ConfigurationSpace(granularities=(16, 24, 32, 48, 64, 96, 128), patch_sizes=(1, 2, 3, 4, 6, 8))


def synthetic_measure(config: Configuration) -> tuple:
    """A ground-truth-like measurement function with the expected shape:
    saturating quality, polynomial size."""
    g, p = config.granularity, config.patch_size
    quality = 0.96 - 14.0 / ((g + 10.0) * (p + 1.5))
    size = 0.4 + 1.2e-3 * g * g * 1e-1 + 4.0e-6 * g * g * p * p + 6.0e-5 * g**3 / 10.0
    return quality, size


def noisy_measure(config: Configuration, seed: int = 0) -> tuple:
    rng = np.random.default_rng(seed + config.granularity * 100 + config.patch_size)
    quality, size = synthetic_measure(config)
    return quality + rng.normal(0, 0.004), size * (1 + rng.normal(0, 0.01))


class TestSizeModel:
    def test_exact_recovery_of_generating_model(self):
        truth = SizeModel(s0=1.0, s1=2e-3, s2=5e-5, s3=1e-5)
        configs = list(SPACE.profiling_configs())
        sizes = np.array([truth.predict(config) for config in configs])
        fitted = SizeModel.fit(configs, sizes)
        for config in SPACE:
            assert fitted.predict(config) == pytest.approx(truth.predict(config), rel=1e-6)

    def test_prediction_never_negative(self):
        model = SizeModel(s0=-5.0, s1=0.0, s2=0.0, s3=0.0)
        assert model.predict(Configuration(16, 1)) == 0.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            SizeModel.fit([Configuration(16, 1)], np.array([1.0]))

    def test_monotone_for_positive_coefficients(self):
        model = SizeModel(s0=0.5, s1=1e-3, s2=1e-5, s3=1e-6)
        assert model.predict(Configuration(64, 4)) > model.predict(Configuration(32, 4))
        assert model.predict(Configuration(64, 4)) > model.predict(Configuration(64, 2))


class TestQualityModel:
    def test_fit_recovers_saturating_behaviour(self):
        configs = list(SPACE.profiling_configs())
        qualities = np.array([synthetic_measure(config)[0] for config in configs])
        model = QualityModel.fit(configs, qualities)
        # Monotone increasing in both knobs and bounded by qmax.
        assert model.predict(Configuration(128, 8)) > model.predict(Configuration(16, 1))
        assert model.predict(Configuration(128, 8)) <= model.qmax + 1e-9
        # Accurate interpolation at unseen configurations.
        for config in [Configuration(48, 2), Configuration(96, 6)]:
            assert model.predict(config) == pytest.approx(synthetic_measure(config)[0], abs=0.02)

    def test_fit_with_noise_is_stable(self):
        configs = list(SPACE.profiling_configs())
        qualities = np.array([noisy_measure(config)[0] for config in configs])
        model = QualityModel.fit(configs, qualities)
        assert 0.5 < model.qmax <= 1.2

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            QualityModel.fit([Configuration(16, 1), Configuration(32, 1)], np.array([0.5, 0.6]))

    def test_degenerate_measurements_fit_without_warnings(self):
        """Constant / collinear measurements make curve_fit's covariance
        inestimable; the fit must fall back deterministically instead of
        emitting an OptimizeWarning."""
        configs = list(SPACE.profiling_configs())
        constant = np.full(len(configs), 0.8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            model = QualityModel.fit(configs, constant)
        assert model.predict(Configuration(64, 4)) == pytest.approx(0.8, abs=0.05)
        # The fallback is deterministic: fitting twice gives the same model.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = QualityModel.fit(configs, constant)
        assert (model.qmax, model.k, model.a, model.b) == (
            again.qmax, again.k, again.a, again.b,
        )

    def test_fitter_on_degenerate_measure_emits_no_warnings(self):
        fitter = ProfileFitter(SPACE)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            profile = fitter.fit("flat", lambda config: (0.5, 1.0 + config.granularity))
        assert profile.predict_quality(Configuration(64, 4)) == pytest.approx(0.5, abs=0.05)

    @given(
        qmax=st.floats(0.8, 1.0),
        k=st.floats(1.0, 30.0),
        a=st.floats(1.0, 30.0),
        b=st.floats(0.5, 4.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_model_is_monotone_in_both_knobs(self, qmax, k, a, b):
        model = QualityModel(qmax=qmax, k=k, a=a, b=b)
        assert model.predict(Configuration(64, 3)) >= model.predict(Configuration(32, 3))
        assert model.predict(Configuration(64, 4)) >= model.predict(Configuration(64, 2))


class TestPaperModels:
    def test_paper_size_model_fits_saturating_data(self):
        configs = list(SPACE.profiling_configs())
        truth = PaperSizeModel(m=150.0, k=2e8, a=5.0, b=1.0)
        sizes = np.array([truth.predict(config) for config in configs])
        fitted = PaperSizeModel.fit(configs, sizes)
        for config in [Configuration(48, 2), Configuration(96, 4)]:
            assert fitted.predict(config) == pytest.approx(truth.predict(config), rel=0.05)

    def test_paper_quality_model_is_increasing(self):
        configs = list(SPACE.profiling_configs())
        qualities = np.array([synthetic_measure(config)[0] for config in configs])
        model = PaperQualityModel.fit(configs, qualities)
        assert model.predict(Configuration(128, 8)) > model.predict(Configuration(16, 1))


class TestProfileFitter:
    def test_fit_produces_accurate_profile(self):
        fitter = ProfileFitter(SPACE)
        profile = fitter.fit("synthetic", synthetic_measure)
        assert isinstance(profile, ObjectProfile)
        assert len(profile.measurements) == len(SPACE.profiling_configs())
        analysis = profile_error_analysis(profile, synthetic_measure, list(SPACE))
        assert analysis["quality_mean_error"] < 0.01
        assert analysis["size_mean_error"] < 0.06 * max(
            synthetic_measure(SPACE.max_config)[1], 1.0
        )

    def test_extra_configs_are_measured(self):
        fitter = ProfileFitter(SPACE)
        extra = Configuration(48, 2)
        profile = fitter.fit("synthetic", synthetic_measure, extra_configs=[extra])
        assert extra in profile.measurements

    def test_best_config_within_budget(self):
        profile = ProfileFitter(SPACE).fit("synthetic", synthetic_measure)
        tight = profile.best_config_within(profile.min_predicted_size() + 1.0)
        loose = profile.best_config_within(1e9)
        assert tight is not None and loose is not None
        assert profile.predict_quality(loose) >= profile.predict_quality(tight)
        assert profile.best_config_within(0.0) is None

    def test_min_predicted_size_is_minimum(self):
        profile = ProfileFitter(SPACE).fit("synthetic", synthetic_measure)
        sizes = [profile.predict_size(config) for config in SPACE]
        assert profile.min_predicted_size() == pytest.approx(min(sizes))

    def test_profile_error_analysis_keys(self):
        profile = ProfileFitter(SPACE).fit("synthetic", synthetic_measure)
        analysis = profile_error_analysis(profile, synthetic_measure, list(SPACE)[:10])
        assert set(analysis) == {
            "num_configs",
            "quality_mean_error",
            "quality_std_error",
            "size_mean_error",
            "size_std_error",
        }
        assert analysis["num_configs"] == 10

    def test_profiler_on_real_baked_object(self, tiny_config_space):
        """End-to-end: fit a profile from actual bakes of a small object and
        check the models reproduce the held-out measurements reasonably."""
        from repro.baking import bake_field, render_baked
        from repro.metrics import ssim
        from repro.scenes.cameras import orbit_cameras
        from repro.scenes.library import make_single_object_scene
        from repro.scenes.raytrace import render_scene

        scene = make_single_object_scene("torus")
        camera = orbit_cameras(scene.center, radius=1.25 * scene.extent, count=1, width=72, height=72)[0]
        reference = render_scene(scene, camera)

        def measure(config):
            baked = bake_field(scene, config.granularity, config.patch_size)
            rendered = render_baked(baked, camera)
            return ssim(reference.rgb, rendered.rgb), baked.size_mb()

        profile = ProfileFitter(tiny_config_space).fit("torus", measure)
        held_out = Configuration(12, 2)
        quality, size = measure(held_out)
        assert profile.predict_quality(held_out) == pytest.approx(quality, abs=0.12)
        assert profile.predict_size(held_out) == pytest.approx(size, rel=0.35)
