"""Tests for the baking substrate: voxelisation, meshing, textures, sizes, rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baking import (
    BakedMultiModel,
    SizeConstants,
    bake_field,
    bake_texture_atlas,
    extract_quad_faces,
    render_baked,
    render_baked_multi,
    voxelize_field,
)
from repro.baking.texture import LazyTexture
from repro.baking.voxelize import VoxelGrid
from repro.metrics import ssim
from repro.scenes.cameras import orbit_cameras
from repro.scenes.library import make_single_object_scene
from repro.scenes.raytrace import render_scene


@pytest.fixture(scope="module")
def sphere():
    return make_single_object_scene("sphere")


@pytest.fixture(scope="module")
def sphere_grid(sphere):
    return voxelize_field(sphere, resolution=24)


class TestVoxelize:
    def test_grid_shape_and_cubic_voxels(self, sphere_grid):
        assert sphere_grid.occupancy.shape == (24, 24, 24)
        side = sphere_grid.bounds_max - sphere_grid.bounds_min
        assert np.allclose(side, side[0])

    def test_occupied_volume_close_to_analytic(self, sphere):
        grid = voxelize_field(sphere, resolution=48)
        voxel_volume = grid.voxel_size**3
        measured = grid.num_occupied * voxel_volume
        analytic = 4.0 / 3.0 * np.pi * 0.35**3
        assert measured == pytest.approx(analytic, rel=0.1)

    def test_occupancy_increases_with_conservative_threshold(self, sphere):
        tight = voxelize_field(sphere, resolution=16, occupancy_threshold=0.0)
        loose = voxelize_field(sphere, resolution=16, occupancy_threshold=0.05)
        assert loose.num_occupied >= tight.num_occupied

    def test_world_index_roundtrip(self, sphere_grid):
        indices = np.array([[0, 0, 0], [5, 10, 3]])
        centers = sphere_grid.cell_centers(indices)
        assert np.array_equal(sphere_grid.world_to_index(centers), indices)

    def test_occupied_at_handles_outside(self, sphere_grid):
        outside = np.array([[-1, 0, 0], [100, 0, 0]])
        assert not sphere_grid.occupied_at(outside).any()

    def test_low_resolution_rejected(self, sphere):
        with pytest.raises(ValueError):
            voxelize_field(sphere, resolution=1)

    def test_hierarchical_sampling_matches_exhaustive(self, sphere):
        """The Lipschitz-pruned coarse-to-fine voxelisation must produce the
        exact occupancy of evaluating every cell centre."""
        from repro.baking.voxelize import _chunked_sdf, _cubic_bounds
        from repro.nerf.degradation import DegradedField

        for field in (sphere, DegradedField(sphere, 0.01, seed=0)):
            for resolution in (32, 48):
                lo, hi = _cubic_bounds(field.bounds_min, field.bounds_max, 0.06)
                voxel = float((hi - lo)[0]) / resolution
                coords = (np.arange(resolution) + 0.5) * voxel
                gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
                centers = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3) + lo
                exhaustive = (_chunked_sdf(field, centers, 262144) <= 0.0).reshape(
                    resolution, resolution, resolution
                )
                grid = voxelize_field(field, resolution=resolution)
                assert np.array_equal(grid.occupancy, exhaustive)

    def test_unadvertised_lipschitz_forces_exhaustive_sampling(self):
        """A field that does not advertise ``sdf_lipschitz`` (e.g. an
        MLP-backed pseudo-SDF with unbounded gradients) must be sampled
        exhaustively — assuming 1-Lipschitz would corrupt its occupancy."""

        class SteepField:
            bounds_min = np.array([-1.0, -1.0, -1.0])
            bounds_max = np.array([1.0, 1.0, 1.0])

            def sdf(self, points):
                # 40x steeper than a true SDF: thin shells a 1-Lipschitz
                # pruning bound would skip right over.
                radius = np.linalg.norm(points, axis=1)
                return np.sin(40.0 * radius) * 0.05

        field = SteepField()
        assert not hasattr(field, "sdf_lipschitz")
        grid = voxelize_field(field, resolution=32)
        from repro.baking.voxelize import _chunked_sdf, _cubic_bounds

        lo, hi = _cubic_bounds(field.bounds_min, field.bounds_max, 0.06)
        voxel = float((hi - lo)[0]) / 32
        coords = (np.arange(32) + 0.5) * voxel
        gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
        centers = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3) + lo
        exhaustive = (_chunked_sdf(field, centers, 262144) <= 0.0).reshape(32, 32, 32)
        assert np.array_equal(grid.occupancy, exhaustive)

    def test_floater_fields_have_no_finite_lipschitz_bound(self, sphere):
        """Floaters appear discontinuously, so such fields must force the
        exhaustive sampling path."""
        from repro.nerf.degradation import DegradedField

        with_floaters = DegradedField(sphere, 0.08, seed=0)
        assert with_floaters.floater_rate > 0
        assert not np.isfinite(with_floaters.sdf_lipschitz)
        without = DegradedField(sphere, 0.08, floater_rate=0.0, seed=0)
        assert np.isfinite(without.sdf_lipschitz)

    def test_mismatched_occupancy_shape_rejected(self):
        with pytest.raises(ValueError):
            VoxelGrid(origin=np.zeros(3), voxel_size=0.1, resolution=4, occupancy=np.zeros((3, 3, 3), bool))


class TestMeshing:
    def test_isolated_voxel_has_six_faces(self):
        occupancy = np.zeros((5, 5, 5), dtype=bool)
        occupancy[2, 2, 2] = True
        grid = VoxelGrid(origin=np.zeros(3), voxel_size=1.0, resolution=5, occupancy=occupancy)
        faces = extract_quad_faces(grid)
        assert faces.num_faces == 6
        assert sorted(faces.axes.tolist()) == [0, 0, 1, 1, 2, 2]

    def test_two_adjacent_voxels_share_a_face(self):
        occupancy = np.zeros((5, 5, 5), dtype=bool)
        occupancy[2, 2, 2] = True
        occupancy[3, 2, 2] = True
        grid = VoxelGrid(origin=np.zeros(3), voxel_size=1.0, resolution=5, occupancy=occupancy)
        assert extract_quad_faces(grid).num_faces == 10

    def test_full_grid_only_has_outer_faces(self):
        occupancy = np.ones((4, 4, 4), dtype=bool)
        grid = VoxelGrid(origin=np.zeros(3), voxel_size=1.0, resolution=4, occupancy=occupancy)
        assert extract_quad_faces(grid).num_faces == 6 * 16

    def test_empty_grid_has_no_faces(self):
        grid = VoxelGrid(origin=np.zeros(3), voxel_size=1.0, resolution=4, occupancy=np.zeros((4, 4, 4), bool))
        assert extract_quad_faces(grid).num_faces == 0

    def test_face_centers_lie_on_voxel_boundaries(self):
        occupancy = np.zeros((3, 3, 3), dtype=bool)
        occupancy[1, 1, 1] = True
        grid = VoxelGrid(origin=np.zeros(3), voxel_size=1.0, resolution=3, occupancy=occupancy)
        faces = extract_quad_faces(grid)
        centers = faces.face_centers()
        # Each face centre must sit at distance 0.5 from the voxel centre (1.5,1.5,1.5).
        assert np.allclose(np.linalg.norm(centers - 1.5, axis=1), 0.5)

    def test_face_count_grows_with_resolution(self, sphere):
        coarse = extract_quad_faces(voxelize_field(sphere, resolution=12)).num_faces
        fine = extract_quad_faces(voxelize_field(sphere, resolution=32)).num_faces
        assert fine > 3 * coarse

    def test_sphere_faces_match_surface_area_scaling(self, sphere):
        """Boundary-face area approximates the sphere surface area (within the
        lattice over-count factor of ~1.5)."""
        grid = voxelize_field(sphere, resolution=48)
        faces = extract_quad_faces(grid)
        face_area = faces.num_faces * grid.voxel_size**2
        analytic = 4.0 * np.pi * 0.35**2
        assert analytic < face_area < 1.9 * analytic

    def test_face_points_stay_on_face_plane(self, sphere_grid):
        faces = extract_quad_faces(sphere_grid)
        indices = np.arange(min(20, faces.num_faces))
        u = np.full(len(indices), 0.25)
        v = np.full(len(indices), 0.75)
        points = faces.face_points(indices, u, v)
        centers = faces.face_centers()[indices]
        offsets = np.abs(points - centers)
        rows = np.arange(len(indices))
        # No displacement along the face normal axis.
        assert np.allclose(offsets[rows, faces.axes[indices]], 0.0)


class TestTextures:
    def test_atlas_shape(self, sphere):
        grid = voxelize_field(sphere, resolution=12)
        faces = extract_quad_faces(grid)
        atlas = bake_texture_atlas(sphere.albedo, faces, patch_size=3)
        assert atlas.texels.shape == (faces.num_faces, 3, 3, 3)

    def test_lazy_and_materialized_agree(self, sphere):
        baked_lazy = bake_field(sphere, 12, 3, materialize_textures=False)
        baked_full = bake_field(sphere, 12, 3, materialize_textures=True)
        faces = np.arange(min(50, baked_lazy.num_faces))
        u = np.linspace(0.05, 0.95, len(faces))
        v = np.linspace(0.95, 0.05, len(faces))
        lazy_colors = baked_lazy.texture.sample(faces, u, v)
        full_colors = baked_full.texture.sample(faces, u, v)
        assert np.allclose(lazy_colors, full_colors, atol=1e-9)

    def test_invalid_patch_size(self, sphere):
        grid = voxelize_field(sphere, resolution=8)
        faces = extract_quad_faces(grid)
        with pytest.raises(ValueError):
            bake_texture_atlas(sphere.albedo, faces, patch_size=0)

    def test_lazy_texture_quantises_to_texel_centres(self, sphere):
        baked = bake_field(sphere, 10, 2, materialize_textures=False)
        assert isinstance(baked.texture, LazyTexture)
        face = np.array([0, 0])
        # Two coordinates in the same texel must return the same colour.
        colors = baked.texture.sample(face, np.array([0.05, 0.45]), np.array([0.05, 0.45]))
        assert np.allclose(colors[0], colors[1])


class TestSizeAccounting:
    def test_size_formula_matches_constants(self, sphere):
        constants = SizeConstants()
        baked = bake_field(sphere, 16, 2, size_constants=constants)
        expected = constants.model_bytes(
            num_faces=baked.num_faces,
            patch_size=2,
            num_occupied_voxels=baked.grid.num_occupied,
            grid_resolution=16,
        )
        assert baked.size_bytes() == pytest.approx(expected)

    def test_size_increases_with_patch_size(self, sphere):
        small = bake_field(sphere, 16, 1).size_mb()
        large = bake_field(sphere, 16, 4).size_mb()
        assert large > small

    def test_size_increases_with_granularity(self, sphere):
        small = bake_field(sphere, 12, 2).size_mb()
        large = bake_field(sphere, 32, 2).size_mb()
        assert large > small

    def test_texture_term_dominates_at_high_patch_size(self, sphere):
        """The byte budget of a baked model is carried by its feature
        texels (as in real MobileNeRF-class bundles), not by the compressed
        per-cell volume data — the miscalibration that once made the dense
        ``g^3`` term dominate priced detail granularities out of every
        mobile budget (the Fig. 4 regression)."""
        constants = SizeConstants()
        baked = bake_field(sphere, 32, 4, size_constants=constants)
        textures = baked.num_faces * 4**2 * constants.texel_bytes
        dense = 32**3 * constants.dense_grid_bytes_per_cell
        assert textures > 0.5 * baked.size_bytes()
        assert dense < 0.1 * baked.size_bytes()

    @given(g=st.integers(4, 32), p=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_model_bytes_monotone(self, g, p):
        constants = SizeConstants()
        base = constants.model_bytes(100, p, 50, g)
        assert constants.model_bytes(101, p, 50, g) >= base
        assert constants.model_bytes(100, p + 1, 50, g) >= base
        assert constants.model_bytes(100, p, 50, g + 1) >= base

    def test_multi_model_size_is_sum(self, sphere):
        a = bake_field(sphere, 12, 1, name="a")
        b = bake_field(sphere, 16, 2, name="b")
        multi = BakedMultiModel([a, b])
        assert multi.size_mb() == pytest.approx(a.size_mb() + b.size_mb())
        assert multi.by_name("b") is b
        with pytest.raises(KeyError):
            multi.by_name("missing")

    def test_empty_multi_model_rejected(self):
        with pytest.raises(ValueError):
            BakedMultiModel([])


class TestBakedRendering:
    def test_quality_improves_with_granularity(self, sphere):
        camera = orbit_cameras(sphere.center, radius=1.25 * sphere.extent, count=1, width=96, height=96)[0]
        reference = render_scene(sphere, camera)
        coarse = render_baked(bake_field(sphere, 10, 2), camera)
        fine = render_baked(bake_field(sphere, 40, 2), camera)
        assert ssim(reference.rgb, fine.rgb) > ssim(reference.rgb, coarse.rgb)
        assert ssim(reference.rgb, fine.rgb) > 0.8

    def test_background_preserved(self, sphere):
        camera = orbit_cameras(sphere.center, radius=1.4 * sphere.extent, count=1, width=64, height=64)[0]
        rendered = render_baked(bake_field(sphere, 16, 2), camera, background=(0.2, 0.4, 0.6))
        corner = rendered.rgb[0, 0]
        assert np.allclose(corner, [0.2, 0.4, 0.6])

    def test_multi_model_composites_by_depth(self, two_object_scene):
        camera = orbit_cameras(
            two_object_scene.center, radius=1.3 * two_object_scene.extent, count=1, width=72, height=72
        )[0]
        models = [
            bake_field(placed, 24, 2, name=placed.instance_name)
            for placed in two_object_scene.placed
        ]
        reference = render_scene(two_object_scene, camera)
        composited = render_baked_multi(models, camera)
        assert ssim(reference.rgb, composited.rgb) > 0.8
        # Both sub-models should be visible.
        assert set(np.unique(composited.object_ids)) >= {0, 1}

    def test_render_empty_model_is_background(self, sphere):
        grid = VoxelGrid(origin=np.zeros(3), voxel_size=0.1, resolution=4, occupancy=np.zeros((4, 4, 4), bool))
        faces = extract_quad_faces(grid)
        from repro.baking.baked_model import BakedSubModel

        empty = BakedSubModel(
            name="empty", grid=grid, faces=faces,
            texture=LazyTexture(patch_size=1, faces=faces, radiance_fn=sphere.albedo),
            patch_size=1,
        )
        camera = orbit_cameras(np.array([0.2, 0.2, 0.2]), radius=2.0, count=1, width=32, height=32)[0]
        rendered = render_baked(empty, camera)
        assert not rendered.hit_mask.any()
