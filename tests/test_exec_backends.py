"""Tests for the execution layer: backends, parity, artifacts, timing.

The load-bearing property is backend parity: the serial loop is the
reference, and the thread and process backends must produce bit-identical
results for every workload they run — render chunks, profiler measurements,
bake geometry.  The process backend additionally pins its fork-inheritance
contract (closures never pickle; only results do) and its fallbacks.
"""

import os

import numpy as np
import pytest

from repro.config import env as repro_env
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.core.config_space import ConfigurationSpace
from repro.device.models import DeviceProfile
from repro.exec import (
    ArtifactStore,
    BACKENDS,
    ClusterBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    fork_available,
    fresh_seed_root,
    resolve_backend,
    shard_rng,
)
from repro.nerf.degradation import DegradedField
from repro.render import RenderEngine
from repro.scenes.cameras import orbit_cameras
from repro.utils.timing import StageTimer, Timer

ALL_BACKENDS = [
    SerialBackend(),
    ThreadBackend(workers=3),
    ProcessBackend(workers=2),
    ClusterBackend(workers=2),
]


def backend_id(backend):
    return backend.name


# ---------------------------------------------------------------------------
# Backend.map semantics
# ---------------------------------------------------------------------------


class TestBackendMap:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=backend_id)
    def test_map_preserves_order_and_length(self, backend):
        items = list(range(23))
        assert backend.map(lambda x: x * x, items) == [x * x for x in items]

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=backend_id)
    def test_map_empty(self, backend):
        assert backend.map(lambda x: x, []) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=backend_id)
    def test_map_with_closure_over_arrays(self, backend):
        """Task callables may close over arbitrary unpicklable state."""
        weights = np.arange(10, dtype=np.float64)
        unpicklable = lambda x: float(weights[x] * 2)  # noqa: E731
        assert backend.map(unpicklable, [1, 4, 9]) == [2.0, 8.0, 18.0]

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=backend_id)
    def test_worker_time_attributed_to_stage(self, backend):
        timer = StageTimer()
        backend.map(lambda x: sum(range(2000)), list(range(6)), timer=timer, stage="work")
        worker = timer.worker_as_dict()
        assert "work" in worker and worker["work"] > 0.0
        # Worker-side time is kept out of the wall-clock stage totals.
        assert timer.as_dict() == {}

    def test_process_backend_single_item_falls_back_to_serial(self):
        backend = ProcessBackend(workers=4)
        state = {"touched": False}

        def task(x):
            state["touched"] = True  # side effect visible only in-process
            return x

        assert backend.map(task, [7]) == [7]
        assert state["touched"]  # ran serially in this process

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_backend_concurrent_maps_from_threads(self):
        """Two threads mapping at once must each get their own results.

        The fork handoff stashes the task in module globals; without the
        fork lock, one thread's pool could inherit the other's task state.
        """
        import threading

        backend = ProcessBackend(workers=2)
        results = {}

        def run(tag, offset):
            results[tag] = backend.map(lambda x: x + offset, [1, 2, 3])

        threads = [
            threading.Thread(target=run, args=("a", 100)),
            threading.Thread(target=run, args=("b", 200)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["a"] == [101, 102, 103]
        assert results["b"] == [201, 202, 203]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_backend_isolates_side_effects(self):
        backend = ProcessBackend(workers=2)
        state = {"count": 0}

        def task(x):
            state["count"] += 1  # dies with the worker
            return x + 1

        assert backend.map(task, [1, 2, 3, 4]) == [2, 3, 4, 5]
        assert state["count"] == 0

    def test_resolve_by_name(self):
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("thread", workers=5).workers == 5
        assert resolve_backend("process", workers=3).workers == 3
        assert resolve_backend("cluster", workers=2).workers == 2
        assert set(BACKENDS) == {"serial", "thread", "process", "cluster"}

    def test_explicit_single_worker_is_honoured(self):
        # workers=1 is a real request (bounds even the process pool to one
        # worker), distinct from workers=None (the backend's own default).
        assert resolve_backend("process", workers=1).workers == 1
        engine = RenderEngine(workers=1, backend="process")
        assert engine.backend.workers == 1

    def test_resolve_instance_passthrough(self):
        backend = ThreadBackend(workers=2)
        assert resolve_backend(backend) is backend

    def test_resolve_unknown_name_lists_every_valid_backend(self):
        # Regression: the error must name every selectable backend,
        # including the lazily imported cluster, so a typo in
        # REPRO_BACKEND is self-diagnosing.
        with pytest.raises(
            ValueError, match=r"cluster, process, serial, thread"
        ) as excinfo:
            resolve_backend("gpu")
        assert "REPRO_BACKEND" in str(excinfo.value)

    def test_resolve_unknown_env_value_raises_with_names(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(ValueError, match="quantum"):
            resolve_backend(None)

    def test_resolve_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert resolve_backend(None).name == "serial"
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert resolve_backend(None).name == "process"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend(None).name == "thread"

    def test_default_thread_backend_is_inline(self):
        # The default resolution must preserve legacy single-worker
        # behaviour: thread backend with one worker.
        backend = resolve_backend(None) if not repro_env.REPRO_BACKEND.is_set() else None
        if backend is not None:
            assert backend.name == "thread" and backend.workers == 1


class TestShardRng:
    def test_deterministic_per_shard(self):
        a = shard_rng(7, 3).integers(0, 10**6, 5)
        b = shard_rng(7, 3).integers(0, 10**6, 5)
        assert np.array_equal(a, b)

    def test_independent_across_shards_and_seeds(self):
        draws = {
            (seed, shard): tuple(shard_rng(seed, shard).integers(0, 10**6, 4))
            for seed in (0, 1)
            for shard in (0, 1, 2)
        }
        assert len(set(draws.values())) == len(draws)

    def test_none_seed_does_not_alias_seed_zero(self):
        # Regression: seed=None used to silently alias seed=0, so
        # "nondeterministic" callers collided with the deterministic
        # seed-0 stream.  128-bit OS entropy makes a collision on a
        # 40-value draw vanishingly improbable.
        assert not np.array_equal(
            shard_rng(None, 2).integers(0, 10**9, 40),
            shard_rng(0, 2).integers(0, 10**9, 40),
        )

    def test_none_seed_is_fresh_per_call(self):
        assert not np.array_equal(
            shard_rng(None, 2).integers(0, 10**9, 40),
            shard_rng(None, 2).integers(0, 10**9, 40),
        )

    def test_fresh_root_restores_per_map_determinism(self):
        # The supported pattern for nondeterministic-but-shard-invariant
        # maps: draw one root per map, derive every shard stream from it.
        root = fresh_seed_root()
        assert root != fresh_seed_root()
        a = shard_rng(root, 3).integers(0, 10**9, 8)
        b = shard_rng(root, 3).integers(0, 10**9, 8)
        assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# Render parity across backends
# ---------------------------------------------------------------------------


def assert_results_identical(a, b):
    assert np.array_equal(a.rgb, b.rgb)
    assert np.array_equal(a.hit_mask, b.hit_mask)
    assert np.array_equal(a.object_ids, b.object_ids)
    finite = np.isfinite(a.depth)
    assert np.array_equal(finite, np.isfinite(b.depth))
    assert np.array_equal(a.depth[finite], b.depth[finite])


class TestRenderParity:
    """Thread and process backends render bit-identically to serial."""

    @pytest.fixture(scope="class")
    def cameras(self, two_object_scene):
        return orbit_cameras(
            two_object_scene.center,
            radius=1.3 * two_object_scene.extent,
            count=2,
            width=36,
            height=36,
        )

    @pytest.fixture(scope="class")
    def reference_engine(self):
        # Tiny chunks force many shards so the parallel paths really shard.
        return RenderEngine(chunk_rays=193, backend=SerialBackend())

    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:], ids=backend_id)
    def test_scene_parity(self, two_object_scene, cameras, reference_engine, backend):
        engine = RenderEngine(chunk_rays=193, backend=backend)
        for camera in cameras:
            assert_results_identical(
                reference_engine.render_scene(two_object_scene, camera),
                engine.render_scene(two_object_scene, camera),
            )

    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:], ids=backend_id)
    def test_field_parity(self, two_object_scene, cameras, reference_engine, backend):
        field = DegradedField(two_object_scene, 0.02, seed=0)
        engine = RenderEngine(chunk_rays=193, backend=backend)
        assert_results_identical(
            reference_engine.render_field(field, cameras[0]),
            engine.render_field(field, cameras[0]),
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:], ids=backend_id)
    def test_volume_parity(self, two_object_scene, cameras, reference_engine, backend):
        engine = RenderEngine(chunk_rays=193, backend=backend)
        assert_results_identical(
            reference_engine.volume_render_field(
                two_object_scene, cameras[0], num_samples=24
            ),
            engine.volume_render_field(two_object_scene, cameras[0], num_samples=24),
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:], ids=backend_id)
    def test_baked_parity(self, two_object_scene, cameras, reference_engine, backend):
        from repro.baking.baked_model import BakedMultiModel, bake_field

        baked = BakedMultiModel(
            [
                bake_field(placed, 12, 2, name=placed.instance_name)
                for placed in two_object_scene.placed
            ]
        )
        engine = RenderEngine(chunk_rays=193, backend=backend)
        for camera in cameras:
            assert_results_identical(
                reference_engine.render_baked(baked, camera),
                engine.render_baked(baked, camera),
            )

    def test_engine_accepts_backend_names(self):
        assert RenderEngine(backend="serial").backend.name == "serial"
        assert RenderEngine(backend="process").backend.name == "process"
        # Legacy workers knob still selects a thread fan-out by default.
        engine = RenderEngine(workers=3)
        if not repro_env.REPRO_BACKEND.is_set():
            assert engine.backend.name == "thread"
            assert engine.backend.workers == 3


# ---------------------------------------------------------------------------
# Pipeline parity and artifact reuse
# ---------------------------------------------------------------------------

TINY_DEVICE = DeviceProfile(
    name="TinyPhone", memory_budget_mb=60.0, hard_memory_limit_mb=80.0, compute_score=4.0
)


def tiny_pipeline_config(backend_name):
    return PipelineConfig(
        config_space=ConfigurationSpace(granularities=(8, 12, 16), patch_sizes=(1, 2)),
        profile_resolution=48,
        object_eval_resolution=48,
        num_eval_views=1,
        num_fps_frames=64,
        backend=backend_name,
    )


class TestPipelineBackendParity:
    @pytest.fixture(scope="class")
    def serial_run(self, small_dataset):
        pipeline = NeRFlexPipeline(TINY_DEVICE, tiny_pipeline_config("serial"))
        return pipeline.run(small_dataset)

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_run_matches_serial(self, small_dataset, serial_run, backend_name):
        config = tiny_pipeline_config(backend_name)
        if backend_name == "thread":
            config.render_workers = 3
        pipeline = NeRFlexPipeline(
            TINY_DEVICE,
            config,
            backend=ProcessBackend(workers=2) if backend_name == "process" else None,
        )
        preparation, multi_model, report = pipeline.run(small_dataset)
        ref_preparation, ref_model, ref_report = serial_run
        assert preparation.selection.assignments == ref_preparation.selection.assignments
        assert multi_model.size_mb() == pytest.approx(ref_model.size_mb(), abs=0.0)
        assert report.ssim == ref_report.ssim
        assert report.psnr == ref_report.psnr
        assert report.backend_name == backend_name

    def test_report_records_stage_and_worker_timings(self, small_dataset, serial_run):
        _, _, report = serial_run
        assert {"segmentation", "profiler", "solver"} == set(report.overhead_seconds)
        assert {"bake", "deploy"} <= set(report.stage_seconds)
        # Profiler measurements ran through the backend, so worker-side time
        # was attributed to the owning stage instead of being dropped.
        assert report.worker_seconds.get("profiler", 0.0) > 0.0


class TestPipelineArtifacts:
    def test_profiles_and_bakes_reused_across_devices(self, small_dataset):
        store = ArtifactStore()
        first = NeRFlexPipeline(
            TINY_DEVICE, tiny_pipeline_config("serial"), artifacts=store
        )
        preparation, _, _ = first.run(small_dataset)
        num_sub_scenes = len(preparation.segmentation.sub_scenes)
        hits_before = store.stats.hits

        bigger = DeviceProfile(
            name="BigPhone",
            memory_budget_mb=300.0,
            hard_memory_limit_mb=400.0,
            compute_score=8.0,
        )
        second = NeRFlexPipeline(
            bigger, tiny_pipeline_config("serial"), artifacts=store
        )
        second.prepare(small_dataset)
        assert store.stats.hits - hits_before >= num_sub_scenes
        assert store.reuse_by_kind().get("profile", 0) >= num_sub_scenes

    def test_repeated_run_reuses_baked_models(self, small_dataset):
        store = ArtifactStore()
        config = tiny_pipeline_config("serial")
        NeRFlexPipeline(TINY_DEVICE, config, artifacts=store).run(small_dataset)
        baked_before = store.reuse_by_kind().get("baked", 0)
        NeRFlexPipeline(TINY_DEVICE, config, artifacts=store).run(small_dataset)
        assert store.reuse_by_kind().get("baked", 0) > baked_before

    def test_store_is_optional(self, small_dataset):
        pipeline = NeRFlexPipeline(TINY_DEVICE, tiny_pipeline_config("serial"))
        assert pipeline.artifacts is None
        preparation = pipeline.prepare(small_dataset)
        assert preparation.profiles


class TestArtifactStore:
    def test_get_put_and_stats(self):
        store = ArtifactStore()
        key = ("profile", "scene", "obj")
        assert store.get(key) is None
        store.put(key, 42)
        assert store.get(key) == 42
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert store.stats.puts == 1
        assert store.stats.reuse_count == 1

    def test_get_or_create_builds_once(self):
        store = ArtifactStore()
        calls = []
        for _ in range(3):
            value = store.get_or_create(("baked", "k"), lambda: calls.append(1) or "model")
        assert value == "model"
        assert len(calls) == 1

    def test_lru_eviction(self):
        store = ArtifactStore(max_entries=2)
        store.put(("a",), 1)
        store.put(("b",), 2)
        store.put(("c",), 3)
        assert len(store) == 2
        assert store.stats.evictions == 1
        assert store.get(("a",)) is None

    def test_invalidate_by_kind(self):
        store = ArtifactStore()
        store.put(("profile", 1), "p")
        store.put(("baked", 1), "b")
        assert store.invalidate("profile") == 1
        assert ("baked", 1) in store
        assert store.invalidate() == 1

    def test_invalid_bound_raises(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)

    def test_thread_safety_under_concurrent_mutation(self):
        import threading

        store = ArtifactStore(max_entries=32)
        errors = []

        def hammer(worker):
            try:
                for i in range(200):
                    key = ("k", (worker * 200 + i) % 48)
                    if store.get(key) is None:
                        store.put(key, worker)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store) <= 32
        assert store.stats.requests == store.stats.hits + store.stats.misses


# ---------------------------------------------------------------------------
# Persistent fork pool
# ---------------------------------------------------------------------------


def _pooled_pid_task(x):
    """Module-level task: stable callable identity across consecutive maps."""
    return (os.getpid(), x * 3)


def _pooled_other_task(x):
    return x + 100


@pytest.mark.skipif(not fork_available(), reason="needs fork")
class TestPersistentPool:
    def test_pool_reused_across_consecutive_maps(self):
        backend = ProcessBackend(workers=2)
        try:
            first = backend.map(_pooled_pid_task, list(range(8)))
            assert backend.fork_count == 1
            second = backend.map(_pooled_pid_task, list(range(8, 16)))
            third = backend.map(_pooled_pid_task, list(range(16, 24)))
            # No re-fork, correct ordered values, and the later maps ran on
            # the same forked children.
            assert backend.fork_count == 1
            assert [v for _, v in first] == [x * 3 for x in range(8)]
            assert [v for _, v in second] == [x * 3 for x in range(8, 16)]
            assert [v for _, v in third] == [x * 3 for x in range(16, 24)]
            assert {pid for pid, _ in third} <= {pid for pid, _ in second} | {
                pid for pid, _ in first
            }
        finally:
            backend.shutdown()

    def test_refork_on_callable_change(self):
        backend = ProcessBackend(workers=2)
        try:
            backend.map(_pooled_pid_task, [1, 2, 3])
            assert backend.fork_count == 1
            assert backend.map(_pooled_other_task, [1, 2, 3]) == [101, 102, 103]
            assert backend.fork_count == 2
            # A fresh closure is a new callable: re-fork again.
            offset = 7
            assert backend.map(lambda x: x + offset, [1, 2]) == [8, 9]
            assert backend.fork_count == 3
        finally:
            backend.shutdown()

    def test_shutdown_leaves_no_children(self):
        backend = ProcessBackend(workers=2)
        results = backend.map(_pooled_pid_task, list(range(6)))
        worker_pids = {pid for pid, _ in results}
        assert worker_pids
        backend.shutdown()
        for pid in worker_pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: the worker is gone
        # Shutdown is idempotent and the backend still serves maps after
        # (by forking a fresh pool).
        backend.shutdown()
        try:
            assert [v for _, v in backend.map(_pooled_pid_task, [1, 2])] == [3, 6]
        finally:
            backend.shutdown()

    def test_unpicklable_items_take_one_shot_path(self):
        backend = ProcessBackend(workers=2)
        try:
            backend.map(_pooled_pid_task, [1, 2, 3])
            forks_before = backend.fork_count
            lock = __import__("threading").Lock()
            items = [(lock, value) for value in range(4)]
            assert backend.map(lambda item: item[1] * 2, items) == [0, 2, 4, 6]
            # One-shot forks are not persistent-pool forks, and the
            # persistent pool survives for the next reusable map.
            assert backend.fork_count == forks_before
            assert [v for _, v in backend.map(_pooled_pid_task, [5, 6])] == [15, 18]
            assert backend.fork_count == forks_before
        finally:
            backend.shutdown()

    def test_killed_worker_mid_map_does_not_hang(self, tmp_path):
        """Regression: a SIGKILLed pool worker used to hang the map forever.

        ``Pool``'s maintainer thread re-forks a replacement worker, but the
        task that died with the worker was lost and the queue join never
        completed.  The backend now detects the worker churn and re-enqueues
        the in-flight items.
        """
        import signal
        import threading

        sentinel = tmp_path / "killed-once"

        def task(item):
            if item == "kill" and not sentinel.exists():
                sentinel.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return ("ok", item)

        backend = ProcessBackend(workers=2)
        items = [0, 1, "kill", 3, 4, 5, 6, 7]
        outcome = {}

        def run():
            outcome["results"] = backend.map(task, items)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "pooled map hung after a worker kill"
            assert outcome["results"] == [("ok", item) for item in items]
            assert backend.worker_revivals >= 1
        finally:
            backend.shutdown()

    def test_task_exception_type_matches_serial(self):
        # Error handling must not depend on REPRO_BACKEND: a failing task
        # re-raises its original exception type, exactly like the serial
        # and thread backends (the old multiprocessing.Pool's semantics).
        def boom(x):
            if x == 2:
                raise KeyError("missing-key")
            return x

        backend = ProcessBackend(workers=2)
        try:
            with pytest.raises(KeyError, match="missing-key"):
                backend.map(boom, [0, 1, 2, 3])
        finally:
            backend.shutdown()

    def test_worker_time_attributed_through_pool(self):
        backend = ProcessBackend(workers=2)
        try:
            timer = StageTimer()
            backend.map(
                _pooled_pid_task, list(range(6)), timer=timer, stage="pooled"
            )
            assert timer.worker_as_dict()["pooled"] > 0.0
        finally:
            backend.shutdown()

    def test_repeated_engine_renders_stay_bit_identical(self, two_object_scene):
        """Engine maps through one backend instance: parity across repeats.

        Consecutive renders re-use or re-fork the pool depending on closure
        identity; either way the images must match the serial reference
        exactly every time.
        """
        cameras = orbit_cameras(
            two_object_scene.center,
            radius=1.3 * two_object_scene.extent,
            count=1,
            width=36,
            height=36,
        )
        reference = RenderEngine(chunk_rays=193, backend=SerialBackend()).render_scene(
            two_object_scene, cameras[0]
        )
        backend = ProcessBackend(workers=2)
        try:
            engine = RenderEngine(chunk_rays=193, backend=backend)
            for _ in range(3):
                assert_results_identical(
                    reference, engine.render_scene(two_object_scene, cameras[0])
                )
        finally:
            backend.shutdown()


# ---------------------------------------------------------------------------
# Engine-internal worker attribution
# ---------------------------------------------------------------------------


class TestEngineAttribution:
    def test_chunk_maps_report_worker_seconds(self, two_object_scene):
        camera = orbit_cameras(
            two_object_scene.center,
            radius=1.3 * two_object_scene.extent,
            count=1,
            width=36,
            height=36,
        )[0]
        engine = RenderEngine(chunk_rays=97)  # many chunks, no cache
        timer = StageTimer()
        with engine.attribute(timer, "render:test"):
            engine.render_scene(two_object_scene, camera)
        assert timer.worker_as_dict()["render:test"] > 0.0
        # Outside the context the engine stops attributing.
        engine.render_scene(two_object_scene, camera)
        assert set(timer.worker_as_dict()) == {"render:test"}

    def test_pipeline_reports_engine_render_channels(self, small_dataset):
        pipeline = NeRFlexPipeline(
            TINY_DEVICE,
            tiny_pipeline_config("serial"),
            engine=RenderEngine(chunk_rays=512, backend="serial"),
        )
        _, _, report = pipeline.run(small_dataset)
        assert report.loaded
        # Pipeline-level map attribution and engine-internal attribution
        # are separate channels: the profiler's measure tasks land on
        # "profiler", the deploy-time marching on "render:deploy".
        assert report.worker_seconds.get("profiler", 0.0) > 0.0
        assert report.worker_seconds.get("render:profiler", 0.0) > 0.0
        assert report.worker_seconds.get("render:deploy", 0.0) > 0.0


# ---------------------------------------------------------------------------
# Timing satellites
# ---------------------------------------------------------------------------


class TestTimerReentrancy:
    def test_start_while_running_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_running_property(self):
        timer = Timer()
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running


class TestStageTimerWorkers:
    def test_worker_time_separate_from_wall(self):
        timer = StageTimer()
        with timer.time("stage"):
            pass
        timer.add_worker("stage", 1.5)
        timer.add_worker("stage", 0.5)
        assert timer.worker_as_dict()["stage"] == pytest.approx(2.0)
        assert timer.as_dict()["stage"] < 1.0  # wall clock of an empty block

    def test_merge_folds_both_accountings(self):
        a = StageTimer()
        a.add("x", 1.0)
        a.add_worker("x", 2.0)
        b = StageTimer()
        b.add("x", 0.5)
        b.merge(a)
        assert b.as_dict()["x"] == pytest.approx(1.5)
        assert b.worker_as_dict()["x"] == pytest.approx(2.0)

    def test_concurrent_add_is_safe(self):
        import threading

        timer = StageTimer()

        def add_many():
            for _ in range(500):
                timer.add("s", 0.001)
                timer.add_worker("s", 0.002)

        threads = [threading.Thread(target=add_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert timer.as_dict()["s"] == pytest.approx(2.0)
        assert timer.worker_as_dict()["s"] == pytest.approx(4.0)
