"""Subprocess driver for the cross-invocation golden test.

Runs the staged NeRFlex pipeline on a small deterministic scene with the
artifact store resolved from ``$REPRO_ARTIFACT_DIR`` and prints a JSON
record of everything the golden tier compares: the selected allocations,
the profile state, the deployment report and the store statistics.  The
parent test (``tests/test_artifact_golden.py``) executes this file twice
against one artifact directory and asserts that the second run recomputes
nothing and reproduces the first run's outputs bit-identically.

Not a pytest file — the leading underscore keeps it out of collection.
"""

from __future__ import annotations

import hashlib
import json
import sys

import numpy as np

from repro.core.config_space import ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.device.models import DeviceProfile
from repro.exec import create_artifact_store
from repro.scenes.dataset import generate_dataset
from repro.scenes.objects import make_cube, make_sphere
from repro.scenes.scene import PlacedObject, Scene

GOLDEN_DEVICE = DeviceProfile(
    name="GoldenPhone",
    memory_budget_mb=120.0,
    hard_memory_limit_mb=160.0,
    compute_score=6.0,
)


def golden_dataset():
    placed = [
        PlacedObject(
            obj=make_sphere(frequency=2.0),
            translation=np.array([-0.55, 0.0, 0.0]),
            instance_id=0,
            instance_name="sphere",
        ),
        PlacedObject(
            obj=make_cube(frequency=8.0),
            translation=np.array([0.55, 0.0, 0.0]),
            instance_id=1,
            instance_name="cube",
        ),
    ]
    return generate_dataset(
        Scene(placed), num_train=4, num_test=1, resolution=48, name="golden-tiny"
    )


def golden_config() -> PipelineConfig:
    return PipelineConfig(
        config_space=ConfigurationSpace(granularities=(8, 12, 16), patch_sizes=(1, 2)),
        profile_resolution=48,
        object_eval_resolution=48,
        num_eval_views=1,
        num_fps_frames=64,
        backend="serial",
    )


def main() -> None:
    store = create_artifact_store()
    pipeline = NeRFlexPipeline(GOLDEN_DEVICE, golden_config(), artifacts=store)
    preparation, multi_model, report = pipeline.run(golden_dataset())

    # Floats serialise via repr (shortest round-trip), so JSON equality is
    # bit equality for every numeric below.
    record = {
        "assignments": {
            name: config.as_tuple()
            for name, config in sorted(preparation.selection.assignments.items())
        },
        "predicted_size_mb": {
            name: value
            for name, value in sorted(preparation.selection.predicted_size_mb.items())
        },
        "predicted_quality": {
            name: value
            for name, value in sorted(preparation.selection.predicted_quality.items())
        },
        "profile_state_sha256": hashlib.sha256(
            repr([profile.state_tuple() for profile in preparation.profiles]).encode()
        ).hexdigest(),
        "report": {
            "size_mb": multi_model.size_mb(),
            "loaded": report.loaded,
            "ssim": report.ssim,
            "psnr": report.psnr,
            "lpips": report.lpips,
            "per_object_ssim": dict(sorted(report.per_object_ssim.items())),
            "average_fps": report.average_fps,
            "num_submodels": report.num_submodels,
        },
        "store": {
            "recompute_by_kind": store.recompute_by_kind(),
            "reuse_by_kind": store.reuse_by_kind(),
            "disk_hits": store.stats.disk_hits,
            "disk_puts": store.disk.stats.puts if store.disk else 0,
        },
    }
    json.dump(record, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
