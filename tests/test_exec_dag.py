"""Tests for the stage-DAG executor (:mod:`repro.exec.dag`).

Pins the node/edge contract (unique names, unique producers, satisfied
inputs, cycle detection), the deterministic heaviest-first topological
order, the output contract of node bodies, bit-identical artifacts between
the sequential reference and the threaded scheduler for any worker count,
genuine overlap of independent nodes, and error propagation.
"""

from __future__ import annotations

import time

import pytest

from repro.exec import (
    DagNode,
    DagScheduler,
    DagValidationError,
    TaskDag,
)


def _node(name, inputs=(), outputs=(), cost=1.0, body=None, stage="stage", scene="s"):
    if body is None:
        def body(values):  # default: join the inputs into each output
            joined = "+".join(str(values[key]) for key in sorted(values)) or name
            return {artifact: f"{name}({joined})" for artifact in outputs}
    return DagNode(
        name=name,
        stage=stage,
        scene=scene,
        body=body,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        cost=cost,
    )


def _chain(scene, length=3):
    """A linear chain of nodes: seed ``{scene}/a0`` -> ... -> ``{scene}/a<n>``."""
    nodes = []
    for step in range(length):
        nodes.append(
            _node(
                f"{scene}-{step}",
                inputs=(f"{scene}/a{step}",),
                outputs=(f"{scene}/a{step + 1}",),
                scene=scene,
            )
        )
    return nodes


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_duplicate_node_name_raises(self):
        dag = TaskDag([_node("n", outputs=("x",))])
        with pytest.raises(DagValidationError, match="duplicate node name"):
            dag.add(_node("n", outputs=("y",)))

    def test_duplicate_producer_raises(self):
        dag = TaskDag([_node("a", outputs=("x",))])
        with pytest.raises(DagValidationError, match="exactly one producer"):
            dag.add(_node("b", outputs=("x",)))

    def test_unsatisfied_input_raises(self):
        dag = TaskDag([_node("a", inputs=("missing",), outputs=("x",))])
        with pytest.raises(DagValidationError, match="did not seed"):
            dag.topological_order()

    def test_seed_artifact_satisfies_input(self):
        dag = TaskDag([_node("a", inputs=("seeded",), outputs=("x",))])
        assert [n.name for n in dag.topological_order(("seeded",))] == ["a"]

    def test_cycle_raises_naming_blocked_nodes(self):
        dag = TaskDag(
            [
                _node("a", inputs=("y",), outputs=("x",)),
                _node("b", inputs=("x",), outputs=("y",)),
            ]
        )
        with pytest.raises(DagValidationError, match="cycle") as excinfo:
            dag.topological_order()
        assert "a" in str(excinfo.value) and "b" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Scheduling order
# ---------------------------------------------------------------------------


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        dag = TaskDag(_chain("s", length=4))
        order = [n.name for n in dag.topological_order(("s/a0",))]
        assert order == ["s-0", "s-1", "s-2", "s-3"]

    def test_ready_nodes_dispatch_heaviest_first(self):
        dag = TaskDag(
            [
                _node("light", outputs=("l",), cost=1.0),
                _node("heavy", outputs=("h",), cost=9.0),
                _node("middle", outputs=("m",), cost=5.0),
            ]
        )
        assert [n.name for n in dag.topological_order()] == [
            "heavy",
            "middle",
            "light",
        ]

    def test_equal_costs_tie_break_by_name(self):
        dag = TaskDag(
            [_node(name, outputs=(name + "!",)) for name in ("c", "a", "b")]
        )
        assert [n.name for n in dag.topological_order()] == ["a", "b", "c"]

    def test_order_is_deterministic(self):
        nodes = _chain("x") + _chain("y") + _chain("z")
        first = [n.name for n in TaskDag(nodes).topological_order(
            ("x/a0", "y/a0", "z/a0")
        )]
        second = [n.name for n in TaskDag(nodes).topological_order(
            ("x/a0", "y/a0", "z/a0")
        )]
        assert first == second


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class TestExecution:
    def test_single_output_body_may_return_bare_value(self):
        dag = TaskDag(
            [_node("n", inputs=("in",), outputs=("out",), body=lambda v: v["in"] + 1)]
        )
        result = DagScheduler(workers=1).run(dag, artifacts={"in": 41})
        assert result.artifacts["out"] == 42

    def test_multi_output_body_must_return_exact_mapping(self):
        dag = TaskDag(
            [
                _node(
                    "n",
                    outputs=("a", "b"),
                    body=lambda v: {"a": 1},  # missing "b"
                )
            ]
        )
        with pytest.raises(DagValidationError, match="declared outputs"):
            DagScheduler(workers=1).run(dag)

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_artifacts_identical_for_any_worker_count(self, workers):
        nodes = _chain("x", 4) + _chain("y", 4) + [
            _node("join", inputs=("x/a4", "y/a4"), outputs=("joined",))
        ]
        seeds = {"x/a0": "X", "y/a0": "Y"}
        reference = DagScheduler(workers=1).run(TaskDag(nodes), artifacts=seeds)
        result = DagScheduler(workers=workers).run(TaskDag(nodes), artifacts=seeds)
        assert result.artifacts == reference.artifacts
        assert set(result.node_seconds) == set(reference.node_seconds)
        assert sorted(result.completed_order) == sorted(reference.completed_order)

    def test_completion_order_respects_chain(self):
        dag = TaskDag(_chain("s", 3))
        result = DagScheduler(workers=4).run(dag, artifacts={"s/a0": 0})
        assert result.completed_order == ["s-0", "s-1", "s-2"]

    def test_independent_nodes_overlap(self):
        """Six independent 0.3s sleeps on 3 workers finish well under the
        1.8s serial time.  Sleeps do not compete for a CPU, so this pins
        the scheduler's concurrency even on a one-core host."""
        nodes = [
            _node(
                f"sleep-{i}",
                outputs=(f"out{i}",),
                body=lambda v, i=i: (time.sleep(0.3), i)[1],
            )
            for i in range(6)
        ]
        start = time.perf_counter()
        result = DagScheduler(workers=3).run(TaskDag(nodes))
        elapsed = time.perf_counter() - start
        assert result.artifacts == {f"out{i}": i for i in range(6)}
        assert elapsed < 1.4  # serial would be ~1.8s

    @pytest.mark.parametrize("workers", [1, 3])
    def test_body_error_propagates(self, workers):
        def boom(values):
            raise RuntimeError("node body failed")

        dag = TaskDag(
            [
                _node("ok", outputs=("x",)),
                _node("bad", inputs=("x",), outputs=("y",), body=boom),
            ]
        )
        with pytest.raises(RuntimeError, match="node body failed"):
            DagScheduler(workers=workers).run(dag)

    def test_seed_artifacts_survive_into_result(self):
        dag = TaskDag([_node("n", inputs=("seed",), outputs=("out",))])
        result = DagScheduler(workers=2).run(dag, artifacts={"seed": "kept"})
        assert result.artifacts["seed"] == "kept"

    def test_node_seconds_recorded_per_node(self):
        dag = TaskDag(_chain("s", 2))
        result = DagScheduler(workers=1).run(dag, artifacts={"s/a0": 0})
        assert set(result.node_seconds) == {"s-0", "s-1"}
        assert all(seconds >= 0.0 for seconds in result.node_seconds.values())
