"""Lifecycle tests for the v2 array plane (:mod:`repro.exec.arrayplane`).

Pins the plane's resource contract end to end: pooled dispatch blocks are
ref-counted and reused across maps, transfer blocks are unlinked at the
moment of adoption (a name never outlives its frame), SIGKILLed workers
leave zero orphaned segments (scheduler-side reaping by name prefix), a
process that exits without ``shutdown()`` leaves ``/dev/shm`` clean via
the atexit hook, and the codec degrades gracefully — inline segments when
shared memory is unavailable, pins rolled back when a send fails.  The
one-shot result-plane regression (worker seconds must credit the same
StageTimer channel as the persistent path) lives here too.
"""

from __future__ import annotations

import functools
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.exec import (
    ForkSocketpairTransport,
    ProcessBackend,
    Shard,
    WorkerHost,
    fork_available,
)
from repro.exec import arrayplane
from repro.exec.arrayplane import (
    ArrayPlaneCodec,
    FrameProtocolError,
    MAX_SEGMENTS_PER_FRAME,
    NAME_ROOT,
    PLANE_SHM,
    SHM_MIN_BYTES,
    SegmentPool,
    SegmentWriter,
    list_shm_names,
    shm_available,
)
from repro.utils.timing import StageTimer

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork")
needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no shared-memory support on this platform"
)


def one_item_shards(count: int) -> list:
    return [Shard(index=i, item_indices=(i,), cost=1.0) for i in range(count)]


@pytest.fixture
def pool():
    instance = SegmentPool()
    yield instance
    instance.shutdown()


@pytest.fixture
def prefix():
    value = arrayplane.next_worker_prefix()
    yield value
    # Whatever a failing test leaves behind must not outlive it.
    arrayplane.shared_pool().reap_prefix(value)


# ---------------------------------------------------------------------------
# Segment pool: refcounts, reuse, adoption, reaping, shutdown
# ---------------------------------------------------------------------------


@needs_shm
class TestSegmentPool:
    def test_allocate_pins_release_frees(self, pool):
        name, view = pool.allocate(1024)
        assert pool.refs(name) == 1
        view[:5] = b"hello"
        pool.pin(name)
        assert pool.refs(name) == 2
        pool.release(name)
        assert pool.refs(name) == 1
        view.release()
        pool.release(name)
        # At zero refs the block parks on the free list, still linked and
        # still owned by the pool — ready for the next dispatch.
        assert pool.refs(name) == 0
        assert name in pool.pooled_names()
        assert pool.stats()["free"] == 1

    def test_release_is_idempotent_and_ignores_unknown_names(self, pool):
        pool.release(f"{NAME_ROOT}-no-such-block")  # must not raise
        name, view = pool.allocate(64)
        view.release()
        pool.release(name)
        pool.release(name)  # double release: dispatch error + death event
        assert pool.stats()["released"] == 1

    def test_allocate_reuses_smallest_fitting_free_block(self, pool):
        small_name, small = pool.allocate(64 << 10)
        big_name, big = pool.allocate(256 << 10)
        small.release()
        big.release()
        pool.release(small_name)
        pool.release(big_name)
        name, view = pool.allocate(32 << 10)
        assert name == small_name  # 64 KiB fits; 256 KiB stays free
        assert pool.stats()["reused"] == 1
        assert pool.stats()["created"] == 2
        view.release()
        pool.release(name)

    def test_adopt_unlinks_the_name_immediately(self, pool, prefix):
        writer = SegmentWriter(prefix)
        name, shm = writer.create(1 << 16)
        shm.buf[:4] = b"abcd"
        shm.close()
        assert list_shm_names(prefix) == [name]
        view = pool.adopt(name, 1 << 16)
        # The name is gone from /dev/shm before the data is even read: a
        # scheduler crash after this point cannot leak the segment.
        assert list_shm_names(prefix) == []
        assert bytes(view[:4]) == b"abcd"
        # The mapping stays alive while a view exists; reclaim() frees it
        # only once the last view is gone.
        assert pool.reclaim() == 0
        view.release()
        assert pool.reclaim() == 1
        assert pool.stats()["adopted_live"] == 0

    def test_adopt_vanished_name_raises_frame_error(self, pool, prefix):
        with pytest.raises(FrameProtocolError, match="vanished"):
            pool.adopt(f"{prefix}s999", 64)

    def test_reap_prefix_removes_unreceived_orphans(self, pool, prefix):
        writer = SegmentWriter(prefix)
        for _ in range(3):
            _, shm = writer.create(4096)
            shm.close()
        assert len(list_shm_names(prefix)) == 3
        assert pool.reap_prefix(prefix) == 3
        assert list_shm_names(prefix) == []
        assert pool.reap_prefix(prefix) == 0  # idempotent

    def test_shutdown_unlinks_every_pooled_block(self):
        pool = SegmentPool()
        names = []
        for _ in range(3):
            name, view = pool.allocate(8 << 10)
            view.release()
            names.append(name)
        for name in names:
            pool.release(name)
        pool.shutdown()
        assert pool.pooled_names() == []
        residue = set(list_shm_names(NAME_ROOT))
        assert not residue & set(names)

    def test_pool_is_inert_in_fork_children(self, pool):
        # shared_pool() is pid-keyed: a fork child must get a fresh pool
        # instead of unlinking blocks its parent still owns.
        first = arrayplane.shared_pool()
        assert arrayplane.shared_pool() is first
        assert first._owner_pid == os.getpid()


# ---------------------------------------------------------------------------
# The v2 codec: round trips, zero-copy, caps, rollback
# ---------------------------------------------------------------------------


def _codec_pair(pool, prefix, use_shm=True):
    scheduler = ArrayPlaneCodec("scheduler", use_shm=use_shm, pool=pool)
    worker = ArrayPlaneCodec(
        "worker", use_shm=use_shm,
        writer=SegmentWriter(prefix) if use_shm else None,
    )
    return scheduler, worker


@needs_shm
class TestArrayPlaneCodec:
    def test_scheduler_to_worker_rides_a_pooled_segment(self, pool, prefix):
        scheduler, worker = _codec_pair(pool, prefix)
        a, b = socket.socketpair()
        try:
            payload = np.arange(SHM_MIN_BYTES, dtype=np.uint8)
            scheduler.send(a, ("shard", 7, payload))
            message = worker.recv(b)
            assert message[0] == "shard" and message[1] == 7
            got = message[2]
            assert got.tobytes() == payload.tobytes()
            # Zero-copy receive: the worker's array views the shared
            # mapping instead of owning a pickled copy of the bytes.
            assert not got.flags["OWNDATA"]
            pins = scheduler.take_pins()
            assert len(pins) == 1 and pool.refs(pins[0]) == 1
            # Mutating the pooled block is visible through the worker's
            # array — the definitive one-mapping proof (private access is
            # fine here; the test pins the mechanism itself).
            pool._pooled[pins[0]].shm.buf[0] = 0xA5
            assert got[0] == 0xA5
            del got, message
            worker.close()
            for name in pins:
                pool.release(name)
        finally:
            a.close()
            b.close()

    def test_worker_to_scheduler_transfer_is_adopted(self, pool, prefix):
        scheduler, worker = _codec_pair(pool, prefix)
        a, b = socket.socketpair()
        try:
            payload = np.linspace(0.0, 1.0, 40_000)  # 312 KiB
            worker.send(a, ("done", 3, 0.01, payload))
            assert list_shm_names(prefix)  # in flight: block is linked
            message = scheduler.recv(b)
            got = message[3]
            assert got.tobytes() == payload.tobytes()
            assert not got.flags["OWNDATA"]
            # Adoption unlinked the name the moment the frame landed.
            assert list_shm_names(prefix) == []
            assert pool.stats()["adopted"] == 1
            del got, message
            assert pool.reclaim() == 1
        finally:
            a.close()
            b.close()

    def test_small_buffers_stay_inline(self, pool, prefix):
        scheduler, worker = _codec_pair(pool, prefix)
        a, b = socket.socketpair()
        try:
            payload = np.arange(16, dtype=np.float64)  # far below the floor
            scheduler.send(a, ("shard", 0, payload))
            message = worker.recv(b)
            assert message[2].tobytes() == payload.tobytes()
            assert scheduler.take_pins() == []
            assert pool.stats()["created"] == 0
        finally:
            a.close()
            b.close()

    def test_inline_plane_round_trips_large_arrays(self, pool, prefix):
        # use_shm=False is the negotiated TCP plane: raw length-prefixed
        # segments on the stream.  Large payloads need a pumping thread —
        # the bytes genuinely cross the socket.
        scheduler, worker = _codec_pair(pool, prefix, use_shm=False)
        a, b = socket.socketpair()
        payload = np.arange(300_000, dtype=np.float64)  # 2.3 MB
        received = {}

        def pump():
            received["message"] = worker.recv(b)

        thread = threading.Thread(target=pump)
        thread.start()
        try:
            scheduler.send(a, ("shard", 1, payload))
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert received["message"][2].tobytes() == payload.tobytes()
            assert pool.stats()["created"] == 0  # no shm on this plane
        finally:
            a.close()
            b.close()

    def test_segment_kind_is_role_checked(self, pool, prefix):
        # A transfer segment arriving at a worker (or a pooled segment at
        # the scheduler) is a protocol violation, not a lookup attempt.
        scheduler, worker = _codec_pair(pool, prefix)
        other_worker = ArrayPlaneCodec(
            "worker", use_shm=True, writer=SegmentWriter(prefix)
        )
        a, b = socket.socketpair()
        try:
            payload = np.arange(SHM_MIN_BYTES, dtype=np.uint8)
            worker.send(a, ("done", 0, 0.0, payload))
            with pytest.raises(FrameProtocolError, match="sent to a worker"):
                other_worker.recv(b)
        finally:
            a.close()
            b.close()

    def test_forged_segment_count_is_capped(self, pool, prefix):
        scheduler, _ = _codec_pair(pool, prefix)
        a, b = socket.socketpair()
        try:
            a.sendall(arrayplane._V2_HEADER.pack(4, MAX_SEGMENTS_PER_FRAME + 1))
            with pytest.raises(FrameProtocolError, match="segments"):
                scheduler.recv(b)
        finally:
            a.close()
            b.close()

    def test_failed_send_rolls_back_pins(self, pool, prefix):
        scheduler, _ = _codec_pair(pool, prefix)
        a, b = socket.socketpair()
        a.close()  # dead socket: sendall must fail after allocation
        try:
            payload = np.arange(SHM_MIN_BYTES, dtype=np.uint8)
            with pytest.raises(OSError):
                scheduler.send(a, ("shard", 0, payload))
            # The pooled block went back to the free list; nothing stayed
            # pinned for a frame the peer never saw.
            assert scheduler.take_pins() == []
            stats = pool.stats()
            assert stats["created"] == 1 and stats["free"] == 1
        finally:
            b.close()

    def test_unpicklable_message_allocates_nothing(self, pool, prefix):
        scheduler, _ = _codec_pair(pool, prefix)
        a, b = socket.socketpair()
        try:
            with pytest.raises(Exception):
                scheduler.send(
                    a, ("bad", threading.Lock(), np.arange(SHM_MIN_BYTES))
                )
            # Pickle-first ordering: the failure surfaced before any block
            # was created, and the stream carries no torn frame.
            assert pool.stats()["created"] == 0
            scheduler.send(a, ("ok",))
            worker = ArrayPlaneCodec("worker", use_shm=False)
            assert worker.recv(b) == ("ok",)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# End to end: maps over the shm plane, SIGKILL reaping, exit hygiene
# ---------------------------------------------------------------------------


def _array_result_task(x):
    base = np.arange(32_000, dtype=np.float64)  # 250 KiB result
    return np.cos(base * (x + 1) * 1e-4)


def _kill_once_then_array(x, sentinel=None):
    if x == 0:
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass  # the re-dispatched item after the first victim died
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return _array_result_task(x)


@needs_fork
@needs_shm
class TestShmPlaneEndToEnd:
    def test_map_rides_transfer_segments_and_leaves_no_residue(self):
        pool = arrayplane.shared_pool()
        adopted_before = pool.stats()["adopted"]
        host = WorkerHost(
            transport=ForkSocketpairTransport(protocol=2, plane=PLANE_SHM),
            workers=2,
        )
        try:
            results, _ = host.run(
                _array_result_task, list(range(8)), one_item_shards(8)
            )
            reference = [_array_result_task(x) for x in range(8)]
            for got, want in zip(results, reference):
                assert got.tobytes() == want.tobytes()
            # Results arrived as adopted transfer segments, viewed in
            # place rather than copied out of a pickled payload.
            assert pool.stats()["adopted"] > adopted_before
            assert any(not r.flags["OWNDATA"] for r in results)
        finally:
            host.shutdown()
        del results, reference
        arrayplane.reclaim_segments()
        # Retired workers' transfer namespaces were reaped; adopted names
        # were unlinked at adoption — the worker plane leaves no residue.
        assert list_shm_names(f"{NAME_ROOT}{os.getpid()}w") == []

    def test_sigkill_mid_map_reaps_and_stays_bit_identical(self, tmp_path):
        host = WorkerHost(
            transport=ForkSocketpairTransport(protocol=2, plane=PLANE_SHM),
            workers=2,
        )
        task = functools.partial(
            _kill_once_then_array, sentinel=str(tmp_path / "victim")
        )
        try:
            results, _ = host.run(task, list(range(8)), one_item_shards(8))
            reference = [_array_result_task(x) for x in range(8)]
            for got, want in zip(results, reference):
                assert got.tobytes() == want.tobytes()
            assert host.worker_deaths >= 1
        finally:
            host.shutdown()
        # The acceptance pin: the SIGKILLed worker's segments (including
        # any transfer block created but never received) were reaped by
        # prefix on the scheduler side — zero orphans.
        assert list_shm_names(f"{NAME_ROOT}{os.getpid()}w") == []

    def test_exit_without_shutdown_leaves_dev_shm_clean(self):
        # A scheduler that exits without host.shutdown() must still leave
        # /dev/shm empty: the atexit hooks reap the fleet, the worker
        # prefixes and the pooled blocks.
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        child = """
import os
import numpy as np
from repro.exec import Shard, WorkerHost
from repro.exec.arrayplane import PLANE_SHM
from repro.exec.transport import ForkSocketpairTransport

def task(x):
    return np.arange(40_000, dtype=np.float64) * x

host = WorkerHost(
    transport=ForkSocketpairTransport(protocol=2, plane=PLANE_SHM), workers=2
)
shards = [Shard(index=i, item_indices=(i,), cost=1.0) for i in range(6)]
results, _ = host.run(task, list(range(6)), shards)
assert len(results) == 6
print(os.getpid())
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        completed = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert completed.returncode == 0, completed.stderr
        child_pid = int(completed.stdout.strip().splitlines()[-1])
        assert list_shm_names(f"{NAME_ROOT}{child_pid}") == []
        # Leak warnings from the stdlib resource tracker would mean the
        # plane's tracker bookkeeping regressed.
        assert "resource_tracker" not in completed.stderr
        assert "Traceback" not in completed.stderr

    def test_pooled_blocks_are_reused_across_consecutive_maps(self):
        host = WorkerHost(
            transport=ForkSocketpairTransport(protocol=2, plane=PLANE_SHM),
            workers=2,
        )
        pool = arrayplane.shared_pool()
        try:
            # Items large enough to dispatch through pooled segments.
            items = [np.full(40_000, float(i)) for i in range(6)]
            before = pool.stats()
            first, _ = host.run(_item_sum, items, one_item_shards(6))
            second, _ = host.run(_item_sum, items, one_item_shards(6))
            assert first == second == [float(v.sum()) for v in items]
            after = pool.stats()
            # The second map allocated from the free list instead of
            # creating fresh blocks for every dispatch.
            assert after["reused"] > before["reused"]
        finally:
            host.shutdown()


def _item_sum(arr):
    return float(arr.sum())


# ---------------------------------------------------------------------------
# One-shot maps: same result plane, same timer channel (regression)
# ---------------------------------------------------------------------------


@needs_fork
class TestOneShotResultPlane:
    def test_one_shot_report_counts_accepted_seconds(self):
        host = WorkerHost(transport="fork", workers=2)
        try:
            lock = threading.Lock()  # unpicklable: forces the one-shot path
            items = [(lock, value) for value in range(4)]
            results, report = host.run(
                lambda item: item[1] * 2, items, one_item_shards(4)
            )
            assert results == [0, 2, 4, 6]
            assert report.one_shot
            assert report.accepted_seconds > 0.0
        finally:
            host.shutdown()

    def test_one_shot_map_credits_the_same_timer_channel(self):
        # Regression: the one-shot fallback must report worker seconds
        # through the same StageTimer channel as the persistent path — a
        # pipeline whose profile maps are all one-shot (the default) would
        # otherwise show zero worker time for its heaviest stage.
        backend = ProcessBackend(workers=2, transport="fork")
        try:
            lock = threading.Lock()
            items = [(lock, value) for value in range(4)]
            timer = StageTimer()
            results = backend.map(
                lambda item: item[1] * 3, items, timer=timer, stage="profile"
            )
            assert results == [0, 3, 6, 9]
            assert timer.worker_as_dict().get("profile", 0.0) > 0.0
        finally:
            backend.shutdown()


# ---------------------------------------------------------------------------
# Knob plumbing and availability probes
# ---------------------------------------------------------------------------


class TestKnob:
    def test_plane_knob_normalisation(self, monkeypatch):
        for spelling in ("off", "0", "false", "v1", "OFF"):
            monkeypatch.setenv("REPRO_TRANSPORT_SHM", spelling)
            assert arrayplane.plane_knob() == "off"
            assert arrayplane.frame_protocol_version() == 1
        monkeypatch.setenv("REPRO_TRANSPORT_SHM", "inline")
        assert arrayplane.plane_knob() == "inline"
        assert arrayplane.frame_protocol_version() == 2
        monkeypatch.delenv("REPRO_TRANSPORT_SHM")
        assert arrayplane.plane_knob() == "auto"

    def test_worker_prefixes_are_unique_and_rooted(self):
        first = arrayplane.next_worker_prefix()
        second = arrayplane.next_worker_prefix()
        assert first != second
        assert first.startswith(NAME_ROOT) and second.startswith(NAME_ROOT)
        assert str(os.getpid()) in first
