"""Tests for the DP configuration selector and its baselines.

Includes property-based tests comparing the paper's Algorithm 1 against an
exhaustive brute-force solver on randomly generated instances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.profiler import ObjectProfile, QualityModel, SizeModel
from repro.core.selector import ExactMCKSelector, NeRFlexDPSelector
from repro.core.selector_baselines import (
    BruteForceSelector,
    FairnessSelector,
    GreedySelector,
    SLSQPSelector,
)

SMALL_SPACE = ConfigurationSpace(granularities=(16, 32, 64), patch_sizes=(1, 2, 4))


def make_profile(
    name: str,
    qmax: float,
    k: float,
    size_scale: float,
    space: ConfigurationSpace = SMALL_SPACE,
) -> ObjectProfile:
    """Build an ObjectProfile directly from model parameters (no measuring)."""
    return ObjectProfile(
        name=name,
        config_space=space,
        quality_model=QualityModel(qmax=qmax, k=k, a=8.0, b=1.0),
        size_model=SizeModel(s0=1.0, s1=0.0, s2=size_scale * 2e-4, s3=size_scale * 2e-5),
    )


@pytest.fixture
def three_profiles():
    return [
        make_profile("simple", qmax=0.97, k=3.0, size_scale=1.0),
        make_profile("medium", qmax=0.95, k=12.0, size_scale=1.2),
        make_profile("complex", qmax=0.93, k=40.0, size_scale=1.5),
    ]


profile_strategy = st.builds(
    make_profile,
    name=st.sampled_from(["a", "b", "c", "d", "e"]),
    qmax=st.floats(0.85, 1.0),
    k=st.floats(1.0, 60.0),
    size_scale=st.floats(0.5, 3.0),
)


class TestNeRFlexDPSelector:
    def test_respects_budget(self, three_profiles):
        result = NeRFlexDPSelector().select(three_profiles, budget_mb=30.0)
        assert result.feasible
        assert result.total_predicted_size_mb <= 30.0 + 1e-6

    def test_uses_more_budget_for_more_quality(self, three_profiles):
        tight = NeRFlexDPSelector().select(three_profiles, budget_mb=15.0)
        loose = NeRFlexDPSelector().select(three_profiles, budget_mb=80.0)
        assert loose.total_predicted_quality >= tight.total_predicted_quality

    def test_allocates_more_to_complex_objects(self, three_profiles):
        """The DP shifts bytes from flat-quality objects to objects whose
        quality still improves with size — the paper's Fig. 8 behaviour."""
        result = NeRFlexDPSelector().select(three_profiles, budget_mb=35.0)
        assert result.predicted_size_mb["complex"] > result.predicted_size_mb["simple"]

    def test_matches_brute_force_on_small_instance(self, three_profiles):
        budget = 28.0
        dp = NeRFlexDPSelector(size_step_mb=0.25).select(three_profiles, budget)
        brute = BruteForceSelector().select(three_profiles, budget)
        assert dp.total_predicted_quality == pytest.approx(
            brute.total_predicted_quality, abs=0.02
        )

    def test_infeasible_budget_flagged(self, three_profiles):
        result = NeRFlexDPSelector().select(three_profiles, budget_mb=0.5)
        assert not result.feasible
        for name, config in result.assignments.items():
            assert config == SMALL_SPACE.min_config

    def test_single_object_selects_best_fitting_config(self):
        profile = make_profile("solo", qmax=0.95, k=20.0, size_scale=1.0)
        result = NeRFlexDPSelector().select([profile], budget_mb=50.0)
        expected = profile.best_config_within(50.0)
        assert result.assignments["solo"] == expected

    def test_input_validation(self, three_profiles):
        with pytest.raises(ValueError):
            NeRFlexDPSelector().select([], 10.0)
        with pytest.raises(ValueError):
            NeRFlexDPSelector().select(three_profiles, 0.0)
        with pytest.raises(ValueError):
            NeRFlexDPSelector(size_step_mb=0.0)

    def test_describe_round_trips_assignments(self, three_profiles):
        result = NeRFlexDPSelector().select(three_profiles, budget_mb=40.0)
        description = result.describe()
        assert description["method"] == "nerflex-dp"
        assert set(description["assignments"]) == {"simple", "medium", "complex"}

    @given(profiles=st.lists(profile_strategy, min_size=1, max_size=4), budget=st.floats(5.0, 120.0))
    @settings(max_examples=25, deadline=None)
    def test_dp_matches_exact_mck_quality(self, profiles, budget):
        """Algorithm 1's feasibility filter never loses optimality."""
        # Give every profile a unique name.
        for index, profile in enumerate(profiles):
            profile.name = f"object_{index}"
        dp = NeRFlexDPSelector(size_step_mb=0.5).select(profiles, budget)
        exact = ExactMCKSelector(size_step_mb=0.5).select(profiles, budget)
        assert dp.feasible == exact.feasible
        if dp.feasible:
            assert dp.total_predicted_quality == pytest.approx(
                exact.total_predicted_quality, abs=1e-6
            )

    @given(profiles=st.lists(profile_strategy, min_size=1, max_size=3), budget=st.floats(5.0, 80.0))
    @settings(max_examples=20, deadline=None)
    def test_dp_never_worse_than_greedy_or_fairness(self, profiles, budget):
        """The DP at budget H dominates greedy/fairness run at a slightly
        smaller budget (the DP's conservative ceiling discretisation can
        forfeit at most ``n * step < 2%`` of the budget)."""
        for index, profile in enumerate(profiles):
            profile.name = f"object_{index}"
        dp = NeRFlexDPSelector(size_step_mb=0.5).select(profiles, budget)
        if not dp.feasible:
            return
        greedy = GreedySelector().select(profiles, budget * 0.97)
        fairness = FairnessSelector().select(profiles, budget * 0.97)
        assert dp.total_predicted_quality >= greedy.total_predicted_quality - 1e-9
        assert dp.total_predicted_quality >= fairness.total_predicted_quality - 1e-9

    @given(profiles=st.lists(profile_strategy, min_size=2, max_size=4), budget=st.floats(10.0, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_every_object_gets_exactly_one_config(self, profiles, budget):
        for index, profile in enumerate(profiles):
            profile.name = f"object_{index}"
        result = NeRFlexDPSelector().select(profiles, budget)
        assert set(result.assignments) == {profile.name for profile in profiles}
        for profile in profiles:
            assert result.assignments[profile.name] in profile.config_space


class TestExactMCKSelector:
    def test_matches_brute_force(self, three_profiles):
        exact = ExactMCKSelector(size_step_mb=0.25).select(three_profiles, 32.0)
        brute = BruteForceSelector().select(three_profiles, 32.0)
        assert exact.total_predicted_quality == pytest.approx(
            brute.total_predicted_quality, abs=0.02
        )


class TestFairnessSelector:
    def test_equal_share_allocation(self, three_profiles):
        result = FairnessSelector().select(three_profiles, budget_mb=30.0)
        share = 10.0
        for profile in three_profiles:
            config = result.assignments[profile.name]
            best = profile.best_config_within(share)
            assert config == (best or profile.config_space.min_config)

    def test_can_exceed_budget_when_shares_too_small(self):
        profiles = [make_profile(f"o{i}", 0.95, 10.0, size_scale=5.0) for i in range(3)]
        result = FairnessSelector().select(profiles, budget_mb=3.0)
        assert not result.feasible


class TestSLSQPSelector:
    def test_respects_budget_after_repair(self, three_profiles):
        result = SLSQPSelector().select(three_profiles, budget_mb=30.0)
        assert result.total_predicted_size_mb <= 30.0 + 1e-6

    def test_not_better_than_dp(self, three_profiles):
        dp = NeRFlexDPSelector().select(three_profiles, 30.0)
        slsqp = SLSQPSelector().select(three_profiles, 30.0)
        assert slsqp.total_predicted_quality <= dp.total_predicted_quality + 1e-6

    def test_invalid_initialisation(self):
        with pytest.raises(ValueError):
            SLSQPSelector(initial="random")

    def test_mid_initialisation_runs(self, three_profiles):
        result = SLSQPSelector(initial="mid").select(three_profiles, 30.0)
        assert set(result.assignments) == {"simple", "medium", "complex"}


class TestGreedyAndBruteForce:
    def test_greedy_respects_budget(self, three_profiles):
        result = GreedySelector().select(three_profiles, 25.0)
        assert result.total_predicted_size_mb <= 25.0 + 1e-6

    def test_brute_force_limit(self, three_profiles):
        with pytest.raises(ValueError):
            BruteForceSelector(max_combinations=2).select(three_profiles, 30.0)

    def test_brute_force_infeasible(self):
        profiles = [make_profile("big", 0.9, 5.0, size_scale=50.0)]
        result = BruteForceSelector().select(profiles, budget_mb=0.1)
        assert not result.feasible
