"""Tests for the unified render engine: parity, batching, cache accounting.

The engine replaced three hand-rolled marching loops; these tests pin down
the property that made the refactor safe — the engine's output is
*bit-identical* (asserted at atol <= 1e-9, measured at 0.0) to the legacy
render paths for every representation, regardless of cross-view batching,
chunk size or worker count — plus the cache's hit/miss accounting.
"""

import numpy as np
import pytest

from repro.baking.baked_model import BakedMultiModel, bake_field
from repro.baking.renderer import render_baked, render_baked_multi
from repro.nerf.degradation import DegradedField
from repro.nerf.rendering import volume_render_field
from repro.render import RenderCache, RenderEngine, camera_cache_key, default_engine
from repro.scenes.cameras import orbit_cameras
from repro.scenes.raytrace import render_field, render_scene

ATOL = 1e-9


def assert_results_identical(a, b, atol=ATOL):
    """Two RenderResults agree on every buffer (inf-aware)."""
    assert np.array_equal(a.hit_mask, b.hit_mask)
    assert np.array_equal(a.object_ids, b.object_ids)
    assert np.array_equal(np.isfinite(a.depth), np.isfinite(b.depth))
    finite = np.isfinite(a.depth)
    np.testing.assert_allclose(a.depth[finite], b.depth[finite], atol=atol, rtol=0)
    np.testing.assert_allclose(a.rgb, b.rgb, atol=atol, rtol=0)


@pytest.fixture(scope="module")
def cameras(two_object_scene):
    scene = two_object_scene
    return orbit_cameras(
        scene.center, radius=1.3 * scene.extent, count=3, width=40, height=40
    )


@pytest.fixture(scope="module")
def baked_models(two_object_scene):
    return BakedMultiModel(
        [
            bake_field(placed, 14, 2, name=placed.instance_name)
            for placed in two_object_scene.placed
        ]
    )


class TestLegacyParity:
    """Engine output == legacy module-level wrappers, bit for bit."""

    def test_scene_path(self, two_object_scene, cameras):
        engine = RenderEngine()
        for camera in cameras:
            assert_results_identical(
                render_scene(two_object_scene, camera),
                engine.render_scene(two_object_scene, camera),
            )

    def test_scene_path_unshaded(self, two_object_scene, cameras):
        assert_results_identical(
            render_scene(two_object_scene, cameras[0], shading=False),
            RenderEngine().render_scene(two_object_scene, cameras[0], shading=False),
        )

    def test_field_path(self, two_object_scene, cameras):
        field = DegradedField(two_object_scene, 0.02, seed=0)
        engine = RenderEngine()
        for camera in cameras[:2]:
            assert_results_identical(
                render_field(field, camera), engine.render_field(field, camera)
            )

    def test_volume_path(self, two_object_scene, cameras):
        assert_results_identical(
            volume_render_field(two_object_scene, cameras[0], num_samples=32),
            RenderEngine().volume_render_field(
                two_object_scene, cameras[0], num_samples=32
            ),
        )

    def test_baked_path(self, baked_models, cameras):
        engine = RenderEngine()
        for camera in cameras:
            assert_results_identical(
                render_baked_multi(baked_models, camera),
                engine.render_baked(baked_models, camera),
            )

    def test_baked_single_model(self, baked_models, cameras):
        assert_results_identical(
            render_baked(baked_models.submodels[0], cameras[0]),
            RenderEngine().render_baked(baked_models.submodels[0], cameras[0]),
        )


class TestBatchingInvariance:
    """Cross-view batching, chunking and workers never change the image."""

    def test_scene_views_match_single_renders(self, two_object_scene, cameras):
        engine = RenderEngine()
        batched = engine.render_scene_views(two_object_scene, cameras)
        for camera, result in zip(cameras, batched):
            assert_results_identical(engine.render_scene(two_object_scene, camera), result)

    def test_field_views_match_single_renders(self, two_object_scene, cameras):
        field = DegradedField(two_object_scene, 0.02, seed=0)
        engine = RenderEngine()
        batched = engine.render_field_views(field, cameras[:2])
        for camera, result in zip(cameras[:2], batched):
            assert_results_identical(engine.render_field(field, camera), result)

    def test_volume_views_match_single_renders(self, two_object_scene, cameras):
        engine = RenderEngine()
        batched = engine.volume_render_views(two_object_scene, cameras[:2], num_samples=32)
        for camera, result in zip(cameras[:2], batched):
            assert_results_identical(
                engine.volume_render_field(two_object_scene, camera, num_samples=32),
                result,
            )

    def test_baked_views_match_single_renders(self, baked_models, cameras):
        engine = RenderEngine()
        batched = engine.render_baked_views(baked_models, cameras)
        for camera, result in zip(cameras, batched):
            assert_results_identical(engine.render_baked(baked_models, camera), result)

    def test_chunk_size_and_workers_invariance(self, baked_models, two_object_scene, cameras):
        reference_engine = RenderEngine()
        odd_engine = RenderEngine(chunk_rays=173, workers=3)
        assert_results_identical(
            reference_engine.render_baked(baked_models, cameras[0]),
            odd_engine.render_baked(baked_models, cameras[0]),
        )
        assert_results_identical(
            reference_engine.volume_render_field(two_object_scene, cameras[0], num_samples=24),
            odd_engine.volume_render_field(two_object_scene, cameras[0], num_samples=24),
        )

    def test_render_rays_dispatch(self, two_object_scene, baked_models):
        from repro.scenes.cameras import camera_rays

        camera = orbit_cameras(
            two_object_scene.center, radius=1.3 * two_object_scene.extent, count=1,
            width=16, height=16,
        )[0]
        origins, directions = camera_rays(camera)
        engine = RenderEngine()
        scene_buffers = engine.render_rays(two_object_scene, origins, directions)
        assert scene_buffers["rgb"].shape == (256, 3)
        assert set(np.unique(scene_buffers["object_ids"])) <= {-1, 0, 1}
        baked_buffers = engine.render_rays(baked_models, origins, directions)
        assert baked_buffers["rgb"].shape == (256, 3)
        field_buffers = engine.render_rays(
            DegradedField(two_object_scene, 0.02, seed=0), origins, directions
        )
        assert set(np.unique(field_buffers["object_ids"])) <= {-1, 0}


class TestRenderCache:
    def test_cache_hit_accounting(self, two_object_scene, cameras):
        cache = RenderCache()
        engine = RenderEngine(cache=cache)
        first = engine.render_scene(two_object_scene, cameras[0], scene_key="tiny")
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = engine.render_scene(two_object_scene, cameras[0], scene_key="tiny")
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert second is first

    def test_partial_batch_hit_renders_only_misses(self, two_object_scene, cameras):
        cache = RenderCache()
        engine = RenderEngine(cache=cache)
        engine.render_scene(two_object_scene, cameras[1], scene_key="tiny")
        results = engine.render_scene_views(two_object_scene, cameras, scene_key="tiny")
        # One view was already cached; the other two were rendered and stored.
        assert cache.stats.hits == 1
        assert cache.stats.misses == 3
        assert len(cache) == 3
        reference = RenderEngine().render_scene(two_object_scene, cameras[1])
        assert_results_identical(results[1], reference)

    def test_no_scene_key_means_no_caching(self, two_object_scene, cameras):
        cache = RenderCache()
        engine = RenderEngine(cache=cache)
        engine.render_scene(two_object_scene, cameras[0])
        assert len(cache) == 0 and cache.stats.requests == 0

    def test_quality_key_separates_entries(self, two_object_scene, cameras):
        cache = RenderCache()
        engine = RenderEngine(cache=cache)
        shaded = engine.render_scene(two_object_scene, cameras[0], scene_key="tiny")
        unshaded = engine.render_scene(
            two_object_scene, cameras[0], shading=False, scene_key="tiny"
        )
        assert len(cache) == 2
        assert not np.allclose(shaded.rgb, unshaded.rgb)

    def test_baked_fingerprint_separates_models(self, baked_models, two_object_scene, cameras):
        cache = RenderCache()
        engine = RenderEngine(cache=cache)
        other = BakedMultiModel(
            [
                bake_field(placed, 10, 1, name=placed.instance_name)
                for placed in two_object_scene.placed
            ]
        )
        engine.render_baked(baked_models, cameras[0], scene_key="tiny")
        engine.render_baked(other, cameras[0], scene_key="tiny")
        assert len(cache) == 2 and cache.stats.hits == 0

    def test_same_scene_key_different_content_never_collides(self):
        """Two scenes that share a caller-supplied key (e.g. two datasets
        generated without explicit names) must not serve each other's
        renders — the cache key carries a content identity."""
        from repro.scenes.objects import make_sphere
        from repro.scenes.scene import PlacedObject, Scene

        low = Scene([PlacedObject(obj=make_sphere(frequency=2.0), instance_id=0)])
        high = Scene([PlacedObject(obj=make_sphere(frequency=9.0), instance_id=0)])
        camera = orbit_cameras(low.center, radius=1.3 * low.extent, count=1, width=24, height=24)[0]
        cache = RenderCache()
        engine = RenderEngine(cache=cache)
        first = engine.render_scene(low, camera, scene_key="scene")
        second = engine.render_scene(high, camera, scene_key="scene")
        assert cache.stats.hits == 0 and len(cache) == 2
        assert not np.allclose(first.rgb, second.rgb)

    def test_fingerprint_distinguishes_field_content(self, two_object_scene):
        """Two bakes of different fields (clean vs degraded albedo) must not
        share a cache identity even when their voxel geometry coincides —
        the fingerprint probes texture content, not just geometry counts."""
        from repro.render import baked_fingerprint

        placed = two_object_scene.placed[0]
        clean = BakedMultiModel([bake_field(placed, 12, 2, name="obj")])
        degraded = BakedMultiModel(
            [
                bake_field(
                    DegradedField(placed, 0.02, floater_rate=0.0, seed=0),
                    12,
                    2,
                    name="obj",
                )
            ]
        )
        assert baked_fingerprint(clean) != baked_fingerprint(degraded)
        # Stable across calls for the same model.
        assert baked_fingerprint(clean) == baked_fingerprint(clean)

    def test_lru_eviction(self, two_object_scene, cameras):
        cache = RenderCache(max_entries=2)
        engine = RenderEngine(cache=cache)
        for camera in cameras:
            engine.render_scene(two_object_scene, camera, scene_key="tiny")
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest view was evicted, so re-rendering it misses again.
        engine.render_scene(two_object_scene, cameras[0], scene_key="tiny")
        assert cache.stats.misses == 4

    def test_invalidate_by_scene(self, two_object_scene, cameras):
        cache = RenderCache()
        engine = RenderEngine(cache=cache)
        engine.render_scene(two_object_scene, cameras[0], scene_key="a")
        engine.render_scene(two_object_scene, cameras[0], scene_key="b")
        assert cache.invalidate("a") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_camera_cache_key_sensitivity(self, cameras):
        key_a = camera_cache_key(cameras[0])
        key_b = camera_cache_key(cameras[1])
        assert key_a != key_b
        assert key_a == camera_cache_key(cameras[0].resized(cameras[0].width, cameras[0].height))

    def test_default_engine_is_shared_and_cached(self):
        engine = default_engine()
        assert engine is default_engine()
        assert engine.cache is not None


class TestRenderCacheConcurrency:
    """The cache is shared by concurrent render batches (thread backend)."""

    def test_concurrent_put_get_never_corrupts(self):
        import threading

        cache = RenderCache()
        errors = []

        def hammer(worker):
            try:
                for i in range(300):
                    key = ("scene", worker % 3, i % 40)
                    value = cache.get(key)
                    if value is None:
                        cache.put(key, (worker, i))
                    else:
                        assert isinstance(value, tuple)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Accounting stays consistent: every request was a hit or a miss.
        assert cache.stats.requests == cache.stats.hits + cache.stats.misses
        assert len(cache) <= 3 * 40

    def test_concurrent_eviction_respects_bound(self):
        import threading

        cache = RenderCache(max_entries=16)
        barrier = threading.Barrier(6)
        errors = []

        def hammer(worker):
            try:
                barrier.wait()
                for i in range(400):
                    cache.put(("k", worker, i), i)
                    cache.get(("k", worker, i))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # The LRU bound holds under interleaved eviction.
        assert len(cache) <= 16
        assert cache.stats.evictions == 6 * 400 - 16

    def test_concurrent_get_or_render_converges(self):
        import threading

        cache = RenderCache()
        built = []

        def render():
            built.append(1)
            return "image"

        results = []

        def worker():
            results.append(cache.get_or_render("key", render))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Racing threads may render redundantly but must agree on the value
        # and leave exactly one entry behind.
        assert set(results) == {"image"}
        assert len(cache) == 1
        assert 1 <= len(built) <= 8

    def test_concurrent_invalidate_is_safe(self):
        import threading

        cache = RenderCache()
        for i in range(64):
            cache.put(("a", i), i)
            cache.put(("b", i), i)
        errors = []

        def invalidate(scene_key):
            try:
                cache.invalidate(scene_key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=invalidate, args=(key,)) for key in ("a", "b", "a")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) == 0


class TestEngineValidation:
    def test_invalid_chunk_rays(self):
        with pytest.raises(ValueError):
            RenderEngine(chunk_rays=0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            RenderEngine(workers=0)

    def test_invalid_cache_bound(self):
        with pytest.raises(ValueError):
            RenderCache(max_entries=0)
