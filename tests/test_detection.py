"""Tests for the detection substrate (detectors, masks, crop-and-enlarge)."""

import numpy as np
import pytest

from repro.detection import (
    ConnectedComponentsDetector,
    OracleDetector,
    crop_and_enlarge,
    mask_iou,
    mask_pixel_counts,
    merge_masks,
)


class TestOracleDetector:
    def test_detects_every_visible_instance(self, small_dataset):
        detector = OracleDetector()
        view = small_dataset.train_views[0]
        detections = detector.detect(view)
        detected_ids = {detection.instance_id for detection in detections}
        visible_ids = {int(i) for i in np.unique(view.object_ids) if i >= 0}
        assert detected_ids == visible_ids

    def test_masks_match_id_buffer(self, small_dataset):
        view = small_dataset.train_views[0]
        for detection in OracleDetector().detect(view):
            assert np.array_equal(detection.mask, view.object_ids == detection.instance_id)
            assert detection.pixel_count == int(detection.mask.sum())

    def test_min_pixels_filters_tiny_detections(self, small_dataset):
        view = small_dataset.train_views[0]
        detections = OracleDetector().detect(view, min_pixels=10**6)
        assert detections == []

    def test_bbox_encloses_mask(self, small_dataset):
        view = small_dataset.train_views[0]
        for detection in OracleDetector().detect(view):
            row0, col0, row1, col1 = detection.bbox
            assert detection.mask[row0:row1, col0:col1].sum() == detection.pixel_count


class TestConnectedComponentsDetector:
    def test_detects_foreground_regions(self, small_dataset):
        view = small_dataset.train_views[0]
        detections = ConnectedComponentsDetector().detect(view)
        assert len(detections) >= 1
        total_pixels = sum(d.pixel_count for d in detections)
        assert total_pixels >= 0.8 * view.hit_mask.sum()

    def test_detects_from_raw_image(self):
        image = np.ones((32, 32, 3))
        image[4:12, 4:12] = 0.2
        image[20:28, 18:30] = 0.5
        detections = ConnectedComponentsDetector().detect(image)
        assert len(detections) == 2
        assert all(d.instance_id < 0 for d in detections)

    def test_ignores_small_specks(self):
        image = np.ones((32, 32, 3))
        image[5, 5] = 0.0
        assert ConnectedComponentsDetector().detect(image, min_pixels=4) == []


class TestMaskUtilities:
    def test_pixel_counts_across_views(self, small_dataset):
        detector = OracleDetector()
        detections_per_view = [detector.detect(view) for view in small_dataset.train_views]
        counts = mask_pixel_counts(detections_per_view, 0)
        assert len(counts) == small_dataset.num_train
        assert max(counts) > 0

    def test_pixel_counts_zero_when_absent(self):
        assert mask_pixel_counts([[], []], instance_id=3) == [0, 0]

    def test_iou_identity_and_disjoint(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:4] = True
        assert mask_iou(mask, mask) == 1.0
        assert mask_iou(mask, ~mask) == 0.0
        assert mask_iou(np.zeros((4, 4), bool), np.zeros((4, 4), bool)) == 1.0

    def test_iou_shape_mismatch(self):
        with pytest.raises(ValueError):
            mask_iou(np.zeros((4, 4), bool), np.zeros((5, 4), bool))

    def test_merge_masks_is_union(self):
        a = np.zeros((6, 6), dtype=bool)
        b = np.zeros((6, 6), dtype=bool)
        a[0, 0] = True
        b[5, 5] = True
        merged = merge_masks([a, b])
        assert merged.sum() == 2
        with pytest.raises(ValueError):
            merge_masks([])


class TestCropAndEnlarge:
    def _image_with_square(self, size=64, lo=20, hi=36):
        image = np.ones((size, size, 3))
        mask = np.zeros((size, size), dtype=bool)
        mask[lo:hi, lo:hi] = True
        image[mask] = [0.8, 0.2, 0.1]
        return image, mask

    def test_enlarged_image_keeps_resolution(self):
        image, mask = self._image_with_square()
        crop = crop_and_enlarge(image, mask)
        assert crop.image.shape == image.shape
        assert crop.mask.shape == mask.shape

    def test_object_fills_more_of_the_frame(self):
        """The whole point of interpolation scaling: the object's pixel
        footprint grows, lowering the detail frequency the dedicated NeRF
        must learn."""
        image, mask = self._image_with_square()
        crop = crop_and_enlarge(image, mask)
        assert crop.mask.sum() > 4 * mask.sum()
        assert crop.scale_factor > 2.0

    def test_colour_preserved_in_enlarged_object(self):
        image, mask = self._image_with_square()
        crop = crop_and_enlarge(image, mask)
        center = crop.image[crop.image.shape[0] // 2, crop.image.shape[1] // 2]
        assert np.allclose(center, [0.8, 0.2, 0.1], atol=0.05)

    def test_background_outside_object_is_fill_colour(self):
        image, mask = self._image_with_square()
        crop = crop_and_enlarge(image, mask, background=(0.0, 1.0, 0.0))
        assert np.allclose(crop.image[~crop.mask].mean(axis=0), [0.0, 1.0, 0.0], atol=0.2)

    def test_empty_mask_raises(self):
        image = np.ones((16, 16, 3))
        with pytest.raises(ValueError):
            crop_and_enlarge(image, np.zeros((16, 16), dtype=bool))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            crop_and_enlarge(np.ones((16, 16, 3)), np.zeros((8, 8), dtype=bool))

    def test_already_large_object_scale_near_one(self):
        image, mask = self._image_with_square(size=64, lo=2, hi=62)
        crop = crop_and_enlarge(image, mask, margin=0)
        assert crop.scale_factor == pytest.approx(1.0, abs=0.15)
