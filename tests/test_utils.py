"""Unit tests for repro.utils (image ops, RNG, timers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.image import (
    bbox_from_mask,
    clamp01,
    crop_to_bbox,
    pad_to_square,
    resize_bilinear,
    to_gray,
)
from repro.utils.rng import derive_rng, make_rng
from repro.utils.timing import StageTimer, Timer


class TestToGray:
    def test_rgb_weights_sum_to_one(self):
        white = np.ones((4, 4, 3))
        assert np.allclose(to_gray(white), 1.0)

    def test_grayscale_passthrough(self):
        image = np.random.default_rng(0).uniform(size=(5, 7))
        assert np.allclose(to_gray(image), image)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            to_gray(np.zeros((3, 3, 4)))


class TestBBox:
    def test_tight_bbox(self):
        mask = np.zeros((10, 12), dtype=bool)
        mask[2:5, 3:9] = True
        assert bbox_from_mask(mask) == (2, 3, 5, 9)

    def test_margin_is_clamped(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 0] = True
        assert bbox_from_mask(mask, margin=3) == (0, 0, 4, 4)

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            bbox_from_mask(np.zeros((4, 4), dtype=bool))

    def test_crop_matches_bbox(self):
        image = np.arange(100, dtype=float).reshape(10, 10)
        cropped = crop_to_bbox(image, (2, 3, 5, 9))
        assert cropped.shape == (3, 6)
        assert cropped[0, 0] == image[2, 3]


class TestResizeBilinear:
    def test_identity_resize(self):
        image = np.random.default_rng(1).uniform(size=(9, 7, 3))
        assert np.allclose(resize_bilinear(image, (9, 7)), image)

    def test_constant_image_stays_constant(self):
        image = np.full((5, 5), 0.37)
        resized = resize_bilinear(image, (17, 13))
        assert np.allclose(resized, 0.37)

    def test_upscale_shape(self):
        image = np.zeros((4, 6, 3))
        assert resize_bilinear(image, (8, 12)).shape == (8, 12, 3)

    def test_preserves_value_range(self):
        rng = np.random.default_rng(2)
        image = rng.uniform(size=(6, 6))
        resized = resize_bilinear(image, (23, 11))
        assert resized.min() >= image.min() - 1e-9
        assert resized.max() <= image.max() + 1e-9

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            resize_bilinear(np.zeros((4, 4)), (0, 5))

    @given(
        height=st.integers(2, 12),
        width=st.integers(2, 12),
        out_h=st.integers(1, 24),
        out_w=st.integers(1, 24),
    )
    @settings(max_examples=30, deadline=None)
    def test_output_within_input_range(self, height, width, out_h, out_w):
        rng = np.random.default_rng(height * 100 + width)
        image = rng.uniform(size=(height, width))
        resized = resize_bilinear(image, (out_h, out_w))
        assert resized.shape == (out_h, out_w)
        assert resized.min() >= image.min() - 1e-9
        assert resized.max() <= image.max() + 1e-9


class TestPadToSquare:
    def test_pads_to_square(self):
        image = np.ones((3, 7))
        padded = pad_to_square(image)
        assert padded.shape == (7, 7)

    def test_rgb_padding_keeps_channels(self):
        image = np.ones((5, 2, 3))
        assert pad_to_square(image).shape == (5, 5, 3)


class TestClamp:
    def test_clamps_out_of_range(self):
        image = np.array([-0.5, 0.3, 1.7])
        assert np.allclose(clamp01(image), [0.0, 0.3, 1.0])


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(7).integers(0, 100, 5).tolist() == make_rng(7).integers(0, 100, 5).tolist()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(3)
        assert make_rng(rng) is rng

    def test_derive_is_deterministic(self):
        a = derive_rng(make_rng(1), "stage", 4).integers(0, 1000, 3).tolist()
        b = derive_rng(make_rng(1), "stage", 4).integers(0, 1000, 3).tolist()
        assert a == b

    def test_derive_differs_by_key(self):
        a = derive_rng(make_rng(1), "stage", 4).integers(0, 1000, 5).tolist()
        b = derive_rng(make_rng(1), "other", 4).integers(0, 1000, 5).tolist()
        assert a != b


class TestTimers:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed >= first

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_stage_timer_fractions_sum_to_one(self):
        stages = StageTimer()
        stages.add("a", 1.0)
        stages.add("b", 3.0)
        fractions = stages.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-12
        assert fractions["b"] == pytest.approx(0.75)

    def test_stage_timer_context(self):
        stages = StageTimer()
        with stages.time("work"):
            _ = sum(range(100))
        assert stages.as_dict()["work"] >= 0.0
        assert stages.total() == pytest.approx(sum(stages.as_dict().values()))
