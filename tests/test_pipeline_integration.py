"""Integration tests: the full NeRFlex pipeline and the baselines on a small scene.

These use a deliberately tiny configuration space and low resolutions so the
whole file runs in well under a minute while still exercising every stage:
segmentation -> profiling -> selection -> baking -> deployment.
"""

import numpy as np
import pytest

from repro.baselines import (
    BlockNeRFBaseline,
    MipNeRF360Emulator,
    NGPEmulator,
    SingleNeRFBaseline,
)
from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig, evaluate_baked_deployment
from repro.core.selector_baselines import FairnessSelector
from repro.device.models import DeviceProfile

#: A small "device" whose budget binds for the tiny test scene.
TINY_DEVICE = DeviceProfile(
    name="tiny-device",
    memory_budget_mb=6.0,
    hard_memory_limit_mb=6.0,
    compute_score=1.0,
)

TINY_CONFIG = PipelineConfig(
    config_space=ConfigurationSpace(granularities=(8, 12, 16, 24), patch_sizes=(1, 2)),
    profile_resolution=56,
    num_eval_views=1,
    num_fps_frames=200,
    object_eval_resolution=64,
    apply_degradation=True,
)


@pytest.fixture(scope="module")
def pipeline_run(small_dataset):
    cache = {}
    pipeline = NeRFlexPipeline(TINY_DEVICE, TINY_CONFIG, measurement_cache=cache)
    preparation, multi_model, report = pipeline.run(small_dataset)
    return pipeline, preparation, multi_model, report


class TestPipeline:
    def test_preparation_produces_profiles_and_selection(self, pipeline_run):
        _, preparation, _, _ = pipeline_run
        assert len(preparation.profiles) == len(preparation.segmentation.sub_scenes)
        assert set(preparation.selection.assignments) == {
            sub.name for sub in preparation.segmentation.sub_scenes
        }

    def test_overhead_split_has_all_three_stages(self, pipeline_run):
        _, preparation, _, _ = pipeline_run
        overhead = preparation.overhead_seconds
        assert set(overhead) == {"segmentation", "profiler", "solver"}
        assert all(value >= 0 for value in overhead.values())

    def test_baked_bundle_fits_device_budget(self, pipeline_run):
        _, _, multi_model, report = pipeline_run
        assert multi_model.size_mb() <= TINY_DEVICE.memory_budget_mb + 1e-6
        assert report.loaded
        assert report.size_mb == pytest.approx(multi_model.size_mb())

    def test_report_quality_is_reasonable(self, pipeline_run):
        _, _, _, report = pipeline_run
        assert report.ssim > 0.75
        assert report.psnr > 14.0
        assert 0.0 <= report.lpips < 0.2
        assert report.average_fps > 10.0
        assert set(report.per_object_ssim) == {"sphere", "cube"}

    def test_selected_configs_come_from_space(self, pipeline_run):
        _, preparation, _, _ = pipeline_run
        for config in preparation.selection.assignments.values():
            assert config in TINY_CONFIG.config_space

    def test_measurement_cache_reused_across_devices(self, pipeline_run, small_dataset):
        pipeline, _, _, _ = pipeline_run
        cache_size = len(pipeline.measurement_cache)
        other_device = DeviceProfile(
            name="bigger", memory_budget_mb=12.0, hard_memory_limit_mb=12.0
        )
        second = NeRFlexPipeline(
            other_device, TINY_CONFIG, measurement_cache=pipeline.measurement_cache
        )
        second.prepare(small_dataset)
        # No new profiling measurements were needed (only cached entries reused).
        measurement_keys = [
            key for key in pipeline.measurement_cache if isinstance(key[-1], int)
        ]
        assert len(pipeline.measurement_cache) >= cache_size
        assert measurement_keys

    def test_fairness_selector_plugs_in(self, small_dataset, pipeline_run):
        pipeline, _, _, dp_report = pipeline_run
        fairness = NeRFlexPipeline(
            TINY_DEVICE,
            TINY_CONFIG,
            selector=FairnessSelector(),
            measurement_cache=pipeline.measurement_cache,
        )
        preparation, multi_model, report = fairness.run(small_dataset)
        assert report.loaded
        # The DP never does worse than Fairness in predicted total quality.
        assert (
            dp_report.selection.total_predicted_quality
            >= preparation.selection.total_predicted_quality - 1e-6
        )

    def test_report_describe_is_serialisable(self, pipeline_run):
        import json

        _, _, _, report = pipeline_run
        payload = json.dumps(report.describe())
        assert "NeRFlex" in payload


class TestBaselines:
    def test_single_nerf_baseline_runs(self, small_dataset):
        baseline = SingleNeRFBaseline(config=Configuration(24, 2))
        report = baseline.run(small_dataset, TINY_DEVICE, num_eval_views=1, num_fps_frames=100)
        assert report.method == SingleNeRFBaseline.method_name
        assert report.size_mb > 0
        assert report.num_submodels == 1

    def test_block_nerf_uses_one_model_per_object(self, small_dataset):
        baseline = BlockNeRFBaseline(config=Configuration(16, 1))
        multi_model = baseline.bake(small_dataset)
        assert multi_model.num_submodels == len(small_dataset.scene.placed)

    def test_block_nerf_bigger_than_single(self, small_dataset):
        config = Configuration(16, 1)
        single = SingleNeRFBaseline(config=config).bake(small_dataset)
        block = BlockNeRFBaseline(config=config).bake(small_dataset)
        assert block.size_mb() > single.size_mb()

    def test_field_emulators_quality_ordering(self, small_dataset):
        """Stronger networks (NGP) resolve more detail than Mip-NeRF 360 on
        the same training coverage."""
        ngp = NGPEmulator(seed=0).run(small_dataset, num_eval_views=1)
        mip = MipNeRF360Emulator(seed=0).run(small_dataset, num_eval_views=1)
        assert ngp.ssim >= mip.ssim - 1e-3
        assert 0.0 < ngp.ssim <= 1.0
        assert ngp.describe()["method"] == "Instant-NGP"

    def test_emulator_invalid_renderer(self):
        with pytest.raises(ValueError):
            NGPEmulator(renderer="raster")

    def test_evaluate_deployment_failed_load(self, small_dataset):
        baseline = SingleNeRFBaseline(config=Configuration(48, 4))
        multi_model = baseline.bake(small_dataset)
        report = evaluate_baked_deployment(
            multi_model,
            small_dataset,
            TINY_DEVICE,
            method="oversized",
            num_eval_views=1,
            num_fps_frames=100,
        )
        assert not report.loaded
        assert report.ssim == 0.0
        assert report.fps_trace.failed
