"""Shared fixtures: small scenes and datasets sized for fast unit testing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config_space import ConfigurationSpace
from repro.scenes.cameras import orbit_cameras
from repro.scenes.dataset import generate_dataset
from repro.scenes.library import make_single_object_scene
from repro.scenes.objects import make_cube, make_sphere
from repro.scenes.raytrace import render_scene
from repro.scenes.scene import PlacedObject, Scene


@pytest.fixture(scope="session")
def sphere_scene():
    """A single textured sphere centred at the origin."""
    return make_single_object_scene("sphere")


@pytest.fixture(scope="session")
def two_object_scene():
    """A small two-object scene (sphere + cube) used across integration tests."""
    placed = [
        PlacedObject(
            obj=make_sphere(frequency=2.0),
            translation=np.array([-0.55, 0.0, 0.0]),
            instance_id=0,
            instance_name="sphere",
        ),
        PlacedObject(
            obj=make_cube(frequency=8.0),
            translation=np.array([0.55, 0.0, 0.0]),
            instance_id=1,
            instance_name="cube",
        ),
    ]
    return Scene(placed)


@pytest.fixture(scope="session")
def small_dataset(two_object_scene):
    """A low-resolution dataset over the two-object scene."""
    return generate_dataset(
        two_object_scene, num_train=4, num_test=1, resolution=64, name="tiny"
    )


@pytest.fixture(scope="session")
def sphere_view(sphere_scene):
    """One rendered view of the sphere scene."""
    camera = orbit_cameras(
        sphere_scene.center,
        radius=1.3 * sphere_scene.extent,
        count=1,
        width=72,
        height=72,
    )[0]
    return render_scene(sphere_scene, camera), camera


@pytest.fixture(scope="session")
def tiny_config_space():
    """A small configuration space that keeps baking cheap in tests."""
    return ConfigurationSpace(granularities=(8, 12, 16, 24), patch_sizes=(1, 2, 3))
