"""Tests for the transport layer and the shared worker-daemon lifecycle.

Pins the tentpole contract of the transport refactor: the frame protocol
round-trips, transports resolve by name and environment, and the
:class:`~repro.exec.WorkerHost` owns the lifecycle both parallel backends
share — persistent daemons reused across maps through the callable-token
registry (zero respawns when the callable is unchanged), transparent
respawn after a SIGKILL between maps, chronic death surfacing as an error,
and the TCP transport shipping picklable callables to live daemons without
a respawn (the remote-ready path).
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.exec import (
    ClusterBackend,
    ForkSocketpairTransport,
    ProcessBackend,
    Shard,
    TcpTransport,
    Transport,
    TRANSPORTS,
    WorkerHost,
    WorkerTaskError,
    fork_available,
    resolve_transport,
)
from repro.exec.arrayplane import (
    FrameProtocolError,
    MAX_FRAME_BYTES,
    NAME_ROOT,
    PLANE_INLINE,
    PLANE_SHM,
    shm_available,
)
from repro.exec.transport import recv_frame, send_frame

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork")

BOTH_TRANSPORTS = ["fork", "tcp"]


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------


class TestFrameProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = ("shard", 3, 0, [(0, np.arange(4)), (1, "x")])
            send_frame(a, message)
            received = recv_frame(b)
            assert received[0] == "shard" and received[1] == 3
            assert np.array_equal(received[3][0][1], np.arange(4))
        finally:
            a.close()
            b.close()

    def test_eof_raises(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)
        b.close()

    def test_unpicklable_send_leaves_no_torn_frame(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(Exception):
                send_frame(a, ("bad", threading.Lock()))
            # The stream is still clean: a well-formed frame follows.
            send_frame(a, ("ok",))
            assert recv_frame(b) == ("ok",)
        finally:
            a.close()
            b.close()

    def test_oversized_length_prefix_rejected_before_allocation(self):
        # Regression: a corrupt or hostile 8-byte prefix used to drive a
        # near-2**64-byte allocation attempt; it must fail fast instead.
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("<Q", MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameProtocolError, match="cap"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_frame_error_is_a_connection_error(self):
        # Every dispatch loop treats (EOFError, OSError) as worker death;
        # protocol violations must flow through the same handling.
        assert issubclass(FrameProtocolError, ConnectionError)
        assert issubclass(FrameProtocolError, OSError)


# ---------------------------------------------------------------------------
# Transport resolution
# ---------------------------------------------------------------------------


class TestResolveTransport:
    def test_registry_names(self):
        assert set(TRANSPORTS) == {"fork", "tcp"}

    def test_resolve_by_name(self):
        assert isinstance(resolve_transport("fork"), ForkSocketpairTransport)
        assert isinstance(resolve_transport("tcp"), TcpTransport)

    def test_instance_passthrough(self):
        transport = TcpTransport()
        assert resolve_transport(transport) is transport

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
        assert resolve_transport(None).name == "tcp"
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert resolve_transport(None).name == "fork"

    def test_unknown_name_lists_valid_transports(self):
        with pytest.raises(ValueError, match="fork, tcp"):
            resolve_transport("carrier-pigeon")

    def test_backends_accept_transport(self):
        process = ProcessBackend(workers=2, transport="tcp")
        cluster = ClusterBackend(workers=2, transport="fork")
        assert process.transport.name == "tcp"
        assert cluster.transport.name == "fork"
        assert isinstance(process.transport, Transport)


# ---------------------------------------------------------------------------
# Worker-host lifecycle
# ---------------------------------------------------------------------------


def _pid_task(x):
    """Module-level (hence picklable) task with stable identity."""
    return (os.getpid(), x * 2)


def _pid_task_other(x):
    return (os.getpid(), x + 1000)


def one_item_shards(count: int) -> list:
    return [Shard(index=i, item_indices=(i,), cost=1.0) for i in range(count)]


@needs_fork
class TestWorkerHostReuse:
    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_daemons_reused_across_maps_same_callable(self, transport):
        """The acceptance contract: zero respawns on the second map."""
        host = WorkerHost(transport=transport, workers=2)
        try:
            items = list(range(8))
            first, report_a = host.run(_pid_task, items, one_item_shards(8))
            assert [v for _, v in first] == [x * 2 for x in items]
            assert report_a.spawned == 2 and host.spawn_count == 2
            second, report_b = host.run(_pid_task, items, one_item_shards(8))
            assert [v for _, v in second] == [x * 2 for x in items]
            # Same callable: nothing respawned, the same daemons served it.
            assert report_b.spawned == 0
            assert report_b.reused_workers == 2
            assert host.spawn_count == 2
            assert host.reused_maps == 1
            assert {pid for pid, _ in second} <= {pid for pid, _ in first}
        finally:
            host.shutdown()

    def test_fork_transport_respawns_on_callable_change(self):
        host = WorkerHost(transport="fork", workers=2)
        try:
            host.run(_pid_task, [1, 2, 3, 4], one_item_shards(4))
            assert host.task_generations == 1 and host.spawn_count == 2
            results, report = host.run(_pid_task_other, [1, 2], one_item_shards(2))
            assert [v for _, v in results] == [1001, 1002]
            # The fork transport cannot ship a callable to a live daemon.
            assert host.task_generations == 2
            assert report.task_registered and report.spawned == 2
        finally:
            host.shutdown()

    def test_tcp_transport_ships_new_callable_without_respawn(self):
        host = WorkerHost(transport="tcp", workers=2)
        try:
            first, _ = host.run(_pid_task, [1, 2, 3, 4], one_item_shards(4))
            assert host.spawn_count == 2
            second, report = host.run(_pid_task_other, [1, 2, 3, 4], one_item_shards(4))
            assert [v for _, v in second] == [1001, 1002, 1003, 1004]
            # The callable crossed the wire by pickle: the daemons that ran
            # the first map ran the second, and nothing was respawned.
            assert report.task_registered and report.spawned == 0
            assert host.spawn_count == 2
            assert {pid for pid, _ in second} <= {pid for pid, _ in first}
        finally:
            host.shutdown()

    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_unpicklable_callable_falls_back_to_fork_image(self, transport):
        host = WorkerHost(transport=transport, workers=2)
        try:
            weights = np.arange(8, dtype=np.float64)
            closure = lambda x: float(weights[x] + x)  # noqa: E731
            results, _ = host.run(closure, list(range(8)), one_item_shards(8))
            assert results == [float(2 * x) for x in range(8)]
        finally:
            host.shutdown()

    def test_one_shot_items_leave_fleet_intact(self):
        host = WorkerHost(transport="fork", workers=2)
        try:
            host.run(_pid_task, [1, 2, 3, 4], one_item_shards(4))
            generations = host.task_generations
            spawned = host.spawn_count
            lock = threading.Lock()
            items = [(lock, value) for value in range(4)]
            results, report = host.run(
                lambda item: item[1] * 3, items, one_item_shards(4)
            )
            assert results == [0, 3, 6, 9]
            assert report.one_shot
            # One-shot daemons are extra spawns, but the persistent fleet
            # and its task registration survive for the next reusable map.
            assert host.task_generations == generations
            assert host.spawn_count == spawned + 2
            _, report = host.run(_pid_task, [5, 6], one_item_shards(2))
            assert report.spawned == 0 and report.reused_workers == 2
        finally:
            host.shutdown()


@needs_fork
class TestWorkerHostFailure:
    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_sigkill_between_maps_respawns_transparently(self, transport):
        host = WorkerHost(transport=transport, workers=2)
        try:
            first, _ = host.run(_pid_task, list(range(8)), one_item_shards(8))
            victim = sorted({pid for pid, _ in first})[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10.0
            while host.alive_workers() > 1 and time.time() < deadline:
                time.sleep(0.02)
            second, report = host.run(_pid_task, list(range(8)), one_item_shards(8))
            assert [v for _, v in second] == [x * 2 for x in range(8)]
            assert host.worker_deaths >= 1
            assert report.spawned >= 1  # the replacement
            assert victim not in {pid for pid, _ in second}
        finally:
            host.shutdown()

    def test_chronic_death_raises(self):
        def die(x):
            os.kill(os.getpid(), signal.SIGKILL)

        host = WorkerHost(transport="fork", workers=2, max_respawns=2)
        try:
            with pytest.raises(RuntimeError, match="respawn"):
                host.run(die, list(range(6)), one_item_shards(6))
        finally:
            host.shutdown()

    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_task_error_raises_worker_task_error(self, transport):
        def boom(x):
            if x == 3:
                raise ValueError("worker task failed")
            return x

        host = WorkerHost(transport=transport, workers=2)
        try:
            with pytest.raises(WorkerTaskError, match="worker task failed"):
                host.run(boom, list(range(6)), one_item_shards(6))
            # The host stays usable after a failed map.
            results, _ = host.run(_pid_task, [1, 2], one_item_shards(2))
            assert [v for _, v in results] == [2, 4]
        finally:
            host.shutdown()

    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_raise_original_restores_exception_type(self, transport):
        def boom(x):
            if x == 1:
                raise KeyError("lost-key")
            return x

        host = WorkerHost(transport=transport, workers=2)
        try:
            with pytest.raises(KeyError, match="lost-key") as excinfo:
                host.run(boom, [0, 1, 2, 3], one_item_shards(4), raise_original=True)
            # The remote traceback rides along as the cause.
            assert isinstance(excinfo.value.__cause__, WorkerTaskError)
        finally:
            host.shutdown()

    def test_gc_without_shutdown_reaps_daemons(self):
        # Regression: a host dropped without shutdown() must not orphan
        # its fleet (the old fork pool reaped at GC via weakref.finalize).
        import gc

        host = WorkerHost(transport="fork", workers=2)
        results, _ = host.run(_pid_task, list(range(4)), one_item_shards(4))
        pids = {pid for pid, _ in results}
        del host
        gc.collect()
        for pid in pids:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                    time.sleep(0.02)
                except OSError:
                    break
            else:
                pytest.fail(f"daemon {pid} survived host garbage collection")

    def test_fork_worker_exits_when_scheduler_side_closes(self):
        # Regression: the worker must not inherit a dup of its *own*
        # scheduler-side socket, or the scheduler-died EOF never fires.
        transport = ForkSocketpairTransport()
        process, conn = transport.spawn_worker()
        try:
            conn.close()  # no "stop" frame — simulate a dead scheduler
            process.join(timeout=5.0)
            assert not process.is_alive(), (
                "fork worker kept running after its scheduler connection "
                "closed — it is holding the socketpair open itself"
            )
        finally:
            if process.is_alive():  # pragma: no cover - failure path
                process.terminate()
                process.join(timeout=2.0)

    def test_shutdown_reaps_daemons_and_listener(self):
        transport = TcpTransport()
        host = WorkerHost(transport=transport, workers=2)
        results, _ = host.run(_pid_task, list(range(4)), one_item_shards(4))
        pids = {pid for pid, _ in results}
        assert transport.port is not None
        host.shutdown()
        for pid in pids:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                    time.sleep(0.02)
                except OSError:
                    break
            else:
                pytest.fail(f"daemon {pid} survived shutdown")
        assert transport.port is None  # listener released


# ---------------------------------------------------------------------------
# Cluster daemons are persistent too (the tentpole's headline behaviour)
# ---------------------------------------------------------------------------


def _cluster_reuse_task(x):
    return (os.getpid(), x * 7)


@needs_fork
class TestClusterDaemonReuse:
    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_consecutive_maps_respawn_nothing(self, transport):
        backend = ClusterBackend(workers=2, transport=transport)
        try:
            first = backend.map(_cluster_reuse_task, list(range(12)))
            assert [v for _, v in first] == [x * 7 for x in range(12)]
            spawned = backend.stats.workers_spawned
            assert spawned == 2
            second = backend.map(_cluster_reuse_task, list(range(12, 24)))
            assert [v for _, v in second] == [x * 7 for x in range(12, 24)]
            # The acceptance criterion: daemons reused, respawn count zero.
            assert backend.stats.workers_spawned == spawned
            assert backend.stats.maps_reusing_daemons == 1
            assert backend.host.reused_maps == 1
            assert {pid for pid, _ in second} <= {pid for pid, _ in first}
        finally:
            backend.shutdown()

    def test_sigkill_between_cluster_maps_is_transparent(self):
        backend = ClusterBackend(workers=2, transport="fork")
        try:
            first = backend.map(_cluster_reuse_task, list(range(8)))
            victim = sorted({pid for pid, _ in first})[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10.0
            while backend.host.alive_workers() > 1 and time.time() < deadline:
                time.sleep(0.02)
            second = backend.map(_cluster_reuse_task, list(range(8)))
            assert [v for _, v in second] == [x * 7 for x in range(8)]
            assert backend.stats.worker_deaths >= 1
        finally:
            backend.shutdown()


# ---------------------------------------------------------------------------
# Frame protocol v2: negotiation
# ---------------------------------------------------------------------------


class TestProtocolNegotiation:
    def test_knob_off_negotiates_v1_everywhere(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT_SHM", "off")
        assert ForkSocketpairTransport().negotiated() == (1, None)
        assert TcpTransport().negotiated() == (1, None)
        assert ForkSocketpairTransport().describe() == "fork"

    def test_knob_inline_forces_bytes_on_wire_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT_SHM", "inline")
        assert ForkSocketpairTransport().negotiated() == (2, PLANE_INLINE)

    def test_explicit_protocol_overrides_the_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT_SHM", raising=False)
        assert ForkSocketpairTransport(protocol=1).negotiated() == (1, None)
        assert TcpTransport(protocol=1).negotiated() == (1, None)

    def test_fork_defaults_to_shm_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT_SHM", raising=False)
        version, plane = ForkSocketpairTransport().negotiated()
        assert version == 2
        assert plane == (PLANE_SHM if shm_available() else PLANE_INLINE)

    def test_tcp_never_negotiates_shared_memory(self):
        # Even an explicit plane request degrades: a remote worker has no
        # common /dev/shm, so the TCP stream always carries raw segments.
        version, plane = TcpTransport(protocol=2, plane=PLANE_SHM).negotiated()
        assert (version, plane) == (2, PLANE_INLINE)

    def test_describe_names_the_negotiated_plane(self):
        transport = ForkSocketpairTransport(protocol=2, plane=PLANE_INLINE)
        assert transport.describe() == "fork+inline"


@needs_fork
class TestProtocolInterop:
    def test_tcp_hello_arity_negotiates_both_versions(self):
        # A v1-advertising worker sends the classic 2-tuple hello and gets
        # no welcome frame; a v2-capable worker negotiates up.
        for worker_protocol, expected in ((1, 1), (None, 2)):
            transport = TcpTransport(
                protocol=2, worker_protocol=worker_protocol
            )
            process, channel = transport.spawn_worker()
            try:
                assert channel.version == expected
                channel.send(("stop",))
                process.join(timeout=5.0)
            finally:
                channel.close()
                transport.close()
                if process.is_alive():  # pragma: no cover - failure path
                    process.terminate()
                    process.join(timeout=2.0)

    def test_v1_daemons_serve_a_v2_scheduler(self):
        # The interop contract: a fleet of old (v1-framed) daemons under a
        # scheduler whose knob is on must run maps unchanged.
        transport = TcpTransport(protocol=2, worker_protocol=1)
        host = WorkerHost(transport=transport, workers=2)
        try:
            results, _ = host.run(
                _pid_task, list(range(6)), one_item_shards(6)
            )
            assert [v for _, v in results] == [x * 2 for x in range(6)]
        finally:
            host.shutdown()

    def test_fork_shm_channel_carries_the_worker_prefix(self):
        if not shm_available():
            pytest.skip("no shared-memory support on this platform")
        transport = ForkSocketpairTransport(protocol=2, plane=PLANE_SHM)
        process, channel = transport.spawn_worker()
        try:
            assert channel.version == 2
            assert channel.worker_prefix.startswith(NAME_ROOT)
            channel.send(("stop",))
            process.join(timeout=5.0)
        finally:
            channel.close()
            if process.is_alive():  # pragma: no cover - failure path
                process.terminate()
                process.join(timeout=2.0)

    def test_v1_channel_has_no_plane_state(self):
        transport = ForkSocketpairTransport(protocol=1)
        process, channel = transport.spawn_worker()
        try:
            assert channel.version == 1
            assert channel.worker_prefix is None
            assert channel.take_pins() == []
            channel.send(("stop",))
            process.join(timeout=5.0)
        finally:
            channel.close()
            if process.is_alive():  # pragma: no cover - failure path
                process.terminate()
                process.join(timeout=2.0)


# ---------------------------------------------------------------------------
# Parity matrix: {v1, v2} x {fork, tcp} x {1, 2, 5 workers}
# ---------------------------------------------------------------------------


def _golden_array_task(x):
    """A pure, deterministic task whose result is large enough (187 KiB)
    to ride the shared-memory plane when one is negotiated."""
    base = np.arange(24_000, dtype=np.float64)
    return np.sin(base * 1e-3) * float(x + 1)


PARITY_MATRIX = [
    (transport, protocol, workers)
    for transport in BOTH_TRANSPORTS
    for protocol in (1, 2)
    for workers in (1, 2, 5)
]


@needs_fork
class TestParityMatrix:
    @pytest.fixture(scope="class")
    def reference(self):
        return [_golden_array_task(x) for x in range(9)]

    @pytest.mark.parametrize(
        "transport,protocol,workers", PARITY_MATRIX,
        ids=[f"{t}-v{p}-w{w}" for t, p, w in PARITY_MATRIX],
    )
    def test_map_results_bit_identical_across_planes(
        self, transport, protocol, workers, reference
    ):
        # The acceptance pin: the negotiated frame protocol and plane are
        # pure carriers — every cell of the matrix returns byte-identical
        # arrays in item order.
        host = WorkerHost(
            transport=TRANSPORTS[transport](protocol=protocol),
            workers=workers,
        )
        try:
            results, _ = host.run(
                _golden_array_task, list(range(9)), one_item_shards(9)
            )
            assert len(results) == len(reference)
            for got, want in zip(results, reference):
                assert got.dtype == want.dtype
                assert got.shape == want.shape
                assert got.tobytes() == want.tobytes()
        finally:
            host.shutdown()
