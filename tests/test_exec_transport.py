"""Tests for the transport layer and the shared worker-daemon lifecycle.

Pins the tentpole contract of the transport refactor: the frame protocol
round-trips, transports resolve by name and environment, and the
:class:`~repro.exec.WorkerHost` owns the lifecycle both parallel backends
share — persistent daemons reused across maps through the callable-token
registry (zero respawns when the callable is unchanged), transparent
respawn after a SIGKILL between maps, chronic death surfacing as an error,
and the TCP transport shipping picklable callables to live daemons without
a respawn (the remote-ready path).
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.exec import (
    ClusterBackend,
    ForkSocketpairTransport,
    ProcessBackend,
    Shard,
    TcpTransport,
    Transport,
    TRANSPORTS,
    WorkerHost,
    WorkerTaskError,
    fork_available,
    resolve_transport,
)
from repro.exec.transport import recv_frame, send_frame

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork")

BOTH_TRANSPORTS = ["fork", "tcp"]


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------


class TestFrameProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = ("shard", 3, 0, [(0, np.arange(4)), (1, "x")])
            send_frame(a, message)
            received = recv_frame(b)
            assert received[0] == "shard" and received[1] == 3
            assert np.array_equal(received[3][0][1], np.arange(4))
        finally:
            a.close()
            b.close()

    def test_eof_raises(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)
        b.close()

    def test_unpicklable_send_leaves_no_torn_frame(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(Exception):
                send_frame(a, ("bad", threading.Lock()))
            # The stream is still clean: a well-formed frame follows.
            send_frame(a, ("ok",))
            assert recv_frame(b) == ("ok",)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Transport resolution
# ---------------------------------------------------------------------------


class TestResolveTransport:
    def test_registry_names(self):
        assert set(TRANSPORTS) == {"fork", "tcp"}

    def test_resolve_by_name(self):
        assert isinstance(resolve_transport("fork"), ForkSocketpairTransport)
        assert isinstance(resolve_transport("tcp"), TcpTransport)

    def test_instance_passthrough(self):
        transport = TcpTransport()
        assert resolve_transport(transport) is transport

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
        assert resolve_transport(None).name == "tcp"
        monkeypatch.delenv("REPRO_TRANSPORT")
        assert resolve_transport(None).name == "fork"

    def test_unknown_name_lists_valid_transports(self):
        with pytest.raises(ValueError, match="fork, tcp"):
            resolve_transport("carrier-pigeon")

    def test_backends_accept_transport(self):
        process = ProcessBackend(workers=2, transport="tcp")
        cluster = ClusterBackend(workers=2, transport="fork")
        assert process.transport.name == "tcp"
        assert cluster.transport.name == "fork"
        assert isinstance(process.transport, Transport)


# ---------------------------------------------------------------------------
# Worker-host lifecycle
# ---------------------------------------------------------------------------


def _pid_task(x):
    """Module-level (hence picklable) task with stable identity."""
    return (os.getpid(), x * 2)


def _pid_task_other(x):
    return (os.getpid(), x + 1000)


def one_item_shards(count: int) -> list:
    return [Shard(index=i, item_indices=(i,), cost=1.0) for i in range(count)]


@needs_fork
class TestWorkerHostReuse:
    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_daemons_reused_across_maps_same_callable(self, transport):
        """The acceptance contract: zero respawns on the second map."""
        host = WorkerHost(transport=transport, workers=2)
        try:
            items = list(range(8))
            first, report_a = host.run(_pid_task, items, one_item_shards(8))
            assert [v for _, v in first] == [x * 2 for x in items]
            assert report_a.spawned == 2 and host.spawn_count == 2
            second, report_b = host.run(_pid_task, items, one_item_shards(8))
            assert [v for _, v in second] == [x * 2 for x in items]
            # Same callable: nothing respawned, the same daemons served it.
            assert report_b.spawned == 0
            assert report_b.reused_workers == 2
            assert host.spawn_count == 2
            assert host.reused_maps == 1
            assert {pid for pid, _ in second} <= {pid for pid, _ in first}
        finally:
            host.shutdown()

    def test_fork_transport_respawns_on_callable_change(self):
        host = WorkerHost(transport="fork", workers=2)
        try:
            host.run(_pid_task, [1, 2, 3, 4], one_item_shards(4))
            assert host.task_generations == 1 and host.spawn_count == 2
            results, report = host.run(_pid_task_other, [1, 2], one_item_shards(2))
            assert [v for _, v in results] == [1001, 1002]
            # The fork transport cannot ship a callable to a live daemon.
            assert host.task_generations == 2
            assert report.task_registered and report.spawned == 2
        finally:
            host.shutdown()

    def test_tcp_transport_ships_new_callable_without_respawn(self):
        host = WorkerHost(transport="tcp", workers=2)
        try:
            first, _ = host.run(_pid_task, [1, 2, 3, 4], one_item_shards(4))
            assert host.spawn_count == 2
            second, report = host.run(_pid_task_other, [1, 2, 3, 4], one_item_shards(4))
            assert [v for _, v in second] == [1001, 1002, 1003, 1004]
            # The callable crossed the wire by pickle: the daemons that ran
            # the first map ran the second, and nothing was respawned.
            assert report.task_registered and report.spawned == 0
            assert host.spawn_count == 2
            assert {pid for pid, _ in second} <= {pid for pid, _ in first}
        finally:
            host.shutdown()

    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_unpicklable_callable_falls_back_to_fork_image(self, transport):
        host = WorkerHost(transport=transport, workers=2)
        try:
            weights = np.arange(8, dtype=np.float64)
            closure = lambda x: float(weights[x] + x)  # noqa: E731
            results, _ = host.run(closure, list(range(8)), one_item_shards(8))
            assert results == [float(2 * x) for x in range(8)]
        finally:
            host.shutdown()

    def test_one_shot_items_leave_fleet_intact(self):
        host = WorkerHost(transport="fork", workers=2)
        try:
            host.run(_pid_task, [1, 2, 3, 4], one_item_shards(4))
            generations = host.task_generations
            spawned = host.spawn_count
            lock = threading.Lock()
            items = [(lock, value) for value in range(4)]
            results, report = host.run(
                lambda item: item[1] * 3, items, one_item_shards(4)
            )
            assert results == [0, 3, 6, 9]
            assert report.one_shot
            # One-shot daemons are extra spawns, but the persistent fleet
            # and its task registration survive for the next reusable map.
            assert host.task_generations == generations
            assert host.spawn_count == spawned + 2
            _, report = host.run(_pid_task, [5, 6], one_item_shards(2))
            assert report.spawned == 0 and report.reused_workers == 2
        finally:
            host.shutdown()


@needs_fork
class TestWorkerHostFailure:
    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_sigkill_between_maps_respawns_transparently(self, transport):
        host = WorkerHost(transport=transport, workers=2)
        try:
            first, _ = host.run(_pid_task, list(range(8)), one_item_shards(8))
            victim = sorted({pid for pid, _ in first})[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10.0
            while host.alive_workers() > 1 and time.time() < deadline:
                time.sleep(0.02)
            second, report = host.run(_pid_task, list(range(8)), one_item_shards(8))
            assert [v for _, v in second] == [x * 2 for x in range(8)]
            assert host.worker_deaths >= 1
            assert report.spawned >= 1  # the replacement
            assert victim not in {pid for pid, _ in second}
        finally:
            host.shutdown()

    def test_chronic_death_raises(self):
        def die(x):
            os.kill(os.getpid(), signal.SIGKILL)

        host = WorkerHost(transport="fork", workers=2, max_respawns=2)
        try:
            with pytest.raises(RuntimeError, match="respawn"):
                host.run(die, list(range(6)), one_item_shards(6))
        finally:
            host.shutdown()

    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_task_error_raises_worker_task_error(self, transport):
        def boom(x):
            if x == 3:
                raise ValueError("worker task failed")
            return x

        host = WorkerHost(transport=transport, workers=2)
        try:
            with pytest.raises(WorkerTaskError, match="worker task failed"):
                host.run(boom, list(range(6)), one_item_shards(6))
            # The host stays usable after a failed map.
            results, _ = host.run(_pid_task, [1, 2], one_item_shards(2))
            assert [v for _, v in results] == [2, 4]
        finally:
            host.shutdown()

    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_raise_original_restores_exception_type(self, transport):
        def boom(x):
            if x == 1:
                raise KeyError("lost-key")
            return x

        host = WorkerHost(transport=transport, workers=2)
        try:
            with pytest.raises(KeyError, match="lost-key") as excinfo:
                host.run(boom, [0, 1, 2, 3], one_item_shards(4), raise_original=True)
            # The remote traceback rides along as the cause.
            assert isinstance(excinfo.value.__cause__, WorkerTaskError)
        finally:
            host.shutdown()

    def test_gc_without_shutdown_reaps_daemons(self):
        # Regression: a host dropped without shutdown() must not orphan
        # its fleet (the old fork pool reaped at GC via weakref.finalize).
        import gc

        host = WorkerHost(transport="fork", workers=2)
        results, _ = host.run(_pid_task, list(range(4)), one_item_shards(4))
        pids = {pid for pid, _ in results}
        del host
        gc.collect()
        for pid in pids:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                    time.sleep(0.02)
                except OSError:
                    break
            else:
                pytest.fail(f"daemon {pid} survived host garbage collection")

    def test_fork_worker_exits_when_scheduler_side_closes(self):
        # Regression: the worker must not inherit a dup of its *own*
        # scheduler-side socket, or the scheduler-died EOF never fires.
        transport = ForkSocketpairTransport()
        process, conn = transport.spawn_worker()
        try:
            conn.close()  # no "stop" frame — simulate a dead scheduler
            process.join(timeout=5.0)
            assert not process.is_alive(), (
                "fork worker kept running after its scheduler connection "
                "closed — it is holding the socketpair open itself"
            )
        finally:
            if process.is_alive():  # pragma: no cover - failure path
                process.terminate()
                process.join(timeout=2.0)

    def test_shutdown_reaps_daemons_and_listener(self):
        transport = TcpTransport()
        host = WorkerHost(transport=transport, workers=2)
        results, _ = host.run(_pid_task, list(range(4)), one_item_shards(4))
        pids = {pid for pid, _ in results}
        assert transport.port is not None
        host.shutdown()
        for pid in pids:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                    time.sleep(0.02)
                except OSError:
                    break
            else:
                pytest.fail(f"daemon {pid} survived shutdown")
        assert transport.port is None  # listener released


# ---------------------------------------------------------------------------
# Cluster daemons are persistent too (the tentpole's headline behaviour)
# ---------------------------------------------------------------------------


def _cluster_reuse_task(x):
    return (os.getpid(), x * 7)


@needs_fork
class TestClusterDaemonReuse:
    @pytest.mark.parametrize("transport", BOTH_TRANSPORTS)
    def test_consecutive_maps_respawn_nothing(self, transport):
        backend = ClusterBackend(workers=2, transport=transport)
        try:
            first = backend.map(_cluster_reuse_task, list(range(12)))
            assert [v for _, v in first] == [x * 7 for x in range(12)]
            spawned = backend.stats.workers_spawned
            assert spawned == 2
            second = backend.map(_cluster_reuse_task, list(range(12, 24)))
            assert [v for _, v in second] == [x * 7 for x in range(12, 24)]
            # The acceptance criterion: daemons reused, respawn count zero.
            assert backend.stats.workers_spawned == spawned
            assert backend.stats.maps_reusing_daemons == 1
            assert backend.host.reused_maps == 1
            assert {pid for pid, _ in second} <= {pid for pid, _ in first}
        finally:
            backend.shutdown()

    def test_sigkill_between_cluster_maps_is_transparent(self):
        backend = ClusterBackend(workers=2, transport="fork")
        try:
            first = backend.map(_cluster_reuse_task, list(range(8)))
            victim = sorted({pid for pid, _ in first})[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10.0
            while backend.host.alive_workers() > 1 and time.time() < deadline:
                time.sleep(0.02)
            second = backend.map(_cluster_reuse_task, list(range(8)))
            assert [v for _, v in second] == [x * 7 for x in range(8)]
            assert backend.stats.worker_deaths >= 1
        finally:
            backend.shutdown()
