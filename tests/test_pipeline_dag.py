"""Golden DAG-parity tier: the stage-DAG pipeline vs the sequential path.

Pins the tentpole's bit-identity contract: a corpus of independent scenes
run through :func:`repro.core.pipeline.run_corpus` under the DAG scheduler
with 1, 2 and 5 workers produces report JSON (profile state included)
bit-identical to the sequential ``run()`` loop; a single scene routed
through ``dag_workers`` matches the staged path; and the satellite report
fixes hold (explicit ``"none"`` transport, mutation-isolated stage
splits).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import (
    DeploymentReport,
    NeRFlexPipeline,
    run_corpus,
)
from repro.exec import DagValidationError
from repro.scenes.dataset import generate_dataset
from repro.scenes.objects import make_cube, make_sphere
from repro.scenes.scene import PlacedObject, Scene

from tests._golden_driver import GOLDEN_DEVICE, golden_config
from tests.test_exec_cluster import _report_record

# Concurrent profile fits can race the process-global warnings filters, so
# scipy's cosmetic OptimizeWarning occasionally escapes QualityModel.fit's
# "ignore" scope.  The fallback decision itself is read off pcov and is
# race-free (see repro.core.profiler); the leaked warning is just noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore::scipy.optimize.OptimizeWarning"
)

#: The corpus: three tiny scenes with differing object counts, so stage
#: costs differ per scene and the scheduler has real choices to make.
CORPUS_SPECS = {
    "corpus-pair": [(make_sphere, 2.0, -0.55), (make_cube, 8.0, 0.55)],
    "corpus-solo": [(make_sphere, 4.0, 0.0)],
    "corpus-trio": [
        (make_cube, 6.0, -0.8),
        (make_sphere, 3.0, 0.0),
        (make_cube, 9.0, 0.8),
    ],
}


def corpus_dataset(name):
    placed = [
        PlacedObject(
            obj=maker(frequency=frequency),
            translation=np.array([x, 0.0, 0.0]),
            instance_id=index,
            instance_name=f"obj{index}",
        )
        for index, (maker, frequency, x) in enumerate(CORPUS_SPECS[name])
    ]
    return generate_dataset(
        Scene(placed), num_train=4, num_test=1, resolution=48, name=name
    )


def corpus_jobs():
    """Fresh ``(pipeline, dataset)`` jobs — one pipeline per scene, serial
    inner backends (thread-level overlap comes from the DAG alone)."""
    return [
        (NeRFlexPipeline(GOLDEN_DEVICE, config=golden_config()), corpus_dataset(name))
        for name in sorted(CORPUS_SPECS)
    ]


def corpus_records(runs) -> list:
    return [_report_record(run) for run in runs]


class TestCorpusDagParity:
    @pytest.fixture(scope="class")
    def sequential_records(self):
        return corpus_records(run_corpus(corpus_jobs(), workers=0))

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_dag_corpus_matches_sequential_bit_identically(
        self, sequential_records, workers
    ):
        records = corpus_records(run_corpus(corpus_jobs(), workers=workers))
        assert records == sequential_records

    def test_results_arrive_in_job_order(self):
        runs = run_corpus(corpus_jobs(), workers=2)
        names = [preparation.dataset_name for preparation, _, _ in runs]
        assert names == sorted(CORPUS_SPECS)

    def test_every_stage_timed_under_dag(self):
        runs = run_corpus(corpus_jobs(), workers=2)
        for _, _, report in runs:
            assert sorted(report.stage_seconds) == [
                "bake",
                "deploy",
                "profiler",
                "segmentation",
                "solver",
            ]
            assert report.worker_seconds.get("render:profiler", 0.0) > 0.0

    def test_duplicate_scene_name_raises(self):
        (pipeline_a, dataset), (pipeline_b, _) = corpus_jobs()[:2]
        with pytest.raises(DagValidationError, match="duplicate scene"):
            run_corpus(
                [(pipeline_a, dataset), (pipeline_b, dataset)], workers=2
            )

    def test_shared_pipeline_instance_raises(self):
        pipeline = NeRFlexPipeline(GOLDEN_DEVICE, config=golden_config())
        with pytest.raises(DagValidationError, match="own"):
            run_corpus(
                [
                    (pipeline, corpus_dataset("corpus-pair")),
                    (pipeline, corpus_dataset("corpus-solo")),
                ],
                workers=2,
            )


class TestSingleSceneDag:
    def test_dag_workers_config_matches_sequential(self):
        sequential = NeRFlexPipeline(GOLDEN_DEVICE, config=golden_config()).run(
            corpus_dataset("corpus-pair")
        )
        config = golden_config()
        config.dag_workers = 2
        dag = NeRFlexPipeline(GOLDEN_DEVICE, config=config).run(
            corpus_dataset("corpus-pair")
        )
        assert _report_record(dag) == _report_record(sequential)
        assert sorted(dag[2].stage_seconds) == sorted(sequential[2].stage_seconds)

    def test_dag_workers_env_routing(self, monkeypatch):
        pipeline = NeRFlexPipeline(GOLDEN_DEVICE, config=golden_config())
        monkeypatch.delenv("REPRO_DAG_WORKERS", raising=False)
        assert pipeline._dag_workers() == 0  # default: sequential path
        monkeypatch.setenv("REPRO_DAG_WORKERS", "3")
        assert pipeline._dag_workers() == 3
        config = golden_config()
        config.dag_workers = 1  # explicit config wins over the environment
        explicit = NeRFlexPipeline(GOLDEN_DEVICE, config=config)
        assert explicit._dag_workers() == 1

    def test_build_dag_has_one_node_per_stage(self):
        pipeline = NeRFlexPipeline(GOLDEN_DEVICE, config=golden_config())
        dag = pipeline.build_dag(corpus_dataset("corpus-solo"))
        names = sorted(node.name for node in dag.nodes)
        assert names == [
            "bake:corpus-solo",
            "deploy:corpus-solo",
            "profile:corpus-solo",
            "segment:corpus-solo",
            "select:corpus-solo",
        ]
        order = dag.topological_order(("corpus-solo/dataset",))
        assert [node.stage for node in order] == [
            "segmentation",
            "profiler",
            "solver",
            "bake",
            "deploy",
        ]
        assert all(node.cost > 0.0 for node in dag.nodes)


class TestReportFixes:
    def test_transport_name_defaults_to_none_label(self):
        # Satellite fix: the report never carries an ambiguous "" transport.
        field = DeploymentReport.__dataclass_fields__["transport_name"]
        assert field.default == "none"

    def test_serial_backend_reports_none_transport(self):
        _, _, report = NeRFlexPipeline(GOLDEN_DEVICE, config=golden_config()).run(
            corpus_dataset("corpus-solo")
        )
        assert report.transport_name == "none"

    def test_stage_seconds_snapshot_is_mutation_isolated(self):
        # Satellite fix: the report's stage split must be a frozen snapshot
        # — later timer activity on the same preparation (a re-bake, a
        # second deploy) must not rewrite an already-returned report.
        pipeline = NeRFlexPipeline(GOLDEN_DEVICE, config=golden_config())
        preparation, multi_model, report = pipeline.run(corpus_dataset("corpus-solo"))
        stage_before = dict(report.stage_seconds)
        overhead_before = dict(report.overhead_seconds)
        worker_before = dict(report.worker_seconds)

        with preparation.timers.time("segmentation"):
            pass  # accumulates onto the preparation's live timers
        preparation.timers.add_worker("profiler", 123.0)
        second = pipeline.deploy(multi_model, corpus_dataset("corpus-solo"), preparation)

        assert report.stage_seconds == stage_before
        assert report.overhead_seconds == overhead_before
        assert report.worker_seconds == worker_before
        # The fresh deploy sees the accumulated timers; the old report does
        # not share state with it either.
        assert second.stage_seconds is not report.stage_seconds
        assert second.worker_seconds["profiler"] >= 123.0
