"""Tests for cameras, ray tracing, dataset generation and the scene library."""

import numpy as np
import pytest

from repro.scenes.cameras import (
    Camera,
    camera_rays,
    forward_facing_cameras,
    orbit_cameras,
)
from repro.scenes.dataset import generate_dataset
from repro.scenes.library import (
    SIMULATED_SCENE_NAMES,
    make_realworld_scene,
    make_simulated_scene,
    make_single_object_scene,
)
from repro.scenes.raytrace import render_field, render_scene


class TestCamera:
    def test_rotation_is_orthonormal(self):
        camera = Camera(position=np.array([2.0, 1.0, 3.0]), look_at=np.zeros(3))
        rotation = camera.rotation
        assert np.allclose(rotation.T @ rotation, np.eye(3), atol=1e-12)

    def test_forward_points_at_target(self):
        camera = Camera(position=np.array([0.0, 0.0, 5.0]), look_at=np.zeros(3))
        assert np.allclose(camera.forward, [0.0, 0.0, -1.0])

    def test_degenerate_camera_rejected(self):
        camera = Camera(position=np.zeros(3), look_at=np.zeros(3))
        with pytest.raises(ValueError):
            _ = camera.forward

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            Camera(position=np.ones(3), look_at=np.zeros(3), width=0, height=10)

    def test_camera_rays_unit_length_and_count(self):
        camera = Camera(position=np.array([0.0, 0.0, 3.0]), look_at=np.zeros(3), width=16, height=12)
        origins, directions = camera_rays(camera)
        assert origins.shape == (192, 3)
        assert np.allclose(np.linalg.norm(directions, axis=1), 1.0)

    def test_central_ray_matches_forward(self):
        camera = Camera(position=np.array([0.0, 0.0, 3.0]), look_at=np.zeros(3), width=31, height=31)
        _, directions = camera_rays(camera)
        central = directions.reshape(31, 31, 3)[15, 15]
        assert np.allclose(central, camera.forward, atol=1e-2)

    def test_resized_keeps_pose(self):
        camera = Camera(position=np.ones(3), look_at=np.zeros(3), width=10, height=10)
        resized = camera.resized(20, 30)
        assert resized.width == 20 and resized.height == 30
        assert np.allclose(resized.position, camera.position)

    def test_orbit_cameras_equidistant(self):
        cams = orbit_cameras(np.zeros(3), radius=2.0, count=8)
        distances = [np.linalg.norm(cam.position) for cam in cams]
        assert np.allclose(distances, 2.0)

    def test_forward_facing_cameras_look_at_center(self):
        center = np.array([0.0, 0.5, 0.0])
        cams = forward_facing_cameras(center, distance=3.0, count=5)
        assert len(cams) == 5
        for cam in cams:
            assert np.allclose(cam.look_at, center)
            assert cam.position[2] > center[2]

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            orbit_cameras(np.zeros(3), radius=1.0, count=0)


class TestRayTracing:
    def test_sphere_render_hits_centre(self, sphere_view):
        view, _ = sphere_view
        height, width = view.rgb.shape[:2]
        assert view.hit_mask[height // 2, width // 2]
        assert view.object_ids[height // 2, width // 2] == 0

    def test_background_pixels_are_background_colour(self, sphere_view, sphere_scene):
        view, _ = sphere_view
        corner = view.rgb[0, 0]
        assert np.allclose(corner, sphere_scene.background_color)
        assert view.object_ids[0, 0] == -1
        assert np.isinf(view.depth[0, 0])

    def test_depth_increases_towards_silhouette(self, sphere_view):
        view, _ = sphere_view
        height, width = view.depth.shape
        centre_depth = view.depth[height // 2, width // 2]
        finite = view.depth[np.isfinite(view.depth)]
        assert centre_depth == pytest.approx(finite.min(), rel=0.05)

    def test_object_mask_matches_ids(self, sphere_view):
        view, _ = sphere_view
        assert np.array_equal(view.object_mask(0), view.object_ids == 0)

    def test_shading_off_returns_albedo_range(self, sphere_scene):
        from repro.scenes.cameras import orbit_cameras

        cam = orbit_cameras(sphere_scene.center, radius=1.3 * sphere_scene.extent, count=1, width=48, height=48)[0]
        unshaded = render_scene(sphere_scene, cam, shading=False)
        assert unshaded.rgb.max() <= 1.0

    def test_render_field_matches_render_scene(self, sphere_scene):
        from repro.scenes.cameras import orbit_cameras
        from repro.metrics import ssim

        cam = orbit_cameras(sphere_scene.center, radius=1.3 * sphere_scene.extent, count=1, width=48, height=48)[0]
        scene_view = render_scene(sphere_scene, cam)
        field_view = render_field(sphere_scene, cam)
        assert ssim(scene_view.rgb, field_view.rgb) > 0.98
        assert abs(scene_view.hit_mask.mean() - field_view.hit_mask.mean()) < 0.02


class TestDatasets:
    def test_dataset_shapes(self, small_dataset):
        assert small_dataset.num_train == 4
        assert small_dataset.num_test == 1
        assert small_dataset.train_images[0].shape == (64, 64, 3)

    def test_dataset_describe(self, small_dataset):
        description = small_dataset.describe()
        assert description["resolution"] == (64, 64)
        assert description["objects"] == ["sphere", "cube"]

    def test_every_object_visible_somewhere(self, small_dataset):
        seen = set()
        for view in small_dataset.train_views:
            seen.update(np.unique(view.object_ids).tolist())
        for instance_id in small_dataset.scene.instance_ids:
            assert instance_id in seen

    def test_forward_trajectory(self, two_object_scene):
        dataset = generate_dataset(
            two_object_scene, num_train=2, num_test=1, resolution=32, trajectory="forward"
        )
        assert dataset.num_train == 2

    def test_unknown_trajectory_rejected(self, two_object_scene):
        with pytest.raises(ValueError):
            generate_dataset(two_object_scene, trajectory="spline")


class TestSceneLibrary:
    def test_four_simulated_scenes(self):
        assert len(SIMULATED_SCENE_NAMES) == 4
        for index in range(1, 5):
            scene = make_simulated_scene(index, seed=0)
            assert len(scene) == 5

    def test_scene4_is_reference_objects(self):
        scene = make_simulated_scene(4, seed=0)
        assert scene.instance_names == ["hotdog", "ficus", "chair", "ship", "lego"]

    def test_scene1_simpler_than_scene2(self):
        simple = make_simulated_scene(1, seed=0)
        complex_scene = make_simulated_scene(2, seed=0)
        rank_simple = sum(placed.complexity_rank for placed in simple.placed)
        rank_complex = sum(placed.complexity_rank for placed in complex_scene.placed)
        assert rank_simple < rank_complex

    def test_scene3_depends_on_seed(self):
        names_a = make_simulated_scene(3, seed=0).instance_names
        names_b = make_simulated_scene(3, seed=99).instance_names
        assert names_a != names_b

    def test_invalid_scene_index(self):
        with pytest.raises(ValueError):
            make_simulated_scene(5)

    def test_single_object_scene(self):
        scene = make_single_object_scene("lego")
        assert len(scene) == 1
        assert scene.instance_names == ["lego"]

    def test_realworld_scene_has_backdrop(self):
        scene = make_realworld_scene(seed=0)
        assert "backdrop" in scene.instance_names
        assert len(scene) >= 4

    def test_realworld_scene_invalid_count(self):
        with pytest.raises(ValueError):
            make_realworld_scene(num_objects=0)
