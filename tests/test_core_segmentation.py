"""Tests for the detail-based segmentation module."""

import numpy as np
import pytest

from repro.core.segmentation import DetailBasedSegmenter
from repro.detection import ConnectedComponentsDetector


class TestDetailBasedSegmenter:
    def test_default_threshold_dedicates_every_object(self, small_dataset):
        """With the paper's evaluation setting (threshold = lowest maximum
        frequency) every detected object gets its own NeRF."""
        result = DetailBasedSegmenter().segment(small_dataset)
        assert len(result.dedicated) == len(small_dataset.scene.placed)
        assert result.joint is None
        assert result.threshold == pytest.approx(min(result.max_frequencies.values()))

    def test_sub_scene_names_match_instances(self, small_dataset):
        result = DetailBasedSegmenter().segment(small_dataset)
        names = {sub.name for sub in result.sub_scenes}
        assert names == set(small_dataset.scene.instance_names)

    def test_high_threshold_creates_joint_subscene(self, small_dataset):
        result = DetailBasedSegmenter(frequency_threshold=10.0).segment(small_dataset)
        assert result.dedicated == []
        joint = result.joint
        assert joint is not None
        assert sorted(joint.instance_ids) == sorted(small_dataset.scene.instance_ids)
        assert not joint.dedicated
        assert joint.enlargement_scales == [1.0] * small_dataset.num_train

    def test_intermediate_threshold_splits_by_frequency(self, small_dataset):
        baseline = DetailBasedSegmenter().segment(small_dataset)
        frequencies = sorted(baseline.max_frequencies.values())
        threshold = 0.5 * (frequencies[0] + frequencies[1])
        result = DetailBasedSegmenter(frequency_threshold=threshold).segment(small_dataset)
        assert len(result.dedicated) == 1
        assert result.joint is not None
        # The dedicated object is the high-frequency cube (instance 1).
        assert result.dedicated[0].instance_ids == [1]

    def test_dedicated_subscene_records_enlargement(self, small_dataset):
        result = DetailBasedSegmenter().segment(small_dataset)
        for sub in result.dedicated:
            visible = [scale for scale in sub.enlargement_scales if scale > 0]
            assert visible, f"{sub.name} never visible"
            assert max(visible) > 1.2
            # Enlarged training views dedicate more pixels to the object.
            assert max(sub.training_pixel_counts) > max(sub.pixel_counts)

    def test_keep_training_images(self, small_dataset):
        segmenter = DetailBasedSegmenter(keep_training_images=True)
        result = segmenter.segment(small_dataset)
        for sub in result.dedicated:
            assert len(sub.training_images) >= 1
            image = sub.training_images[0]
            assert image.shape == small_dataset.train_images[0].shape

    def test_describe_contains_threshold_and_members(self, small_dataset):
        result = DetailBasedSegmenter(frequency_threshold=10.0).segment(small_dataset)
        description = result.describe()
        assert description["num_sub_scenes"] == 1
        assert description["dedicated"] == []
        assert sorted(description["joint_members"]) == [0, 1]

    def test_works_with_image_space_detector(self, small_dataset):
        segmenter = DetailBasedSegmenter(detector=ConnectedComponentsDetector())
        result = segmenter.segment(small_dataset)
        assert len(result.sub_scenes) >= 1
        assert all(sub.max_frequency >= 0 for sub in result.sub_scenes)

    def test_empty_dataset_rejected(self, small_dataset):
        class EmptyDataset:
            train_views: list = []
            scene = small_dataset.scene

        with pytest.raises(ValueError):
            DetailBasedSegmenter().segment(EmptyDataset())

    def test_mean_enlargement_property(self, small_dataset):
        result = DetailBasedSegmenter().segment(small_dataset)
        for sub in result.dedicated:
            assert sub.mean_enlargement >= 1.0
            assert sub.num_views == small_dataset.num_train
