"""Tests of the runtime concurrency sanitizer (`repro.analysis.sanitize`).

Every deliberate finding is produced on a *private* :class:`Sanitizer`
instance, so nothing here pollutes the process-wide report when the
whole tier runs under ``REPRO_SANITIZE=1`` (the CI ``sanitize`` leg
fails on any global finding).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import warnings

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizedLock, Sanitizer


def kinds(sanitizer: Sanitizer) -> list:
    return [entry["kind"] for entry in sanitizer.findings]


class TestLockOrderCycle:
    def test_opposite_order_two_lock_shape_is_reported(self):
        # The canonical deadlock shape, run to completion: thread one
        # takes A then B, thread two takes B then A.  Events sequence the
        # threads so the deadly interleaving cannot actually fire — the
        # detector must flag the *order cycle*, not a lucky hang.
        sanitizer = Sanitizer(name="test")
        lock_a = sanitizer.make_lock("A")
        lock_b = sanitizer.make_lock("B")
        first_done = threading.Event()

        def forward():
            with lock_a:
                with lock_b:
                    pass
            first_done.set()

        def backward():
            first_done.wait(timeout=10)
            with lock_b:
                with lock_a:
                    pass

        threads = [threading.Thread(target=forward),
                   threading.Thread(target=backward)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)

        assert kinds(sanitizer) == ["lock-order-cycle"]
        finding = sanitizer.findings[0]
        assert finding["locks"] == ["A", "B"]
        assert "deadlock" in finding["detail"]

    def test_consistent_order_is_clean(self):
        sanitizer = Sanitizer(name="test")
        lock_a = sanitizer.make_lock("A")
        lock_b = sanitizer.make_lock("B")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert sanitizer.findings == []

    def test_three_lock_cycle_is_reported(self):
        # A -> B, B -> C, C -> A: no two-lock inversion, still a cycle.
        sanitizer = Sanitizer(name="test")
        locks = {name: sanitizer.make_lock(name) for name in "ABC"}
        for first, second in [("A", "B"), ("B", "C"), ("C", "A")]:
            with locks[first]:
                with locks[second]:
                    pass
        assert kinds(sanitizer) == ["lock-order-cycle"]
        assert sanitizer.findings[0]["locks"] == ["A", "B", "C"]

    def test_reentrant_acquisition_adds_no_self_edge(self):
        sanitizer = Sanitizer(name="test")
        rlock = sanitizer.make_rlock("R")
        with rlock:
            with rlock:
                pass
        assert sanitizer.findings == []
        assert sanitizer.report()["edges"] == 0


class TestMapBoundary:
    def test_entering_boundary_while_holding_lock_is_reported(self):
        sanitizer = Sanitizer(name="test")
        lock = sanitizer.make_lock("cache")
        with lock:
            with sanitizer.map_boundary("ThreadBackend.map:profile"):
                pass
        assert kinds(sanitizer) == ["lock-across-map"]
        assert "'cache'" in sanitizer.findings[0]["detail"]

    def test_pre_boundary_lock_held_at_inner_acquire_is_reported(self):
        sanitizer = Sanitizer(name="test")
        outer = sanitizer.make_lock("outer")
        inner = sanitizer.make_lock("inner")
        with outer:
            with sanitizer.map_boundary("map"):
                with inner:
                    pass
        assert "lock-across-map" in kinds(sanitizer)

    def test_locks_scoped_inside_the_boundary_are_clean(self):
        sanitizer = Sanitizer(name="test")
        inner = sanitizer.make_lock("inner")
        with sanitizer.map_boundary("map"):
            with inner:
                pass
        assert sanitizer.findings == []

    def test_lock_after_boundary_exit_is_clean(self):
        sanitizer = Sanitizer(name="test")
        lock = sanitizer.make_lock("later")
        with sanitizer.map_boundary("map"):
            pass
        with lock:
            pass
        assert sanitizer.findings == []


class TestGlobalStateWatch:
    def run_in_spans(self, sanitizer, body_one, body_two):
        """Run two bodies on two threads, both inside task spans, with the
        second thread's body sequenced after the first thread has entered
        its span (so two tasks are genuinely in flight)."""
        one_in_span = threading.Event()
        one_may_exit = threading.Event()
        errors = []

        def first():
            try:
                with sanitizer.task_span():
                    one_in_span.set()
                    body_one()
                    one_may_exit.wait(timeout=10)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        def second():
            try:
                one_in_span.wait(timeout=10)
                with sanitizer.task_span():
                    body_two()
                one_may_exit.set()
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)
            finally:
                one_may_exit.set()

        threads = [threading.Thread(target=first),
                   threading.Thread(target=second)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []

    def test_pr8_quality_model_race_shape_is_reported(self):
        # The PR 8 regression, reconstructed at runtime: two concurrent
        # fits probing convergence by flipping the process-wide warning
        # filters to "error" inside catch_warnings blocks.
        sanitizer = Sanitizer(name="test")

        def racy_fit():
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)

        with sanitizer.watch():
            self.run_in_spans(sanitizer, racy_fit, racy_fit)
        assert "global-state-mutation" in kinds(sanitizer)
        finding = next(entry for entry in sanitizer.findings
                       if entry["kind"] == "global-state-mutation")
        assert finding["mutator"] == "warnings.simplefilter"

    def test_fixed_quality_model_fit_runs_clean_concurrently(self):
        # The *fixed* production code: QualityModel.fit suppresses
        # OptimizeWarning with an idempotent "ignore" filter and reads
        # convergence from pcov finiteness.  Two concurrent fits under
        # the watchers must produce zero findings.
        from repro.core.config_space import ConfigurationSpace
        from repro.core.profiler import QualityModel

        space = ConfigurationSpace()
        configs = list(space.profiling_configs())
        qualities = np.array(
            [0.96 - 14.0 / ((c.granularity + 10.0) * (c.patch_size + 1.5))
             for c in configs]
        )
        sanitizer = Sanitizer(name="test")

        def fit():
            QualityModel.fit(configs, qualities)

        with sanitizer.watch():
            self.run_in_spans(sanitizer, fit, fit)
        assert sanitizer.findings == []

    def test_single_task_in_flight_is_clean(self):
        # One in-flight task owns the process; mutating global state is
        # only a race once a second task can observe the flip.
        sanitizer = Sanitizer(name="test")
        with sanitizer.watch():
            with sanitizer.task_span():
                with warnings.catch_warnings():
                    warnings.simplefilter("error", RuntimeWarning)
        assert sanitizer.findings == []

    def test_ignore_action_is_exempt_concurrently(self):
        sanitizer = Sanitizer(name="test")

        def quiet():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)

        with sanitizer.watch():
            self.run_in_spans(sanitizer, quiet, quiet)
        assert sanitizer.findings == []

    def test_seterr_with_two_in_flight_is_reported(self):
        sanitizer = Sanitizer(name="test")

        def flip():
            saved = np.seterr(all="ignore")
            np.seterr(**saved)

        with sanitizer.watch():
            self.run_in_spans(sanitizer, flip, flip)
        assert "global-state-mutation" in kinds(sanitizer)

    def test_watchers_restore_originals(self):
        original = warnings.simplefilter
        sanitizer = Sanitizer(name="test")
        with sanitizer.watch():
            assert warnings.simplefilter is not original
        assert warnings.simplefilter is original


class TestSeams:
    def test_seams_are_noops_when_uninstalled(self, monkeypatch):
        monkeypatch.setattr(sanitize, "_GLOBAL", None)
        assert not sanitize.enabled()
        assert isinstance(sanitize.make_lock("x"), type(threading.Lock()))
        assert sanitize.task_span() is sanitize._NULL_SPAN
        assert sanitize.map_boundary("m") is sanitize._NULL_SPAN
        assert sanitize.sanitize_report() == {"enabled": False, "findings": []}

    def test_seams_route_to_the_installed_sanitizer(self, monkeypatch):
        private = Sanitizer(name="routed")
        monkeypatch.setattr(sanitize, "_GLOBAL", private)
        lock = sanitize.make_lock("x")
        assert isinstance(lock, SanitizedLock)
        assert sanitize.sanitize_report()["name"] == "routed"

    def test_thread_backend_map_crosses_the_boundary_seam(self, monkeypatch):
        # Integration: holding a sanitized lock across a real
        # ThreadBackend.map is detected through the production seams.
        from repro.exec.backends import ThreadBackend

        private = Sanitizer(name="integration")
        monkeypatch.setattr(sanitize, "_GLOBAL", private)
        lock = sanitize.make_lock("dispatcher-cache")
        backend = ThreadBackend(workers=2)
        with lock:
            result = backend.map(lambda item: item * 2, [1, 2, 3])
        assert result == [2, 4, 6]
        assert "lock-across-map" in kinds(private)

    def test_thread_backend_map_without_held_locks_is_clean(self, monkeypatch):
        from repro.exec.backends import ThreadBackend

        private = Sanitizer(name="integration")
        monkeypatch.setattr(sanitize, "_GLOBAL", private)
        backend = ThreadBackend(workers=2)
        assert backend.map(lambda item: item + 1, [1, 2]) == [2, 3]
        assert private.findings == []

    def test_locked_lru_constructs_through_the_seam(self, monkeypatch):
        private = Sanitizer(name="integration")
        monkeypatch.setattr(sanitize, "_GLOBAL", private)
        from repro.utils.lru import LockedLRU

        cache = LockedLRU(max_entries=4)
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert private.report()["locks"] >= 1
        assert private.findings == []


class TestReport:
    def test_report_schema_and_dedup(self):
        sanitizer = Sanitizer(name="test")
        lock = sanitizer.make_lock("cache")
        for _ in range(3):  # identical findings deduplicate
            with lock:
                with sanitizer.map_boundary("map"):
                    pass
        report = sanitizer.report()
        assert report["enabled"] is True
        assert report["name"] == "test"
        assert report["locks"] == 1
        assert len(report["findings"]) == 1
        entry = report["findings"][0]
        assert set(entry) >= {"kind", "detail", "thread"}

    def test_reset_runtime_clears_in_flight(self):
        sanitizer = Sanitizer(name="test")
        span = sanitizer.task_span()
        span.__enter__()
        sanitizer.reset_runtime()
        # After a (simulated) fork the child starts with zero in-flight
        # tasks; a mutation with one fresh task must not flag.
        with sanitizer.watch():
            with sanitizer.task_span():
                warnings.filterwarnings("error", category=RuntimeWarning)
        warnings.resetwarnings()
        assert sanitizer.findings == []

    def test_atexit_report_is_written(self, tmp_path):
        # End to end in a subprocess: REPRO_SANITIZE=1 installs the global
        # sanitizer at import; REPRO_SANITIZE_REPORT collects the JSON.
        report_path = tmp_path / "sanitize.json"
        env = dict(os.environ)
        env.update({
            "REPRO_SANITIZE": "1",
            "REPRO_SANITIZE_REPORT": str(report_path),
            "PYTHONPATH": "src",
        })
        code = (
            "from repro.analysis import sanitize\n"
            "assert sanitize.enabled()\n"
            "lock = sanitize.make_lock('probe')\n"
            "with lock:\n"
            "    pass\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], env=env, check=True, timeout=120,
        )
        payload = json.loads(report_path.read_text())
        assert payload["enabled"] is True
        assert payload["findings"] == []
        assert payload["locks"] >= 1
