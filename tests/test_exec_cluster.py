"""Tests for the cluster backend (:mod:`repro.exec.cluster`).

Pins the sharded-evaluation contract the tentpole introduces: shard plans
are deterministic and cost-balanced, the worker-daemon protocol returns
ordered, bit-identical results for any worker count, a killed worker's
shard is retried on a replacement, store-aware cost hints discount
already-persisted artefacts, and the full staged pipeline produces
bit-identical :class:`~repro.core.pipeline.DeploymentReport` JSON under the
cluster backend with 1, 2 and 5 workers versus the serial reference.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import NeRFlexPipeline
from repro.device.models import DeviceProfile
from repro.exec import (
    BACKENDS,
    ArtifactStore,
    ClusterBackend,
    ClusterTaskError,
    DiskArtifactStore,
    SerialBackend,
    ShardPlanner,
    fork_available,
    resolve_backend,
    store_aware_costs,
)
from repro.exec.worker import SchedulerView, Shard
from repro.utils.timing import StageTimer

from tests._golden_driver import GOLDEN_DEVICE, golden_config, golden_dataset
from tests.test_artifact_persistence import make_profile

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork")


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


class TestShardPlanner:
    def test_covers_every_item_exactly_once(self):
        shards = ShardPlanner().plan(17, workers=4)
        covered = sorted(i for shard in shards for i in shard.item_indices)
        assert covered == list(range(17))

    def test_plan_is_deterministic(self):
        costs = [((i * 7919) % 13) + 0.5 for i in range(40)]
        first = ShardPlanner().plan(40, workers=3, costs=costs)
        second = ShardPlanner().plan(40, workers=3, costs=costs)
        assert first == second

    def test_cost_balancing_lpt(self):
        # One dominant item must not drag light items into its shard while
        # other shards idle: LPT puts the heavy item alone.
        costs = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        shards = ShardPlanner(shards_per_worker=1).plan(6, workers=3, costs=costs)
        heavy = [shard for shard in shards if 0 in shard.item_indices]
        assert len(heavy) == 1 and heavy[0].item_indices == (0,)
        # The light items spread over the remaining shards.
        assert max(len(shard.item_indices) for shard in shards) <= 4

    def test_oversharding_bounded_by_items_and_workers(self):
        planner = ShardPlanner(shards_per_worker=3)
        assert len(planner.plan(100, workers=4)) == 12
        assert len(planner.plan(2, workers=4)) == 2
        assert planner.plan(0, workers=4) == []

    def test_min_items_per_shard(self):
        shards = ShardPlanner(shards_per_worker=8, min_items_per_shard=5).plan(
            20, workers=8
        )
        assert len(shards) == 4
        assert all(len(shard.item_indices) == 5 for shard in shards)

    def test_cost_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ShardPlanner().plan(3, workers=2, costs=[1.0])


class TestStoreAwareCosts:
    def test_persisted_keys_are_discounted(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        hot_key = ("profile", "scene", "stored-object")
        assert store.put(hot_key, make_profile("stored-object"))
        keys = [hot_key, ("profile", "scene", "missing"), None]
        costs = store_aware_costs(keys, store, base_costs=[4.0, 4.0, 4.0])
        assert costs[0] == pytest.approx(0.2)  # 4.0 * default 0.05 discount
        assert costs[1] == 4.0 and costs[2] == 4.0

    def test_no_store_leaves_costs_untouched(self):
        assert store_aware_costs([("k",)], None, base_costs=[2.0]) == [2.0]

    def test_non_canonical_key_is_not_a_hit(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        assert store_aware_costs([("profile", object())], store) == [1.0]


# ---------------------------------------------------------------------------
# The cluster map
# ---------------------------------------------------------------------------


@needs_fork
class TestClusterMap:
    def test_registered_and_resolvable(self):
        assert "cluster" in BACKENDS
        backend = resolve_backend("cluster", workers=3)
        assert backend.name == "cluster" and backend.workers == 3

    def test_resolve_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cluster")
        assert resolve_backend(None).name == "cluster"

    def test_ordered_results_and_closure_inheritance(self):
        backend = ClusterBackend(workers=3)
        weights = np.arange(64, dtype=np.float64)  # closures never pickle
        items = list(range(64))
        assert backend.map(lambda x: float(weights[x] + x), items) == [
            float(2 * x) for x in items
        ]
        assert backend.stats.maps == 1
        assert backend.stats.workers_spawned == 3

    def test_single_item_falls_back_to_serial(self):
        backend = ClusterBackend(workers=4)
        state = {"touched": False}

        def task(x):
            state["touched"] = True
            return x

        assert backend.map(task, [7]) == [7]
        assert state["touched"]  # ran in this process
        assert backend.stats.serial_fallbacks == 1

    def test_side_effects_stay_in_workers(self):
        backend = ClusterBackend(workers=2)
        state = {"count": 0}

        def task(x):
            state["count"] += 1  # dies with the worker
            return x + 1

        assert backend.map(task, [1, 2, 3, 4]) == [2, 3, 4, 5]
        assert state["count"] == 0

    def test_worker_seconds_attributed_to_stage(self):
        backend = ClusterBackend(workers=2)
        timer = StageTimer()
        backend.map(
            lambda x: sum(range(4000)), list(range(8)), timer=timer, stage="shards"
        )
        assert timer.worker_as_dict()["shards"] > 0.0
        assert timer.as_dict() == {}  # wall-clock stays the caller's

    def test_task_exception_propagates(self):
        backend = ClusterBackend(workers=2)

        def boom(x):
            if x == 5:
                raise ValueError("shard task failed")
            return x

        with pytest.raises(ClusterTaskError, match="shard task failed"):
            backend.map(boom, list(range(8)))
        # The backend stays usable after a failed map.
        assert backend.map(lambda x: x, [1, 2, 3]) == [1, 2, 3]

    def test_shards_execute_concurrently(self):
        """Workers genuinely overlap: 6 x 0.3s sleeps finish well under 1.8s.

        Sleeps do not compete for a CPU, so this holds even on a one-core
        host — it pins the scheduler's concurrency, not the host's.
        """
        import time as time_module

        backend = ClusterBackend(workers=3, speculate=False)
        start = time_module.perf_counter()
        results = backend.map(
            lambda x: (time_module.sleep(0.3), x)[1], list(range(6))
        )
        elapsed = time_module.perf_counter() - start
        assert results == list(range(6))
        assert elapsed < 1.4  # serial would be ~1.8s

    def test_costs_accepted_and_results_unchanged(self):
        backend = ClusterBackend(workers=2)
        items = list(range(12))
        costs = [float((i % 4) + 1) for i in items]
        assert backend.map(lambda x: x * 3, items, costs=costs) == [
            x * 3 for x in items
        ]

    def test_store_hint_counts_cheap_items(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        hot_key = ("profile", "scene", "hot")
        store.put(hot_key, make_profile("hot"))
        backend = ClusterBackend(workers=2, store=store)
        keys = [hot_key, ("profile", "scene", "cold-a"), ("profile", "scene", "cold-b")]
        assert backend.map(lambda x: x, [10, 11, 12], cost_keys=keys) == [10, 11, 12]
        assert backend.stats.store_cheap_items == 1


@needs_fork
class TestClusterWorkerDeath:
    def test_killed_worker_shard_is_retried(self, tmp_path):
        sentinel = tmp_path / "killed-once"

        def task(x):
            if x == "kill" and not sentinel.exists():
                sentinel.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return ("ok", x)

        backend = ClusterBackend(workers=2)
        items = [0, 1, "kill", 3, 4, 5, 6, 7]
        outcome = {}

        def run():
            outcome["results"] = backend.map(task, items)

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "cluster map hung after a worker kill"
        assert outcome["results"] == [("ok", item) for item in items]
        assert backend.stats.worker_deaths >= 1
        # A replacement worker was forked beyond the initial set.
        assert backend.stats.workers_spawned >= 3

    def test_chronically_dying_workers_raise(self):
        def die(x):
            os.kill(os.getpid(), signal.SIGKILL)

        backend = ClusterBackend(workers=2, max_respawns=2, speculate=False)
        with pytest.raises(RuntimeError, match="respawn"):
            backend.map(die, list(range(6)))


# ---------------------------------------------------------------------------
# Shard-count invariance of the staged pipeline
# ---------------------------------------------------------------------------


def _report_record(pipeline_run) -> str:
    """The timing-free JSON record of one pipeline run (bit-comparable)."""
    preparation, multi_model, report = pipeline_run
    record = {
        "assignments": {
            name: config.as_tuple()
            for name, config in sorted(preparation.selection.assignments.items())
        },
        "profile_state": [
            profile.state_tuple() for profile in preparation.profiles
        ],
        "report": {
            "size_mb": multi_model.size_mb(),
            "per_object_size_mb": dict(sorted(report.per_object_size_mb.items())),
            "loaded": report.loaded,
            "ssim": report.ssim,
            "psnr": report.psnr,
            "lpips": report.lpips,
            "per_object_ssim": dict(sorted(report.per_object_ssim.items())),
            "average_fps": report.average_fps,
            "num_submodels": report.num_submodels,
        },
    }
    return json.dumps(record, sort_keys=True, default=list)


def _run_golden_pipeline(backend):
    config = golden_config()
    config.backend = None
    pipeline = NeRFlexPipeline(GOLDEN_DEVICE, config, backend=backend)
    return pipeline.run(golden_dataset())


@needs_fork
class TestShardCountInvariance:
    @pytest.fixture(scope="class")
    def serial_record(self):
        return _report_record(_run_golden_pipeline(SerialBackend()))

    @pytest.mark.parametrize("transport", ["fork", "tcp"])
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_cluster_matches_serial_bit_identically(
        self, serial_record, workers, transport
    ):
        backend = ClusterBackend(workers=workers, transport=transport)
        try:
            record = _report_record(_run_golden_pipeline(backend))
        finally:
            backend.shutdown()
        assert record == serial_record

    def test_cluster_with_store_matches_serial(self, serial_record, tmp_path, monkeypatch):
        # Store-aware path: the shared on-disk store is consulted (and
        # populated) by the workers; a second run serves profiles from it.
        # Hermetic against a developer's REPRO_ARTIFACT_DIR: the backend
        # must pick up the *pipeline's* store, not an env-configured one.
        monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
        store = ArtifactStore(
            disk=DiskArtifactStore(str(tmp_path / "cluster-store"))
        )
        backend = ClusterBackend(workers=2)
        config = golden_config()
        config.backend = None
        first = NeRFlexPipeline(
            GOLDEN_DEVICE, config, backend=backend, artifacts=store
        )
        assert backend.store is store.disk  # pipeline wired the shared tier
        assert _report_record(first.run(golden_dataset())) == serial_record
        assert store.disk.stats.puts > 0

        warm_store = ArtifactStore(
            disk=DiskArtifactStore(str(tmp_path / "cluster-store"))
        )
        warm_backend = ClusterBackend(workers=2)
        second = NeRFlexPipeline(
            GOLDEN_DEVICE, config, backend=warm_backend, artifacts=warm_store
        )
        assert _report_record(second.run(golden_dataset())) == serial_record
        assert warm_store.recompute_by_kind().get("profile", 0) == 0


# ---------------------------------------------------------------------------
# Steal policy
# ---------------------------------------------------------------------------


def _steal_view(durations, in_flight_index=6, runner=1, age=1.5):
    """A :class:`SchedulerView` with one singly-dispatched in-flight shard
    whose dispatch happened ``age`` seconds ago."""
    now = time.perf_counter()
    shard = Shard(index=in_flight_index, item_indices=(in_flight_index,), cost=1.0)
    return SchedulerView(
        shard_by_index={in_flight_index: shard},
        completed={},
        in_flight={in_flight_index: {runner}},
        dispatch_started={(in_flight_index, runner): now - age},
        completed_durations=list(durations),
    )


class TestStealPolicy:
    """The straggler-duplication threshold (satellite fix).

    The old policy thresholded on the *mean* of every completed duration,
    so a store-warm run full of near-zero shard times dragged the baseline
    down and duplicated every cold shard.  The fixed policy uses the
    median of completions *excluding* store-hit shards."""

    WARM_AND_COLD = [(i, 0.001) for i in range(5)] + [(5, 1.0)]
    WARM_SHARDS = frozenset(range(5))

    def test_warm_store_run_does_not_duplicate_cold_shards(self):
        # Five warm completions (~1ms each) plus one genuine 1.0s cold
        # completion; the in-flight cold shard has been running 1.5s.
        # The old mean-of-everything baseline (~0.17s, threshold ~0.33s)
        # would have stolen it; the median of non-warm completions (1.0s,
        # threshold 2.0s) correctly leaves it alone.
        view = _steal_view(self.WARM_AND_COLD, age=1.5)
        assert (
            ClusterBackend._steal_candidate(
                view, worker_id=2, cheap_shards=self.WARM_SHARDS
            )
            is None
        )

    def test_warm_exclusion_is_load_bearing(self):
        # Same view without the warm-shard exclusion: the median collapses
        # to ~1ms and the shard is (wrongly) stolen — pinning that the
        # exclusion, not the median alone, is what fixes the bug.
        view = _steal_view(self.WARM_AND_COLD, age=1.5)
        assert ClusterBackend._steal_candidate(view, worker_id=2) is not None

    def test_genuine_straggler_is_still_stolen(self):
        # Age 2.5s >= 2 x median(1.0s): a real straggler gets duplicated.
        view = _steal_view([(0, 1.0), (1, 0.9), (2, 1.1)], age=2.5)
        candidate = ClusterBackend._steal_candidate(view, worker_id=2)
        assert candidate is not None and candidate.index == 6

    def test_no_baseline_without_cold_completions(self):
        # Every completion so far was a store hit: there is no honest
        # duration baseline, so nothing is stolen no matter the age.
        view = _steal_view([(0, 0.001), (1, 0.002)], age=100.0)
        assert (
            ClusterBackend._steal_candidate(
                view, worker_id=2, cheap_shards=frozenset({0, 1})
            )
            is None
        )

    def test_model_prediction_raises_the_floor(self):
        # Median 0.5s -> threshold 1.0s, so age 1.5s would steal; a cost
        # model predicting the shard itself needs 1.0s lifts the floor to
        # 2.0s and suppresses the duplicate.
        durations = [(0, 0.5), (1, 0.5)]
        view = _steal_view(durations, age=1.5)
        assert (
            ClusterBackend._steal_candidate(
                view, worker_id=2, predicted_seconds={6: 1.0}
            )
            is None
        )
        assert (
            ClusterBackend._steal_candidate(
                view, worker_id=2, predicted_seconds={6: 0.1}
            )
            is not None
        )

    def test_never_steals_own_shard(self):
        view = _steal_view([(0, 0.1)], runner=2, age=10.0)
        assert ClusterBackend._steal_candidate(view, worker_id=2) is None

    def test_never_duplicates_twice(self):
        view = _steal_view([(0, 0.1)], age=10.0)
        view.in_flight[6] = {1, 3}  # already running on two workers
        assert ClusterBackend._steal_candidate(view, worker_id=2) is None


@needs_fork
class TestAcceptedDurationsFeedback:
    def test_map_records_per_shard_durations(self):
        # The cost-model feedback channel: after a map, the backend holds
        # the (shard index, seconds) pairs of every first-accepted shard.
        backend = ClusterBackend(workers=2)
        backend.map(lambda x: x * x, list(range(8)))
        assert backend.last_accepted_durations
        indices = set()
        for shard_index, seconds in backend.last_accepted_durations:
            assert isinstance(shard_index, int) and seconds >= 0.0
            indices.add(shard_index)
        # Exactly one duration per planned shard, shard indices contiguous.
        assert len(backend.last_accepted_durations) == len(indices)
        assert indices == set(range(len(indices)))
