"""Tests for the measured cost model (:mod:`repro.exec.costmodel`).

Pins fit determinism (same trajectories -> same coefficients -> same shard
plan), the static-hint fallback for unfitted stages, trajectory ingestion
from ``BENCH_*.json`` payloads, and — the acceptance criterion — that a
fitted model's predictions rank held-out workload rows better than the
static hints they replace.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import (
    CostSample,
    FEATURE_NAMES,
    ShardPlanner,
    StageCostModel,
    default_cost_model,
    fit_from_bench_dir,
    load_bench_samples,
    rank_concordance,
)


def _sample(stage, seconds, **features):
    return CostSample.make(stage, features, seconds)


def _linear_samples(stage="bake", count=12):
    """Synthetic trajectory rows from a known plane:
    ``seconds = 0.5 + 2.0*objects + 0.001*g_cubed``."""
    rows = []
    for i in range(count):
        objects = float((i % 4) + 1)
        g = float(8 + 2 * (i % 5))
        rows.append(
            _sample(
                stage,
                0.5 + 2.0 * objects + 0.001 * g**3,
                objects=objects,
                g_cubed=g**3,
            )
        )
    return rows


class TestCostSample:
    def test_make_orders_features_canonically(self):
        sample = _sample("bake", 1.5, rays=8.0, objects=2.0)
        assert sample.features == (2.0, 0.0, 0.0, 8.0)
        assert sample.features[FEATURE_NAMES.index("rays")] == 8.0

    def test_as_dict_renders_only_nonzero_features(self):
        sample = _sample("bake", 1.5, objects=2.0)
        assert sample.as_dict() == {
            "stage": "bake",
            "features": {"objects": 2.0},
            "seconds": 1.5,
        }


class TestStageCostModel:
    def test_fit_recovers_linear_plane(self):
        model = StageCostModel().fit(_linear_samples())
        predicted = model.predict("bake", {"objects": 3.0, "g_cubed": 1000.0})
        assert predicted == pytest.approx(0.5 + 6.0 + 1.0, rel=1e-3)

    def test_fit_is_deterministic(self):
        first = StageCostModel().fit(_linear_samples())
        second = StageCostModel().fit(_linear_samples())
        assert first.state_tuple() == second.state_tuple()
        assert first.stages == ["bake"]

    def test_unfitted_stage_predicts_fallback(self):
        model = StageCostModel().fit(_linear_samples("bake"))
        assert model.is_fitted("bake")
        assert not model.is_fitted("profiler")
        assert model.predict("profiler", {"objects": 9.0}, fallback=7.25) == 7.25

    def test_prediction_floored_positive(self):
        # A plane fitted on large workloads can dip negative at the origin;
        # LPT planning needs a positive cost.
        model = StageCostModel().fit(
            [_sample("bake", 10.0, g_cubed=10000.0), _sample("bake", 20.0, g_cubed=20000.0)]
        )
        assert model.predict("bake", {"g_cubed": 0.0}) > 0.0

    def test_predict_costs_uses_per_row_fallbacks(self):
        model = StageCostModel()
        costs = model.predict_costs("bake", [{}, {}], fallbacks=[3.0, 4.0])
        assert costs == [3.0, 4.0]

    def test_same_fit_produces_same_shard_plan(self):
        rows = [{"objects": float(i % 3 + 1), "g_cubed": float(i) * 100.0} for i in range(20)]
        plans = []
        for _ in range(2):
            model = StageCostModel().fit(_linear_samples())
            costs = model.predict_costs("bake", rows)
            plans.append(ShardPlanner().plan(len(rows), workers=3, costs=costs))
        assert plans[0] == plans[1]


class TestRankConcordance:
    def test_perfect_ordering_scores_one(self):
        assert rank_concordance([1.0, 2.0, 3.0], [10.0, 20.0, 30.0]) == 1.0

    def test_inverted_ordering_scores_zero(self):
        assert rank_concordance([3.0, 2.0, 1.0], [10.0, 20.0, 30.0]) == 0.0

    def test_no_strict_pairs_scores_one(self):
        assert rank_concordance([1.0, 2.0], [5.0, 5.0]) == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            rank_concordance([1.0], [1.0, 2.0])

    def test_fitted_model_beats_static_hints_on_held_out_rows(self):
        """The acceptance criterion: on held-out trajectory rows whose cost
        is dominated by a constant factor the static ``g^3`` proxy cannot
        see, the fitted model's predictions rank the rows strictly better
        than the hints."""
        # Ground truth: per-object constant cost dominates; g^3 is a minor
        # term.  The static hint is the g^3 proxy the planner used before.
        def true_seconds(objects, g):
            return 12.0 * objects + 0.0005 * g**3

        train = [
            _sample(
                "profiler",
                true_seconds(objects, g),
                objects=float(objects),
                g_cubed=float(g) ** 3,
            )
            for objects in (1, 2, 3, 4)
            for g in (8, 12, 16)
        ]
        model = StageCostModel().fit(train)

        # Held out: object counts and granularities the fit never saw,
        # arranged so the g^3 hint inverts the true ordering.
        held_out = [(5, 9), (1, 15), (3, 11), (2, 14)]
        actual = [true_seconds(objects, g) for objects, g in held_out]
        hints = [float(g) ** 3 for _, g in held_out]
        fitted = [
            model.predict("profiler", {"objects": float(objects), "g_cubed": float(g) ** 3})
            for objects, g in held_out
        ]
        assert rank_concordance(fitted, actual) == 1.0
        assert rank_concordance(fitted, actual) > rank_concordance(hints, actual)


class TestTrajectoryIngestion:
    def _payload(self, rows):
        return {"metrics": {"pipeline": {"stage_samples": rows}}}

    def test_load_bench_samples_reads_stage_samples(self):
        payload = self._payload(
            [{"stage": "bake", "features": {"g_cubed": 512.0}, "seconds": 2.0}]
        )
        samples = load_bench_samples(payload)
        assert samples == [_sample("bake", 2.0, g_cubed=512.0)]

    def test_malformed_rows_are_skipped(self):
        payload = self._payload(
            [
                {"stage": "bake", "seconds": 2.0},  # no features: fine
                {"stage": "bake"},  # no seconds: skipped
                {"seconds": 1.0},  # no stage: skipped
                "not-a-row",  # skipped
                {"stage": "bake", "features": {"g_cubed": "NaN?"}, "seconds": "x"},
            ]
        )
        assert len(load_bench_samples(payload)) == 1

    def test_payload_without_channel_contributes_nothing(self):
        assert load_bench_samples({}) == []
        assert load_bench_samples({"metrics": {"kernels": {}}}) == []

    def test_fit_from_bench_dir(self, tmp_path):
        for name, rows in (
            ("BENCH_pipeline.json", [s.as_dict() for s in _linear_samples(count=6)]),
            ("BENCH_later.json", [s.as_dict() for s in _linear_samples(count=6)]),
        ):
            (tmp_path / name).write_text(
                json.dumps({"metrics": {"pipeline": {"stage_samples": rows}}})
            )
        (tmp_path / "BENCH_corrupt.json").write_text("{not json")
        (tmp_path / "unrelated.txt").write_text("ignored")
        model = fit_from_bench_dir(str(tmp_path))
        assert model.is_fitted("bake")
        # Deterministic: a second read fits identical coefficients.
        assert model.state_tuple() == fit_from_bench_dir(str(tmp_path)).state_tuple()

    def test_fit_from_missing_dir_is_unfitted(self, tmp_path):
        model = fit_from_bench_dir(str(tmp_path / "absent"))
        assert model.stages == []

    def test_default_cost_model_consults_env(self, tmp_path, monkeypatch):
        rows = [s.as_dict() for s in _linear_samples(count=6)]
        (tmp_path / "BENCH_pipeline.json").write_text(
            json.dumps({"metrics": {"pipeline": {"stage_samples": rows}}})
        )
        monkeypatch.setenv("REPRO_COST_DIR", str(tmp_path))
        assert default_cost_model().is_fitted("bake")
        monkeypatch.delenv("REPRO_COST_DIR")
        assert default_cost_model().stages == []
