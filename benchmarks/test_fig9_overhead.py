"""Figure 9: execution-time breakdown of NeRFlex's preparation stage.

The paper reports the one-shot overhead (excluding NeRF training) of
processing twenty training images: segmentation ~3.8 s (64%), performance
profiler ~0.28 s (4.7%), DP solver ~1.87 s (31%), about 5.9 s in total.

In this reproduction the segmentation module uses an oracle detector (no
neural network inference), so its share is far smaller, while the profiler —
which actually bakes and renders its sample configurations — dominates.  The
bench reports the measured split so the difference is explicit.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.device.models import IPHONE_13
from repro.scenes.dataset import generate_dataset
from repro.scenes.library import make_simulated_scene

NUM_TRAIN_IMAGES = 20  # matches the paper's overhead experiment


def test_fig9_overhead_breakdown(harness, benchmark):
    scene = make_simulated_scene(4, seed=0)
    dataset = generate_dataset(
        scene, num_train=NUM_TRAIN_IMAGES, num_test=1, resolution=96, name="overhead"
    )

    def prepare():
        pipeline = NeRFlexPipeline(IPHONE_13, PipelineConfig(profile_resolution=128))
        return pipeline.prepare(dataset)

    preparation = benchmark.pedantic(prepare, rounds=1, iterations=1)
    overhead = preparation.overhead_seconds
    total = sum(overhead.values())
    rows = [
        [stage, round(seconds, 3), f"{100.0 * seconds / total:.1f}%"]
        for stage, seconds in overhead.items()
    ]
    rows.append(["total", round(total, 3), "100%"])
    print_table(
        f"Fig. 9: preparation overhead for {NUM_TRAIN_IMAGES} training images "
        "(paper: segmentation 3.8 s, profiler 0.28 s, solver 1.87 s)",
        ["stage", "seconds", "share"],
        rows,
    )

    assert set(overhead) == {"segmentation", "profiler", "solver"}
    assert all(value > 0.0 for value in overhead.values())
    # The solver stays a small fraction of the overall preparation time, and
    # the whole one-shot overhead remains far below any NeRF training run.
    assert overhead["solver"] < 0.5 * total
    assert total < 600.0
