"""Figure 3 + profiler error analysis: white-box profiling model validation.

Reproduces the four sub-plots of Fig. 3 — rendering quality and baked data
size versus the mesh-granularity knob (at a fixed patch size) and versus the
patch-size knob (at a fixed granularity), each compared against the fitted
white-box model — plus the paper's error analysis over held-out
configuration pairs (paper: mean SSIM error 0.0065, mean size error 3.34 MB).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.baking import bake_field, render_baked
from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.profiler import ProfileFitter, profile_error_analysis
from repro.metrics import ssim
from repro.scenes.cameras import orbit_cameras
from repro.scenes.library import make_single_object_scene
from repro.scenes.raytrace import render_scene

#: Configuration space swept for the figure (the paper sweeps g in [20, 120]
#: and p in [5, 41] at ~800 px; the patch range is rescaled to this
#: reproduction's render resolution).
SPACE = ConfigurationSpace(granularities=(16, 24, 32, 48, 64, 96), patch_sizes=(1, 2, 3, 4, 6))
FIXED_PATCH = 2
FIXED_GRANULARITY = 32
PROFILE_RESOLUTION = 160


@pytest.fixture(scope="module")
def profiled_object():
    """Measurements, fitted profile and sweep data for one reference object."""
    scene = make_single_object_scene("lego")
    camera = orbit_cameras(
        scene.center,
        radius=1.25 * scene.extent,
        count=1,
        elevation_deg=30.0,
        width=PROFILE_RESOLUTION,
        height=PROFILE_RESOLUTION,
    )[0]
    reference = render_scene(scene, camera)
    cache: dict = {}
    geometry_cache: dict = {}  # voxelisation depends only on g, not p

    def measure(config: Configuration):
        key = config.as_tuple()
        if key not in cache:
            baked = bake_field(
                scene,
                config.granularity,
                config.patch_size,
                name="lego",
                geometry=geometry_cache.get(config.granularity),
            )
            geometry_cache.setdefault(config.granularity, (baked.grid, baked.faces))
            rendered = render_baked(baked, camera)
            cache[key] = (ssim(reference.rgb, rendered.rgb), baked.size_mb())
        return cache[key]

    profile = ProfileFitter(SPACE).fit("lego", measure)
    return {"measure": measure, "profile": profile}


def test_fig3_quality_and_size_curves(profiled_object, benchmark):
    measure = profiled_object["measure"]
    profile = profiled_object["profile"]

    # (a)/(b): sweep granularity at the fixed patch size.
    g_rows = []
    g_quality, g_size = [], []
    for g in SPACE.granularities:
        config = Configuration(g, FIXED_PATCH)
        quality, size = measure(config)
        g_quality.append(quality)
        g_size.append(size)
        g_rows.append(
            [
                g,
                round(quality, 4),
                round(profile.predict_quality(config), 4),
                round(size, 1),
                round(profile.predict_size(config), 1),
            ]
        )
    print_table(
        f"Fig. 3(a,b): sweep over mesh granularity g (patch size p={FIXED_PATCH})",
        ["g", "SSIM measured", "SSIM fitted", "size MB measured", "size MB fitted"],
        g_rows,
    )

    # (c)/(d): sweep patch size at the fixed granularity.
    p_rows = []
    p_quality, p_size = [], []
    for p in SPACE.patch_sizes:
        config = Configuration(FIXED_GRANULARITY, p)
        quality, size = measure(config)
        p_quality.append(quality)
        p_size.append(size)
        p_rows.append(
            [
                p,
                round(quality, 4),
                round(profile.predict_quality(config), 4),
                round(size, 2),
                round(profile.predict_size(config), 2),
            ]
        )
    print_table(
        f"Fig. 3(c,d): sweep over patch size p (mesh granularity g={FIXED_GRANULARITY})",
        ["p", "SSIM measured", "SSIM fitted", "size MB measured", "size MB fitted"],
        p_rows,
    )

    # Shape assertions: quality saturates upward in g, size grows in both knobs.
    assert g_quality[-1] > g_quality[0] + 0.05
    assert g_quality[-1] - g_quality[-2] < g_quality[1] - g_quality[0] + 0.05
    assert all(b > a for a, b in zip(g_size, g_size[1:]))
    assert p_quality[-1] >= p_quality[0] - 0.01
    assert all(b > a for a, b in zip(p_size, p_size[1:]))

    # Benchmark the profiler fit itself (the lightweight step the paper times).
    fitter = ProfileFitter(SPACE)
    benchmark(lambda: fitter.fit("lego", measure))


def test_fig3_error_analysis(profiled_object, benchmark):
    """Prediction error over held-out configurations (paper Table in §III-B)."""
    measure = profiled_object["measure"]
    profile = profiled_object["profile"]
    held_out = [
        Configuration(g, p)
        for g in (24, 48, 96)
        for p in (1, 3, 6)
        if Configuration(g, p) not in profile.measurements
    ]
    analysis = benchmark.pedantic(
        lambda: profile_error_analysis(profile, measure, held_out), rounds=1, iterations=1
    )
    print_table(
        "Profiler error analysis (paper: SSIM err 0.0065 +/- 0.0088, size err 3.34 +/- 2.73 MB)",
        ["held-out configs", "SSIM mean err", "SSIM std", "size mean err (MB)", "size std"],
        [
            [
                analysis["num_configs"],
                round(analysis["quality_mean_error"], 4),
                round(analysis["quality_std_error"], 4),
                round(analysis["size_mean_error"], 2),
                round(analysis["size_std_error"], 2),
            ]
        ],
    )
    assert analysis["quality_mean_error"] < 0.05
    assert analysis["size_mean_error"] < 8.0
