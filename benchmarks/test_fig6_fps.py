"""Figure 6: real-time FPS traces on the two devices (Scene 3).

The paper rotates Scene 3 for 2000 frames.  Expected shape: NeRFlex averages
roughly 35 FPS on the iPhone and 25 FPS on the Pixel after an initial
loading phase with heavy fluctuation; the single-NeRF baseline cannot load
at all on the iPhone (0 FPS) and runs at roughly half NeRFlex's rate on the
Pixel.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.device.render_sim import RenderSimulator
from repro.device.models import IPHONE_13

SCENE = "scene3"
NUM_FRAMES = 2000


def test_fig6_fps_traces(harness, benchmark):
    nerflex_iphone = harness.nerflex_report(SCENE, "iPhone 13")
    nerflex_pixel = harness.nerflex_report(SCENE, "Pixel 4")
    single_iphone = harness.baked_report("single", SCENE, "iPhone 13")
    single_pixel = harness.baked_report("single", SCENE, "Pixel 4")

    rows = []
    for label, report in [
        ("NeRFlex / iPhone 13", nerflex_iphone),
        ("Single / iPhone 13", single_iphone),
        ("NeRFlex / Pixel 4", nerflex_pixel),
        ("Single / Pixel 4", single_pixel),
    ]:
        trace = report.fps_trace
        rows.append(
            [
                label,
                round(report.size_mb, 1),
                "failed" if trace.failed else "ok",
                round(trace.average, 1),
                round(trace.steady_state_average(), 1),
                round(trace.stutter_rate(), 3),
            ]
        )
    print_table(
        f"Fig. 6: FPS over {NUM_FRAMES} frames (Scene 3)",
        ["deployment", "size MB", "load", "avg FPS", "steady FPS", "stutter rate"],
        rows,
    )

    # Shape assertions.
    assert single_iphone.fps_trace.failed, "Single NeRF must fail to load on the iPhone"
    assert not nerflex_iphone.fps_trace.failed
    assert nerflex_iphone.average_fps >= 25.0
    assert nerflex_pixel.average_fps >= 18.0
    assert not single_pixel.fps_trace.failed
    assert nerflex_pixel.average_fps > 1.8 * single_pixel.average_fps
    # Loading phase is visibly slower than steady state.
    trace = nerflex_iphone.fps_trace
    assert trace.fps[:50].mean() < 0.8 * trace.steady_state_average()

    # Benchmark the FPS simulation itself.
    simulator = RenderSimulator(device=IPHONE_13, seed=0)
    benchmark(lambda: simulator.simulate(nerflex_iphone.size_mb, num_submodels=5, num_frames=NUM_FRAMES))
