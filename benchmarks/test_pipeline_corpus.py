"""Corpus-level pipeline benchmark: sequential vs stage-DAG scheduling.

Runs a small corpus of independent scenes through
:func:`repro.core.pipeline.run_corpus` twice — once sequentially and once
under the stage-DAG scheduler — asserts the two produce bit-identical
deployment records, and publishes the wall clocks plus per-stage
``CostSample`` rows to the session's ``BENCH_<suite>.json`` trajectory.
Those ``stage_samples`` rows are the measured trajectories the cost model
(:mod:`repro.exec.costmodel`) fits from on later runs.

The >= 1.3x speedup acceptance bar only holds where stages can genuinely
overlap, so it is asserted on hosts with at least four CPU cores (the CI
runner) and recorded — not enforced — elsewhere.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.config_space import ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig, run_corpus
from repro.device.models import DeviceProfile
from repro.exec import CostSample
from repro.scenes.dataset import generate_dataset
from repro.scenes.objects import make_cube, make_sphere
from repro.scenes.scene import PlacedObject, Scene

CORPUS_DEVICE = DeviceProfile(
    name="CorpusPhone",
    memory_budget_mb=120.0,
    hard_memory_limit_mb=160.0,
    compute_score=6.0,
)

#: Scene specs: (object maker, texture frequency, x offset) per object.
CORPUS_SCENES = {
    "bench-pair": [(make_sphere, 2.0, -0.55), (make_cube, 8.0, 0.55)],
    "bench-solo": [(make_sphere, 4.0, 0.0)],
    "bench-trio": [
        (make_cube, 6.0, -0.8),
        (make_sphere, 3.0, 0.0),
        (make_cube, 9.0, 0.8),
    ],
}

#: DAG worker count: enough to overlap the three scenes' stages, bounded
#: by the host so a small runner is not oversubscribed.
DAG_WORKERS = max(2, min(4, os.cpu_count() or 1))


def corpus_config() -> PipelineConfig:
    """A small, serial-backend pipeline configuration.

    The inner backends stay serial deliberately: the DAG's worker threads
    are the only concurrency, so no stage forks while the scheduler holds
    threads (the fork-while-threaded hazard), and the measured speedup is
    attributable to stage overlap alone.
    """
    return PipelineConfig(
        config_space=ConfigurationSpace(granularities=(8, 12, 16), patch_sizes=(1, 2)),
        profile_resolution=48,
        object_eval_resolution=48,
        num_eval_views=1,
        num_fps_frames=64,
        backend="serial",
    )


def corpus_dataset(name: str):
    placed = [
        PlacedObject(
            obj=maker(frequency=frequency),
            translation=np.array([x, 0.0, 0.0]),
            instance_id=index,
            instance_name=f"obj{index}",
        )
        for index, (maker, frequency, x) in enumerate(CORPUS_SCENES[name])
    ]
    return generate_dataset(
        Scene(placed), num_train=4, num_test=1, resolution=48, name=name
    )


def corpus_jobs() -> list:
    """Fresh ``(pipeline, dataset)`` jobs — one pipeline instance each."""
    return [
        (NeRFlexPipeline(CORPUS_DEVICE, config=corpus_config()), corpus_dataset(name))
        for name in sorted(CORPUS_SCENES)
    ]


def run_record(pipeline_run) -> str:
    """The timing-free JSON record of one run (bit-comparable)."""
    preparation, multi_model, report = pipeline_run
    record = {
        "assignments": {
            name: config.as_tuple()
            for name, config in sorted(preparation.selection.assignments.items())
        },
        "profile_state": [
            profile.state_tuple() for profile in preparation.profiles
        ],
        "report": {
            "size_mb": multi_model.size_mb(),
            "loaded": report.loaded,
            "ssim": report.ssim,
            "psnr": report.psnr,
            "lpips": report.lpips,
            "per_object_ssim": dict(sorted(report.per_object_ssim.items())),
            "average_fps": report.average_fps,
            "num_submodels": report.num_submodels,
            "transport": report.transport_name,
        },
    }
    return json.dumps(record, sort_keys=True, default=list)


def stage_sample_rows(jobs, runs) -> list:
    """Per-stage ``CostSample`` rows from the sequential run's timers."""
    rows = []
    for (pipeline, dataset), (_, _, report) in zip(jobs, runs):
        features = pipeline._stage_features(dataset)
        for stage, seconds in sorted(report.stage_seconds.items()):
            rows.append(CostSample.make(stage, features, seconds).as_dict())
    return rows


def test_corpus_dag_matches_sequential_and_overlaps(bench_metrics):
    sequential_jobs = corpus_jobs()
    started = time.perf_counter()
    sequential_runs = run_corpus(sequential_jobs, workers=0)
    sequential_seconds = time.perf_counter() - started

    dag_jobs = corpus_jobs()
    started = time.perf_counter()
    dag_runs = run_corpus(dag_jobs, workers=DAG_WORKERS)
    dag_seconds = time.perf_counter() - started

    # Bit-identity first: overlap is worthless if it changes the outputs.
    sequential_records = [run_record(run) for run in sequential_runs]
    dag_records = [run_record(run) for run in dag_runs]
    assert dag_records == sequential_records

    speedup = sequential_seconds / max(dag_seconds, 1e-9)
    bench_metrics["pipeline"] = {
        "scenes": sorted(CORPUS_SCENES),
        "workers": DAG_WORKERS,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": round(sequential_seconds, 3),
        "dag_seconds": round(dag_seconds, 3),
        "speedup": round(speedup, 3),
        "stage_samples": stage_sample_rows(sequential_jobs, sequential_runs),
    }
    print(
        f"\n[pipeline corpus] sequential {sequential_seconds:.2f}s, "
        f"dag({DAG_WORKERS}) {dag_seconds:.2f}s, speedup {speedup:.2f}x"
    )

    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.3, (
            f"stage-DAG corpus run only {speedup:.2f}x faster than "
            f"sequential ({dag_seconds:.2f}s vs {sequential_seconds:.2f}s) "
            f"with {DAG_WORKERS} workers on {os.cpu_count()} cores"
        )


def test_stage_samples_round_trip_into_cost_model(bench_metrics):
    """The published trajectory rows must be ingestible by the cost model
    and rank the corpus scenes consistently with their measured times."""
    from repro.exec import StageCostModel, load_bench_samples

    pipeline_metrics = bench_metrics.get("pipeline")
    assert pipeline_metrics, "corpus benchmark must run first in this session"
    payload = {"metrics": {"pipeline": pipeline_metrics}}
    samples = load_bench_samples(payload)
    assert samples, "stage_samples rows did not survive the payload round trip"
    model = StageCostModel().fit(samples)
    assert set(model.stages) == {s.stage for s in samples}
    for sample in samples:
        features = dict(zip(("objects", "candidates", "g_cubed", "rays"), sample.features))
        assert model.predict(sample.stage, features) > 0.0
