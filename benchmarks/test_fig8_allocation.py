"""Figure 8: per-object quality and per-object resource allocation (Scene 4).

(a) Per-object SSIM under each configuration selector on both devices, with
objects ordered by ascending 3D geometric complexity
(hotdog, ficus, chair, ship, lego);
(b) the per-object data-size allocation chosen by each selector on the
iPhone.

Expected shape: the DP selector allocates noticeably more bytes to the
geometrically complex objects (ship, lego) than the Fairness selector does,
and converts that into higher per-object quality on those objects while
staying comparable on the simple ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import SELECTORS, print_table

SCENE = "scene4"
OBJECT_ORDER = ("hotdog", "ficus", "chair", "ship", "lego")  # ascending complexity


def test_fig8a_per_object_quality(harness, benchmark):
    rows = []
    reports = {}
    for device_name in ("iPhone 13", "Pixel 4"):
        for selector_name in SELECTORS:
            report = harness.nerflex_report(SCENE, device_name, selector_name)
            reports[(device_name, selector_name)] = report
            rows.append(
                [device_name, selector_name]
                + [round(report.per_object_ssim.get(obj, float("nan")), 4) for obj in OBJECT_ORDER]
            )
    print_table(
        "Fig. 8(a): per-object SSIM by selector (objects in ascending geometric complexity)",
        ["device", "selector", *OBJECT_ORDER],
        rows,
    )

    for device_name in ("iPhone 13", "Pixel 4"):
        ours = reports[(device_name, "Ours (DP)")].per_object_ssim
        fairness = reports[(device_name, "Fairness")].per_object_ssim
        complex_gain = np.mean([ours[o] - fairness[o] for o in ("ship", "lego")])
        simple_drop = np.mean([fairness[o] - ours[o] for o in ("hotdog", "ficus", "chair")])
        # The DP's gains on complex objects outweigh anything it gives up on
        # the simple ones.
        assert complex_gain >= -0.002
        assert complex_gain >= simple_drop - 0.003
        # Overall the DP is at least as good as Fairness.
        assert np.mean(list(ours.values())) >= np.mean(list(fairness.values())) - 0.003

    benchmark(lambda: harness.mean_object_quality(reports[("iPhone 13", "Ours (DP)")]))


def test_fig8b_resource_allocation(harness, benchmark):
    device_name = "iPhone 13"
    rows = []
    allocations = {}
    for selector_name in SELECTORS:
        report = harness.nerflex_report(SCENE, device_name, selector_name)
        sizes = report.per_object_size_mb
        allocations[selector_name] = sizes
        rows.append(
            [selector_name]
            + [round(sizes.get(obj, 0.0), 1) for obj in OBJECT_ORDER]
            + [round(report.size_mb, 1)]
        )
    print_table(
        f"Fig. 8(b): per-object data size allocation on {device_name} (MB)",
        ["selector", *OBJECT_ORDER, "total"],
        rows,
    )

    ours = allocations["Ours (DP)"]
    fairness = allocations["Fairness"]
    # The DP gives the most complex object (lego) at least as much as any
    # simple object, and more than the equal-share allocation gives it.
    assert ours["lego"] >= max(ours["hotdog"], ours["ficus"]) - 1e-6
    assert ours["lego"] >= fairness["lego"] - 1e-6
    # Every selector respects the device budget.
    for sizes in allocations.values():
        assert sum(sizes.values()) <= 240.0 + 1e-6

    benchmark(lambda: sum(ours.values()))
