"""Micro-benchmarks of the compiled kernel layer (repro.render.kernels).

Each benchmark times one hot-loop kernel on a synthetic workload sized
like a real render chunk, for every *production* backend registered in
this environment — the ``numpy`` reference always, ``numba`` when it is
installed (the CI kernel leg).  The uncompiled ``loops`` backend is
deliberately not benchmarked: it exists as the parity-testing vehicle for
machines without numba, not as a path anyone deploys.

Per-backend throughput (rays/sec or samples/sec) is published into the
session trajectory — run with ``REPRO_BENCH_SUITE=kernels`` to emit
``BENCH_kernels.json`` with a ``metrics.kernels`` section — so the
speedups claimed in EXPERIMENTS.md are backed by archived data.

The acceptance pin lives here too: with numba installed, the occupancy
marcher must clear **3x** the numpy rays/sec (the issue's floor for CI
hardware; the stretch goal is 5x and the observed numbers land in the
trajectory either way).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.render.kernels import KERNELS, NUMBA_AVAILABLE, get_kernels, warm_up

#: Backends benchmarked in this environment (see module docstring for why
#: ``loops`` is excluded).
BENCH_BACKENDS = [name for name in ("numpy", "numba") if name in KERNELS]

#: Repeats per measurement; the best (minimum) wall clock is recorded, the
#: standard practice for micro-benchmarks on shared CI hardware.
REPEATS = 5

#: The issue's acceptance floor for the compiled marcher, in multiples of
#: the numpy reference throughput.
MARCH_SPEEDUP_FLOOR = 3.0


def best_seconds(fn, repeats: int = REPEATS) -> float:
    fn()  # warm-up: triggers JIT compilation / cache load on first call
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def record(bench_metrics, bench: str, backend: str, seconds: float,
           items: int, unit: str) -> float:
    """Store one measurement; returns the throughput for assertions."""
    throughput = items / seconds if seconds > 0 else float("inf")
    bench_metrics.setdefault("kernels", {})[f"{bench}:{backend}"] = {
        "backend": backend,
        "compiled": KERNELS[backend].compiled,
        "best_seconds": round(seconds, 6),
        "items": items,
        "unit": unit,
        "throughput": round(throughput, 1),
    }
    return throughput


@pytest.fixture(scope="session")
def march_workload():
    """A render-chunk-sized occupancy march: 8192 rays, 24^3 grid."""
    rng = np.random.default_rng(42)
    g = 24
    occupancy = rng.random((g, g, g)) < 0.2
    occupied = np.argwhere(occupancy).astype(np.int64)
    voxel_key = (occupied[:, 0] * g + occupied[:, 1]) * g + occupied[:, 2]
    axes = rng.integers(0, 3, occupied.shape[0])
    signs = rng.choice([-1, 1], occupied.shape[0])
    face_key = (voxel_key * 6 + axes * 2 + (signs > 0)).astype(np.int64)
    order = np.argsort(face_key, kind="stable").astype(np.int64)

    num_rays = 8192
    voxel = 1.0 / g
    # Rays converge on the grid from a shell around it, as camera rays do.
    targets = rng.random((num_rays, 3))
    origins = np.ascontiguousarray(
        targets + rng.normal(size=(num_rays, 3)) * 2.0
    )
    directions = targets - origins
    directions = np.ascontiguousarray(
        directions / np.linalg.norm(directions, axis=1, keepdims=True)
    )
    t_near = np.zeros(num_rays)
    t_far = np.full(num_rays, 6.0)
    return {
        "num_rays": num_rays,
        "args": (
            origins, directions, t_near, t_far,
            np.zeros(3), voxel, voxel * 0.5, g,
            occupancy, face_key[order], order,
            voxel_key[order].astype(np.int64), 32,
        ),
    }


@pytest.fixture(scope="session")
def composite_workload():
    """A volume-render chunk: 4096 rays x 64 samples."""
    rng = np.random.default_rng(43)
    num_rays, num_samples = 4096, 64
    deltas = np.ascontiguousarray(rng.random((num_rays, num_samples)) * 0.05 + 1e-4)
    return {
        "num_rays": num_rays,
        "num_samples": num_samples,
        "sdf": np.ascontiguousarray(rng.normal(scale=0.3, size=(num_rays, num_samples))),
        "densities": np.ascontiguousarray(rng.random((num_rays, num_samples)) * 30.0),
        "colors": np.ascontiguousarray(rng.random((num_rays, num_samples, 3))),
        "deltas": deltas,
        "background": np.ascontiguousarray(rng.random(3)),
        "distances": np.ascontiguousarray(np.cumsum(deltas, axis=1)),
    }


@pytest.fixture(scope="session")
def march_throughputs(march_workload, bench_metrics):
    """rays/sec of the occupancy marcher, per benchmarked backend."""
    throughputs = {}
    for backend in BENCH_BACKENDS:
        warm_up(backend)
        kernels = get_kernels(backend)
        seconds = best_seconds(lambda: kernels.march_occupancy(*march_workload["args"]))
        throughputs[backend] = record(
            bench_metrics, "march_occupancy", backend, seconds,
            march_workload["num_rays"], "rays/sec",
        )
    return throughputs


class TestMarchOccupancy:
    def test_throughput_recorded(self, march_throughputs, march_workload):
        reference = get_kernels("numpy").march_occupancy(*march_workload["args"])
        assert reference[0].size > march_workload["num_rays"] // 10  # real work
        assert all(value > 0 for value in march_throughputs.values())

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_compiled_marcher_clears_speedup_floor(self, march_throughputs):
        speedup = march_throughputs["numba"] / march_throughputs["numpy"]
        assert speedup >= MARCH_SPEEDUP_FLOOR, (
            f"compiled marcher at {speedup:.2f}x numpy "
            f"(floor {MARCH_SPEEDUP_FLOOR}x)"
        )

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_compiled_marcher_is_bit_identical_on_bench_workload(
        self, march_workload
    ):
        reference = get_kernels("numpy").march_occupancy(*march_workload["args"])
        compiled = get_kernels("numba").march_occupancy(*march_workload["args"])
        for ref, cand in zip(reference, compiled):
            np.testing.assert_array_equal(ref, cand)


class TestVolumeKernels:
    @pytest.mark.parametrize("backend", BENCH_BACKENDS)
    def test_sdf_to_density(self, backend, composite_workload, bench_metrics):
        kernels = get_kernels(backend)
        warm_up(backend)
        sdf = composite_workload["sdf"]
        seconds = best_seconds(lambda: kernels.sdf_to_density(sdf, 0.02))
        assert record(
            bench_metrics, "sdf_to_density", backend, seconds,
            sdf.size, "samples/sec",
        ) > 0

    @pytest.mark.parametrize("backend", BENCH_BACKENDS)
    def test_composite_forward(self, backend, composite_workload, bench_metrics):
        kernels = get_kernels(backend)
        warm_up(backend)
        w = composite_workload
        seconds = best_seconds(
            lambda: kernels.composite_forward(
                w["densities"], w["colors"], w["deltas"],
                w["background"], w["distances"],
            )
        )
        assert record(
            bench_metrics, "composite_forward", backend, seconds,
            w["num_rays"], "rays/sec",
        ) > 0


class TestSphereKernels:
    @pytest.mark.parametrize("backend", BENCH_BACKENDS)
    def test_trace_step_loop(self, backend, bench_metrics):
        """The gather/advance pair iterated as the sphere tracer drives it."""
        rng = np.random.default_rng(44)
        num_rays, num_steps = 4096, 48
        # Rays start on a radius-3 shell and aim near the unit sphere at the
        # origin, so the trace takes tens of shrinking steps to converge —
        # the shape of a real camera batch, not a one-step exit.
        origins = rng.normal(size=(num_rays, 3))
        origins = np.ascontiguousarray(
            3.0 * origins / np.linalg.norm(origins, axis=1, keepdims=True)
        )
        directions = rng.normal(scale=0.2, size=(num_rays, 3)) - origins
        directions = np.ascontiguousarray(
            directions / np.linalg.norm(directions, axis=1, keepdims=True)
        )
        limits = np.full(num_rays, 4.0)
        warm_up(backend)
        kernels = get_kernels(backend)

        def run():
            t_values = np.zeros(num_rays)
            hit = np.zeros(num_rays, dtype=bool)
            alive = np.arange(num_rays, dtype=np.int64)
            for _ in range(num_steps):
                if alive.size == 0:
                    break
                points = kernels.gather_ray_points(origins, directions, t_values, alive)
                # A unit-sphere SDF stands in for the scene between kernels.
                distances = np.ascontiguousarray(
                    np.linalg.norm(points, axis=1) - 1.0
                )
                alive = kernels.sphere_advance(
                    t_values, hit, alive, distances, limits, 2e-3
                )
            return hit

        assert run().any()
        seconds = best_seconds(run)
        assert record(
            bench_metrics, "sphere_trace_loop", backend, seconds,
            num_rays, "rays/sec",
        ) > 0
