"""Figure 7: quality of different configuration selectors inside NeRFlex.

The paper compares its DP selector against the Fairness (equal-share) and
SLSQP selectors on both devices across the simulated scenes.  Expected
shape: the DP selector is never worse than the other two, with the largest
margin on mixed-complexity scenes and on the tighter (Pixel 4) budget.

Quality is summarised as the mean per-object SSIM (object-centred close-up
views), the granularity at which the selectors' choices are actually
distinguishable — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCENE_INDICES, SELECTORS, print_table


def test_fig7_selector_comparison(harness, benchmark):
    rows = []
    for index in SCENE_INDICES:
        scene_key = f"scene{index}"
        for device_name in ("iPhone 13", "Pixel 4"):
            scores = {}
            for selector_name in SELECTORS:
                report = harness.nerflex_report(scene_key, device_name, selector_name)
                scores[selector_name] = harness.mean_object_quality(report)
            rows.append(
                [
                    scene_key,
                    device_name,
                    round(scores["Ours (DP)"], 4),
                    round(scores["Fairness"], 4),
                    round(scores["SLSQP"], 4),
                ]
            )
            # The DP selector is never worse than the baselines (small
            # tolerance for measurement noise in the close-up renders).
            assert scores["Ours (DP)"] >= scores["Fairness"] - 0.004
            assert scores["Ours (DP)"] >= scores["SLSQP"] - 0.004

    print_table(
        "Fig. 7: mean per-object SSIM by configuration selector",
        ["scene", "device", "Ours (DP)", "Fairness", "SLSQP"],
        rows,
    )

    # At least one configuration shows a strict win for the DP selector over
    # the Fairness allocation (largest on the tighter Pixel 4 budget, as in
    # the paper).  With the texture-dominated size calibration the SLSQP
    # relaxation has little discretisation gap left and often ties the DP on
    # the default scene subset — see EXPERIMENTS.md.
    strict_wins = sum(1 for row in rows if row[2] > row[3] + 1e-4)
    assert strict_wins >= 1

    # Benchmark: one full selector solve on already-fitted profiles.
    preparation, _, _ = harness.nerflex(f"scene{SCENE_INDICES[-1]}", "Pixel 4")
    from repro.core.selector_baselines import SLSQPSelector

    benchmark(lambda: SLSQPSelector().select(preparation.profiles, 150.0))
