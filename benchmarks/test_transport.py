"""Dispatch benchmarks of the worker transport's frame protocols.

Times whole maps through a live :class:`~repro.exec.WorkerHost` (spawn
cost amortised by a warm-up map) for frame protocol v1 and both v2 planes
on the fork transport, at payload sizes from the dispatch floor (8-byte
items — pure protocol latency) up to 4 MiB arrays.  Per-configuration
best wall-clock and MB/s land in the session trajectory — run with
``REPRO_BENCH_SUITE=transport`` to emit ``BENCH_transport.json`` with a
``metrics.transport`` section — so the zero-copy claims in EXPERIMENTS.md
are backed by archived data.

The acceptance pin lives here too: on a host with shared memory, the v2
shm plane must clear **2x** the v1 dispatch wall-clock for >= 1 MiB
payloads (the issue's floor; observed numbers land in the trajectory
either way).  Parity is asserted alongside — the measured configurations
return byte-identical results.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exec import Shard, WorkerHost, fork_available
from repro.exec.arrayplane import PLANE_INLINE, PLANE_SHM, shm_available
from repro.exec.transport import ForkSocketpairTransport

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs fork")

#: Measured frame-protocol configurations, all on the fork transport so
#: the comparison isolates the frame codec (not the connection medium).
#: The shm plane is skipped (not failed) where /dev/shm is unavailable.
MODES = [
    ("v1", {"protocol": 1}),
    ("v2-inline", {"protocol": 2, "plane": PLANE_INLINE}),
    ("v2-shm", {"protocol": 2, "plane": PLANE_SHM}),
]

#: Payload size per item; every map round-trips the payload (item out,
#: result back), so one map moves 2 * items * size bytes end to end.
PAYLOADS = {
    "floor-8B": 8,
    "small-64KiB": 64 << 10,
    "medium-512KiB": 512 << 10,
    "large-4MiB": 4 << 20,
}

NUM_ITEMS = 8
WORKERS = 2
REPEATS = 5

#: The issue's acceptance floor: v2's shm plane vs v1 wall-clock on the
#: large payload.
LARGE_SPEEDUP_FLOOR = 2.0


def _echo(arr):
    """The benchmark task: ship the payload back unchanged, so the wire
    (not the computation) dominates the map."""
    return arr


def _shards(count: int) -> list:
    return [Shard(index=i, item_indices=(i,), cost=1.0) for i in range(count)]


def _payload_items(nbytes: int) -> list:
    count = max(nbytes // 8, 1)
    return [
        np.arange(i, i + count, dtype=np.float64) for i in range(NUM_ITEMS)
    ]


def _best_map_seconds(host, items) -> float:
    shards = _shards(len(items))
    host.run(_echo, items, shards)  # warm-up: spawn + task registration
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        host.run(_echo, items, shards)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module")
def transport_timings(bench_metrics) -> dict:
    """best seconds per (payload, mode), published into the trajectory."""
    timings = {}
    for mode, kwargs in MODES:
        if kwargs.get("plane") == PLANE_SHM and not shm_available():
            continue
        host = WorkerHost(
            transport=ForkSocketpairTransport(**kwargs), workers=WORKERS
        )
        try:
            for payload, nbytes in PAYLOADS.items():
                items = _payload_items(nbytes)
                seconds = _best_map_seconds(host, items)
                moved = 2 * sum(item.nbytes for item in items)
                timings[(payload, mode)] = seconds
                bench_metrics.setdefault("transport", {})[
                    f"{payload}:{mode}"
                ] = {
                    "mode": mode,
                    "payload_bytes": int(nbytes),
                    "items": NUM_ITEMS,
                    "workers": WORKERS,
                    "best_seconds": round(seconds, 6),
                    "mb_per_sec": round(moved / seconds / 1e6, 1),
                }
        finally:
            host.shutdown()
    return timings


class TestDispatchFloor:
    def test_floor_latency_recorded_for_every_mode(self, transport_timings):
        floors = {
            mode: seconds
            for (payload, mode), seconds in transport_timings.items()
            if payload == "floor-8B"
        }
        assert "v1" in floors and "v2-inline" in floors
        assert all(seconds > 0 for seconds in floors.values())

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_v2_shm_clears_the_large_payload_floor(self, transport_timings):
        v1 = transport_timings[("large-4MiB", "v1")]
        v2 = transport_timings[("large-4MiB", "v2-shm")]
        speedup = v1 / v2
        assert speedup >= LARGE_SPEEDUP_FLOOR, (
            f"v2 shm plane at {speedup:.2f}x v1 on 4 MiB payloads "
            f"(floor {LARGE_SPEEDUP_FLOOR}x: v1 {v1:.4f}s, v2 {v2:.4f}s)"
        )


class TestBenchParity:
    def test_measured_modes_return_identical_bytes(self):
        items = _payload_items(256 << 10)
        reference = None
        for mode, kwargs in MODES:
            if kwargs.get("plane") == PLANE_SHM and not shm_available():
                continue
            host = WorkerHost(
                transport=ForkSocketpairTransport(**kwargs), workers=WORKERS
            )
            try:
                results, _ = host.run(_echo, items, _shards(len(items)))
            finally:
                host.shutdown()
            payload = b"".join(r.tobytes() for r in results)
            if reference is None:
                reference = payload
            else:
                assert payload == reference, f"{mode} diverged from v1"
