"""Table I: PSNR / SSIM / LPIPS on the real-world style scene.

Paper values: Mip-NeRF 360 (26.5 / 0.815 / 0.183), Instant-NGP
(27.2 / 0.851 / 0.136), MobileNeRF (26.0 / 0.785 / 0.207), NeRFlex
(27.7 / 0.886 / 0.114).  The shape to reproduce: NeRFlex is best on all
three metrics and MobileNeRF is worst, with Instant-NGP between Mip-NeRF 360
and NeRFlex.

Metrics are computed over the high-frequency detail region (the foreground
objects); the procedural backdrop that stands in for the real scenes'
background would otherwise dominate the averages (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.metrics import lpips_proxy, psnr, ssim

SCENE = "realworld"
METHODS = [
    ("Mip-NeRF 360", "mip360"),
    ("Instant-NGP", "ngp"),
    ("MobileNeRF", "single"),
    ("NeRFlex", "nerflex"),
]


def test_table1_quality_metrics(harness, benchmark):
    scores = {key: harness.detail_region_metrics(SCENE, key) for _, key in METHODS}

    rows = [
        [label, round(scores[key]["psnr"], 2), round(scores[key]["ssim"], 3), round(scores[key]["lpips"], 4)]
        for label, key in METHODS
    ]
    print_table(
        "Table I: detail-region quality on the real-world style scene (PSNR up, SSIM up, LPIPS down)",
        ["method", "PSNR", "SSIM", "LPIPS"],
        rows,
    )

    nerflex = scores["nerflex"]
    mobilenerf = scores["single"]
    ngp = scores["ngp"]
    mip = scores["mip360"]

    # NeRFlex clearly beats the other deployable method (MobileNeRF) and is
    # at least on par with the workstation-class references.
    assert nerflex["ssim"] >= mobilenerf["ssim"] + 0.005
    assert nerflex["ssim"] >= mip["ssim"] - 0.02
    assert nerflex["ssim"] >= ngp["ssim"] - 0.03
    assert nerflex["psnr"] >= mobilenerf["psnr"] - 0.2
    assert nerflex["lpips"] <= mobilenerf["lpips"] + 1e-3
    assert mobilenerf["ssim"] <= min(mip["ssim"], ngp["ssim"]) + 0.01
    # NGP (stronger network) is at least as good as Mip-NeRF 360.  The
    # ordering of the two workstation emulators is resolution-sensitive, so
    # it is only asserted at full fidelity (read the registry knob directly
    # to avoid re-importing the conftest as a second module instance).
    from repro.config import env as repro_env

    if not repro_env.REPRO_BENCH_QUICK.get():
        assert ngp["ssim"] >= mip["ssim"] - 0.005

    # Benchmark one metric evaluation (SSIM+PSNR+LPIPS on a test view).
    dataset = harness.dataset(SCENE)
    reference = dataset.test_views[0].rgb

    def score():
        return (
            ssim(reference, reference),
            psnr(reference, reference),
            lpips_proxy(reference, reference),
        )

    benchmark(score)
