"""Shared harness for the paper-reproduction benchmarks.

Each ``benchmarks/test_fig*.py`` / ``test_table*.py`` file regenerates one
table or figure of the paper's evaluation section.  The heavy artefacts
(datasets, profiler measurements, baked bundles, deployment reports) are
built lazily by the session-scoped :class:`ReproductionHarness` and shared
across benchmark files, so the whole suite stays tractable on a laptop.

Runtime control:

* by default a representative subset of the simulated scenes is used
  (scenes 1 and 4, plus scene 3 for the FPS figure);
* set ``REPRO_FULL=1`` to sweep all four simulated scenes as in the paper;
* set ``REPRO_BENCH_QUICK=1`` for a fast mode (smaller resolutions and
  shorter FPS traces) when iterating on the benchmarks locally;
* every test in this directory carries the ``figure`` marker, so
  ``pytest -m "not figure"`` runs only the unit tiers.

Every benchmark session also emits a machine-readable trajectory,
``BENCH_<suite>.json`` (suite = ``quick`` / ``figures`` /
``$REPRO_BENCH_SUITE``; directory = ``$REPRO_BENCH_DIR`` or the cwd):
wall-clock per figure/table test, the resolved backend / transport /
worker count, and the session's artifact-store hit rates — so the perf
history in EXPERIMENTS.md is backed by data CI archives on every run
instead of living only as prose.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.config import env as repro_env
from repro.baselines import (
    BlockNeRFBaseline,
    MipNeRF360Emulator,
    NGPEmulator,
    SingleNeRFBaseline,
)
from repro.core.pipeline import (
    NeRFlexPipeline,
    PipelineConfig,
    evaluate_baked_deployment,
)
from repro.core.selector import NeRFlexDPSelector
from repro.core.selector_baselines import FairnessSelector, SLSQPSelector
from repro.device.models import DeviceProfile, IPHONE_13, PIXEL_4
from repro.exec import ArtifactStore, create_artifact_store
from repro.metrics import lpips_proxy, ssim
from repro.render import default_engine
from repro.scenes.dataset import generate_dataset
from repro.scenes.library import make_realworld_scene, make_simulated_scene
from repro.utils.image import bbox_from_mask, crop_to_bbox

#: Fast mode: smaller resolutions and shorter simulated traces, for local
#: iteration on the benchmark suite itself (REPRO_BENCH_QUICK=1).  The
#: default remains full fidelity, so the figures reproduced by CI / tier-1
#: match EXPERIMENTS.md.  All knobs are read through the typed registry
#: (:mod:`repro.config.env`), which owns each variable's default + parser.
QUICK_MODE = repro_env.REPRO_BENCH_QUICK.get()

#: Image resolution of the generated datasets (training and scene-level test
#: views).  The paper renders at ~800 px on-device; this reproduction scores
#: at a lower resolution, which rescales the useful patch-size range (see
#: EXPERIMENTS.md).
DATASET_RESOLUTION = 96 if QUICK_MODE else 128
NUM_TRAIN_VIEWS = 6
NUM_TEST_VIEWS = 2

FULL_SWEEP = repro_env.REPRO_FULL.get()

#: Warm-store mode (REPRO_REQUIRE_WARM=1): assert at session end that every
#: profile curve and baked model was served from the (disk-backed) artifact
#: store — i.e. this was a second invocation against a populated
#: REPRO_ARTIFACT_DIR and the store recomputed nothing.  CI's warm-store
#: job runs the quick figure suite twice this way.
REQUIRE_WARM = repro_env.REPRO_REQUIRE_WARM.get()


def make_pipeline_config() -> PipelineConfig:
    """The NeRFlex pipeline configuration used by every benchmark."""
    if QUICK_MODE:
        return PipelineConfig(
            profile_resolution=120,
            object_eval_resolution=128,
            num_fps_frames=600,
        )
    return PipelineConfig()


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "figure: full-fidelity paper-figure reproduction benchmark (deselect "
        'with -m "not figure")',
    )


def pytest_collection_modifyitems(config, items):
    # This hook is session-scoped and receives every collected item, not
    # just this directory's — mark only the benchmarks.
    benchmarks_dir = os.path.dirname(os.path.abspath(__file__))
    for item in items:
        if os.path.abspath(str(item.fspath)).startswith(benchmarks_dir + os.sep):
            item.add_marker(pytest.mark.figure)


# ---------------------------------------------------------------------------
# Machine-readable benchmark trajectories (BENCH_<suite>.json)
# ---------------------------------------------------------------------------

#: Per-test call-phase records of this session's benchmarks, in run order.
_BENCH_RECORDS: list = []

#: Structured measurements benchmarks attach via the ``bench_metrics``
#: fixture (e.g. the kernel micro-benchmarks' rays/sec per backend); merged
#: into the session's ``BENCH_<suite>.json`` under ``"metrics"``.
_BENCH_METRICS: dict = {}

#: The session harness, stashed by the fixture so the session-finish hook
#: can read the artifact-store statistics after the run.
_SESSION_HARNESS: dict = {}

_BENCHMARKS_DIR = os.path.dirname(os.path.abspath(__file__))


def _bench_suite_name() -> str:
    explicit = repro_env.REPRO_BENCH_SUITE.get()
    if explicit:
        return explicit
    return "quick" if QUICK_MODE else "figures"


def pytest_runtest_logreport(report):
    # Only the benchmarks' call phase belongs in the trajectory (setup of
    # the session fixtures is amortised and reported per first user).
    if report.when != "call":
        return
    # Node ids are rootdir-relative with forward slashes regardless of the
    # invocation directory, unlike ``report.fspath``.
    path_part = report.nodeid.split("::")[0]
    if os.path.basename(_BENCHMARKS_DIR) not in path_part.split("/"):
        return
    _BENCH_RECORDS.append(
        {
            "nodeid": report.nodeid,
            "file": os.path.basename(path_part),
            "outcome": report.outcome,
            "seconds": round(float(report.duration), 3),
        }
    )


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RECORDS:
        return  # no benchmark ran in this session (e.g. unit-tier only)
    from repro.exec import resolve_backend, transport_label

    try:
        backend = resolve_backend(None)
        backend_info = {
            "name": backend.name,
            "workers": backend.workers,
            # "none" for in-process backends, same normalisation as
            # DeploymentReport.transport_name.
            "transport": transport_label(backend),
        }
    except ValueError as error:  # unknown REPRO_BACKEND: record, don't crash
        backend_info = {"error": str(error)}
    harness = _SESSION_HARNESS.get("instance")
    store_info = None
    if harness is not None:
        store = harness.artifacts
        store_info = store.stats_summary()
        store_info["disk"] = (
            None if store.disk is None else store.disk.stats.as_dict()
        )
    payload = {
        "suite": _bench_suite_name(),
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "exit_status": int(exitstatus),
        "quick_mode": QUICK_MODE,
        "full_sweep": FULL_SWEEP,
        "scene_indices": list(SCENE_INDICES),
        "backend": backend_info,
        "total_seconds": round(
            sum(record["seconds"] for record in _BENCH_RECORDS), 3
        ),
        "artifact_store": store_info,
        "metrics": dict(_BENCH_METRICS),
        "tests": list(_BENCH_RECORDS),
    }
    out_dir = repro_env.REPRO_BENCH_DIR.get() or os.getcwd()
    out_path = os.path.join(out_dir, f"BENCH_{payload['suite']}.json")
    try:
        os.makedirs(out_dir, exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as error:  # pragma: no cover - unwritable bench dir
        print(f"\n[bench trajectory] could not write {out_path}: {error}")
        return
    print(f"\n[bench trajectory] {len(_BENCH_RECORDS)} records -> {out_path}")

#: Simulated scenes used by the overall-performance benchmarks.  The default
#: single-scene subset keeps the suite tractable on one CPU core; set
#: REPRO_FULL=1 to sweep all four scenes as in the paper.
SCENE_INDICES = (1, 2, 3, 4) if FULL_SWEEP else (4,)

#: A "device" with effectively unlimited memory, used to score the quality of
#: representations that cannot load on either handset (the paper likewise
#: reports Block-NeRF's quality even though it never runs on a phone).
WORKSTATION = DeviceProfile(
    name="Workstation",
    memory_budget_mb=1e6,
    hard_memory_limit_mb=1e6,
    compute_score=20.0,
)

DEVICES = {"iPhone 13": IPHONE_13, "Pixel 4": PIXEL_4, "Workstation": WORKSTATION}

SELECTORS = {
    "Ours (DP)": lambda: NeRFlexDPSelector(),
    "Fairness": lambda: FairnessSelector(),
    "SLSQP": lambda: SLSQPSelector(),
}


def print_table(title: str, header: list, rows: list) -> None:
    """Print a reproduction table in a compact, paper-like format."""
    print()
    print(f"=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    print()


class ReproductionHarness:
    """Lazy, memoised builder of every artefact the benchmarks need.

    Besides the per-key memo dicts, the harness owns one session-scoped
    :class:`~repro.exec.ArtifactStore`: every NeRFlex pipeline spawned for a
    (scene, device, selector) combination shares it, so profile curves fit
    for one device are reused by every other device/selector configuration
    on the same scene, and baked sub-models are reused wherever two
    configurations select the same ``(g, p)`` for an object.  When
    ``REPRO_ARTIFACT_DIR`` is set the store is disk-backed, extending that
    reuse across *invocations*: a second benchmark run on the same scenes
    serves every profile and bake from disk and skips the corresponding
    stages entirely (asserted in warm-store mode, see ``REQUIRE_WARM``).
    """

    def __init__(self) -> None:
        self._datasets: dict = {}
        self._measurement_caches: dict = {}
        self._nerflex_runs: dict = {}
        self._single_models: dict = {}
        self._block_models: dict = {}
        self._baked_reports: dict = {}
        self._field_reports: dict = {}
        self.artifacts = create_artifact_store()

    # -- datasets -----------------------------------------------------------

    def dataset(self, scene_key: str):
        """Dataset for ``"scene1"``..``"scene4"`` or ``"realworld"``."""
        if scene_key not in self._datasets:
            if scene_key == "realworld":
                scene = make_realworld_scene(seed=0)
                self._datasets[scene_key] = generate_dataset(
                    scene,
                    num_train=NUM_TRAIN_VIEWS,
                    num_test=NUM_TEST_VIEWS,
                    resolution=DATASET_RESOLUTION,
                    trajectory="forward",
                    name=scene_key,
                )
            else:
                index = int(scene_key.replace("scene", ""))
                scene = make_simulated_scene(index, seed=0)
                self._datasets[scene_key] = generate_dataset(
                    scene,
                    num_train=NUM_TRAIN_VIEWS,
                    num_test=NUM_TEST_VIEWS,
                    resolution=DATASET_RESOLUTION,
                    name=scene_key,
                )
        return self._datasets[scene_key]

    def cache(self, scene_key: str) -> dict:
        """Per-scene measurement cache shared across devices and selectors."""
        return self._measurement_caches.setdefault(scene_key, {})

    # -- NeRFlex ------------------------------------------------------------

    def nerflex(self, scene_key: str, device_name: str, selector_name: str = "Ours (DP)"):
        """Run (and memoise) the NeRFlex pipeline for one configuration.

        Returns ``(preparation, multi_model, report)``.
        """
        key = (scene_key, device_name, selector_name)
        if key not in self._nerflex_runs:
            dataset = self.dataset(scene_key)
            pipeline = NeRFlexPipeline(
                DEVICES[device_name],
                make_pipeline_config(),
                selector=SELECTORS[selector_name](),
                measurement_cache=self.cache(scene_key),
                artifacts=self.artifacts,
            )
            self._nerflex_runs[key] = pipeline.run(dataset)
        return self._nerflex_runs[key]

    def nerflex_report(self, scene_key: str, device_name: str, selector_name: str = "Ours (DP)"):
        return self.nerflex(scene_key, device_name, selector_name)[2]

    # -- baselines ----------------------------------------------------------

    def single_model(self, scene_key: str):
        if scene_key not in self._single_models:
            self._single_models[scene_key] = SingleNeRFBaseline().bake(self.dataset(scene_key))
        return self._single_models[scene_key]

    def block_model(self, scene_key: str):
        if scene_key not in self._block_models:
            self._block_models[scene_key] = BlockNeRFBaseline().bake(
                self.dataset(scene_key), geometry_cache=self.cache(scene_key)
            )
        return self._block_models[scene_key]

    def baked_report(self, method: str, scene_key: str, device_name: str):
        """Deployment report of a fixed-configuration baseline on a device."""
        key = (method, scene_key, device_name)
        if key not in self._baked_reports:
            if method == "single":
                model = self.single_model(scene_key)
                label = SingleNeRFBaseline.method_name
            elif method == "block":
                model = self.block_model(scene_key)
                label = BlockNeRFBaseline.method_name
            else:
                raise ValueError(f"unknown baked baseline {method!r}")
            self._baked_reports[key] = evaluate_baked_deployment(
                model,
                self.dataset(scene_key),
                DEVICES[device_name],
                method=label,
                num_eval_views=NUM_TEST_VIEWS,
                gt_cache=self.cache(scene_key),
            )
        return self._baked_reports[key]

    def field_report(self, method: str, scene_key: str):
        """Quality report of a workstation-class baseline (NGP / Mip-NeRF 360)."""
        key = (method, scene_key)
        if key not in self._field_reports:
            emulator = NGPEmulator() if method == "ngp" else MipNeRF360Emulator()
            self._field_reports[key] = emulator.run(
                self.dataset(scene_key), num_eval_views=NUM_TEST_VIEWS
            )
        return self._field_reports[key]

    # -- detail-region quality ------------------------------------------------

    def detail_region_metrics(self, scene_key: str, method: str) -> dict:
        """Quality over the high-frequency detail region (foreground objects).

        Fig. 4 reports SSIM "for the high-frequency detail region"; for the
        real-world style scene this is the union of the foreground objects'
        pixels (the procedural backdrop is excluded).  Each method's output
        is re-rendered on the held-out test views and scored against ground
        truth inside that region (LPIPS is computed on the region's bounding
        box crop).
        """
        key = ("detail", scene_key, method)
        if key in self._field_reports:
            return self._field_reports[key]
        dataset = self.dataset(scene_key)
        foreground_ids = [
            placed.instance_id
            for placed in dataset.scene.placed
            if placed.instance_name != "backdrop"
        ]
        background = dataset.scene.background_color
        engine = default_engine()

        def rendered_view(camera):
            # Rendering goes through the shared engine cache, so test views
            # already rendered by a method's deployment report are reused
            # here instead of being marched again.
            if method == "nerflex":
                model = self.nerflex(scene_key, "iPhone 13")[1]
                return engine.render_baked(
                    model, camera, background=background, scene_key=dataset.name
                )
            if method == "single":
                return engine.render_baked(
                    self.single_model(scene_key), camera, background=background,
                    scene_key=dataset.name,
                )
            if method == "block":
                return engine.render_baked(
                    self.block_model(scene_key), camera, background=background,
                    scene_key=dataset.name,
                )
            emulator = NGPEmulator() if method == "ngp" else MipNeRF360Emulator()
            field = emulator.build_field(dataset)
            return engine.render_field(
                field, camera, background=background,
                scene_key=emulator.render_key(dataset),
            )

        ssim_scores, psnr_scores, lpips_scores = [], [], []
        for view, camera in zip(dataset.test_views[:NUM_TEST_VIEWS], dataset.test_cameras):
            rendered = rendered_view(camera)
            mask = np.isin(view.object_ids, foreground_ids)
            if mask.sum() < 64:
                continue
            ssim_scores.append(ssim(view.rgb, rendered.rgb, mask=mask))
            mse = float(np.mean((view.rgb[mask] - rendered.rgb[mask]) ** 2))
            psnr_scores.append(10.0 * np.log10(1.0 / max(mse, 1e-12)))
            bbox = bbox_from_mask(mask, margin=4)
            lpips_scores.append(
                lpips_proxy(crop_to_bbox(view.rgb, bbox), crop_to_bbox(rendered.rgb, bbox))
            )
        result = {
            "ssim": float(np.mean(ssim_scores)),
            "psnr": float(np.mean(psnr_scores)),
            "lpips": float(np.mean(lpips_scores)),
        }
        self._field_reports[key] = result
        return result

    # -- aggregates ---------------------------------------------------------

    @staticmethod
    def mean_object_quality(report) -> float:
        """Mean per-object SSIM of a deployment (the Fig. 7 metric)."""
        values = list(report.per_object_ssim.values())
        return float(np.mean(values)) if values else 0.0


@pytest.fixture(scope="session")
def harness():
    instance = ReproductionHarness()
    _SESSION_HARNESS["instance"] = instance
    yield instance
    store = instance.artifacts
    summary = store.stats_summary()
    print(
        f"\n[artifact store] {summary['hits']} hits "
        f"({summary['disk_hits']} from disk), "
        f"recomputed {summary['recompute_by_kind'] or 'nothing'}, "
        f"disk={'off' if store.disk is None else store.disk.root}"
    )
    if REQUIRE_WARM:
        recomputes = {
            kind: count
            for kind, count in store.recompute_by_kind().items()
            if kind in ("profile", "baked") and count
        }
        assert store.disk is not None, (
            "REPRO_REQUIRE_WARM=1 needs a disk-backed store; set "
            "REPRO_ARTIFACT_DIR to the directory a previous run populated"
        )
        assert not recomputes, (
            "warm-store run recomputed artefacts that should have been "
            f"served from {store.disk.root}: {recomputes} "
            f"(disk stats: {store.disk.stats.as_dict()})"
        )


@pytest.fixture(scope="session")
def bench_metrics() -> dict:
    """Session-scoped dict of structured benchmark measurements.

    Whatever benchmarks put here lands verbatim under ``"metrics"`` in the
    session's ``BENCH_<suite>.json`` — the channel the kernel
    micro-benchmarks use to publish per-backend throughput alongside the
    per-test wall clocks.
    """
    return _BENCH_METRICS


@pytest.fixture(scope="session")
def artifact_store(harness) -> ArtifactStore:
    """The artifact store shared by every pipeline the figure suite builds."""
    return harness.artifacts
