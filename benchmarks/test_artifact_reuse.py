"""Artifact-store reuse across pipeline configurations.

The staged pipeline keys its expensive artefacts — fitted profile curves and
baked sub-models — by content and preparation knobs, never by device.  The
figure suite therefore fits each sub-scene's profile exactly once per scene,
no matter how many devices and selectors it sweeps.  This benchmark pins
that behaviour with an explicit reuse-count assertion on the session store.
"""

from __future__ import annotations

from benchmarks.conftest import DEVICES, make_pipeline_config
from repro.core.pipeline import NeRFlexPipeline


def test_profiles_reused_across_devices(harness, artifact_store, benchmark):
    """A second device on the same scene reuses every profile curve.

    The first run may already be memoised by an earlier benchmark (the
    harness memoises whole pipeline runs); the second device is therefore
    driven through a *fresh* pipeline sharing only the artifact store, so
    the assertion is independent of test execution order.
    """

    def build():
        _, multi_model, report = harness.nerflex("scene4", "iPhone 13")
        before = artifact_store.stats.reuse_count
        fresh = NeRFlexPipeline(
            DEVICES["Pixel 4"],
            make_pipeline_config(),
            measurement_cache=harness.cache("scene4"),
            artifacts=artifact_store,
        )
        preparation = fresh.prepare(harness.dataset("scene4"))
        return preparation, report, before

    preparation, report, before = benchmark.pedantic(build, rounds=1, iterations=1)

    num_sub_scenes = len(preparation.segmentation.sub_scenes)
    reuse = artifact_store.reuse_by_kind()
    # The Pixel 4 preparation must have served all its profile curves from
    # the store (fitted during the iPhone 13 run) instead of re-measuring.
    assert reuse.get("profile", 0) >= num_sub_scenes
    assert artifact_store.stats.reuse_count - before >= num_sub_scenes
    assert len(artifact_store) >= num_sub_scenes
    assert report.backend_name in {"serial", "thread", "process", "cluster"}

    print(
        f"\nArtifact store after two devices on scene4: "
        f"{len(artifact_store)} artefacts, "
        f"hits={artifact_store.stats.hits}, misses={artifact_store.stats.misses}, "
        f"reuse by kind={reuse}"
    )


def test_repeated_prepare_hits_store(harness, artifact_store):
    """Re-preparing the same scene/device serves profiles from the store."""
    dataset = harness.dataset("scene4")

    def make_pipeline():
        return NeRFlexPipeline(
            DEVICES["iPhone 13"],
            make_pipeline_config(),
            measurement_cache=harness.cache("scene4"),
            artifacts=artifact_store,
        )

    # First preparation populates the store (a no-op if an earlier benchmark
    # already fitted scene4's profiles into the shared session store).
    make_pipeline().prepare(dataset)
    before = artifact_store.stats.reuse_count
    preparation = make_pipeline().prepare(dataset)
    assert artifact_store.stats.reuse_count - before >= len(
        preparation.segmentation.sub_scenes
    )
    # Reused profiles still drive a valid selection.
    assert set(preparation.selection.assignments) == {
        sub.name for sub in preparation.segmentation.sub_scenes
    }
