"""Figure 5: overall quality and data size across simulated scenes and devices.

(a) Scene-level SSIM of NeRFlex (Pixel and iPhone), Block-NeRF and the
single-NeRF MobileNeRF baseline across the simulated scenes;
(b) the corresponding baked data sizes.

Expected shape: the multi-NeRF methods clearly beat the single NeRF on
quality; Block-NeRF needs several hundred MB (far beyond both devices);
the single NeRF still exceeds the iPhone's loadable limit for most scenes;
NeRFlex adapts its size to each device's budget (240 / 150 MB).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCENE_INDICES, print_table
from repro.core.selector import NeRFlexDPSelector


def test_fig5_quality_and_size(harness, benchmark):
    quality_rows = []
    size_rows = []
    for index in SCENE_INDICES:
        scene_key = f"scene{index}"
        nerflex_iphone = harness.nerflex_report(scene_key, "iPhone 13")
        nerflex_pixel = harness.nerflex_report(scene_key, "Pixel 4")
        # Block-NeRF does not load on either handset; its quality is scored
        # on the workstation profile (as the paper does).
        block = harness.baked_report("block", scene_key, "Workstation")
        single = harness.baked_report("single", scene_key, "Workstation")
        single_iphone = harness.baked_report("single", scene_key, "iPhone 13")

        quality_rows.append(
            [
                scene_key,
                round(nerflex_pixel.ssim, 4),
                round(nerflex_iphone.ssim, 4),
                round(block.ssim, 4),
                round(single.ssim, 4),
            ]
        )
        size_rows.append(
            [
                scene_key,
                round(nerflex_pixel.size_mb, 1),
                round(nerflex_iphone.size_mb, 1),
                round(block.size_mb, 1),
                round(single.size_mb, 1),
                "no" if not single_iphone.loaded else "yes",
            ]
        )

        # Shape assertions per scene.
        assert nerflex_iphone.size_mb <= 240.0 + 1e-6
        assert nerflex_pixel.size_mb <= 150.0 + 1e-6
        assert block.size_mb > 400.0
        assert nerflex_iphone.ssim > single.ssim + 0.02
        assert nerflex_pixel.ssim > single.ssim + 0.02
        assert block.ssim >= nerflex_iphone.ssim - 0.02

    print_table(
        "Fig. 5(a): scene-level SSIM per method (Single evaluated where it can load)",
        ["scene", "NeRFlex (Pixel)", "NeRFlex (iPhone)", "Block-NeRF", "Single (MobileNeRF)"],
        quality_rows,
    )
    print_table(
        "Fig. 5(b): baked data size (MB) per method",
        ["scene", "NeRFlex (Pixel)", "NeRFlex (iPhone)", "Block-NeRF", "Single", "Single loads on iPhone"],
        size_rows,
    )

    # Benchmark the configuration-selection step (the part the paper's
    # framework adds on top of baking) on the last prepared scene.
    preparation, _, _ = harness.nerflex(f"scene{SCENE_INDICES[-1]}", "iPhone 13")
    selector = NeRFlexDPSelector()
    benchmark(lambda: selector.select(preparation.profiles, 240.0))
