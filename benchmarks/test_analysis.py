"""Benchmarks of the static-analysis pass itself.

The lint gate runs on every CI build, so its wall clock is a budget we
track like any other: full-tree lint time (all rules, including the
interprocedural ones), the call-graph build in isolation, and the finding
counts that prove the run was not vacuous.  Published into the session
trajectory — run with ``REPRO_BENCH_SUITE=analysis`` to emit
``BENCH_analysis.json`` with a ``metrics.analysis`` section.
"""

from __future__ import annotations

import os
import time

from repro.analysis import all_rules, analyze_paths, build_call_graph
from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import concurrent_scope, worker_shipped_scope
from repro.analysis.engine import iter_python_files, load_module

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT_PATHS = [os.path.join(REPO_ROOT, d) for d in ("src", "tests", "benchmarks")]

#: Repeats per measurement; best-of like the kernel micro-benchmarks.
REPEATS = 3


def best_seconds(fn, repeats: int = REPEATS) -> tuple:
    result = fn()  # warm-up (fills the graph cache exactly as CI's run does)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


class TestAnalysisBenchmarks:
    def test_full_tree_lint_wall_clock(self, bench_metrics):
        baseline = Baseline.load(os.path.join(REPO_ROOT, ".analysis-baseline.json"))
        rules = all_rules()

        def run():
            return analyze_paths(LINT_PATHS, rules, baseline=baseline)

        seconds, result = best_seconds(run)
        bench_metrics.setdefault("analysis", {})["lint:full-tree"] = {
            "best_seconds": round(seconds, 4),
            "files": result.files_checked,
            "files_per_second": round(result.files_checked / seconds, 1),
            "rules": len(rules),
            "new_findings": len(result.findings),
            "baselined": len(result.baselined),
            "waivers": len(result.waivers),
        }
        # The gate contract the CI lint job relies on.
        assert result.files_checked > 90
        assert result.findings == [], "\n".join(
            finding.format() for finding in result.findings
        )
        # A full lint that can't finish inside a minute would dominate CI.
        assert seconds < 60.0

    def test_call_graph_build_wall_clock(self, bench_metrics):
        modules = [
            module
            for module in (
                load_module(path)
                for path in iter_python_files([os.path.join(REPO_ROOT, "src")])
            )
            if module is not None
        ]

        def build():
            return build_call_graph(modules)

        seconds, graph = best_seconds(build)
        shipped = worker_shipped_scope(graph)
        concurrent = concurrent_scope(graph)
        bench_metrics.setdefault("analysis", {})["callgraph:src"] = {
            "best_seconds": round(seconds, 4),
            "functions": len(graph.index.functions),
            "edges": sum(len(out) for out in graph.edges.values()),
            "shipped_entries": len(graph.shipped_entries),
            "dag_entries": len(graph.dag_entries),
            "worker_shipped_scope": len(shipped),
            "concurrent_scope": len(concurrent),
        }
        # Not vacuous: the scopes the interprocedural rules walk are
        # populated, and the graph builds in a small fraction of lint time.
        assert len(graph.index.functions) > 500
        assert len(shipped) >= 10
        assert len(concurrent) > len(shipped)
        assert seconds < 30.0
