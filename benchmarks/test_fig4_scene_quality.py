"""Figure 4: complex-scene rendering quality and memory per method.

The paper renders a real-world scene on the iPhone 13 (240 MB budget) with
MobileNeRF, Mip-NeRF 360, Instant-NGP, Block-NeRF and NeRFlex, reporting the
SSIM of the *high-frequency detail region* together with the memory
footprint of the deployable methods.  Expected shape: Block-NeRF has the
highest quality but does not fit the device; the single-scene MobileNeRF is
the worst; NeRFlex is close to Block-NeRF while staying inside the memory
constraint.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table

SCENE = "realworld"
DEVICE = "iPhone 13"


def test_fig4_method_comparison(harness, benchmark):
    nerflex = harness.nerflex_report(SCENE, DEVICE)
    single = harness.baked_report("single", SCENE, DEVICE)
    block = harness.baked_report("block", SCENE, DEVICE)

    detail = {
        method: harness.detail_region_metrics(SCENE, method)
        for method in ("single", "mip360", "ngp", "block", "nerflex")
    }

    # Benchmark the deployable artefact's size accounting + memory check
    # (before the shape assertions, so the benchmark fixture always runs).
    from repro.device.memory import MemoryModel
    from repro.device.models import IPHONE_13

    model = harness.nerflex(SCENE, DEVICE)[1]
    benchmark(lambda: MemoryModel(IPHONE_13).try_load(model.size_mb()))

    rows = [
        ["MobileNeRF (single)", round(detail["single"]["ssim"], 4), round(single.size_mb, 1), "yes" if single.loaded else "no"],
        ["Mip-NeRF 360", round(detail["mip360"]["ssim"], 4), "-", "n/a (workstation)"],
        ["Instant-NGP", round(detail["ngp"]["ssim"], 4), "-", "n/a (workstation)"],
        ["Block-NeRF", round(detail["block"]["ssim"], 4), round(block.size_mb, 1), "yes" if block.loaded else "no"],
        ["NeRFlex", round(detail["nerflex"]["ssim"], 4), round(nerflex.size_mb, 1), "yes" if nerflex.loaded else "no"],
    ]
    print_table(
        f"Fig. 4: detail-region SSIM / memory on {DEVICE} (budget 240 MB), real-world style scene",
        ["method", "SSIM (detail region)", "data size (MB)", "fits device"],
        rows,
    )

    # Shape assertions from the paper.
    assert nerflex.loaded, "NeRFlex must fit the iPhone memory constraint"
    assert not block.loaded, "Block-NeRF must exceed the iPhone memory constraint"
    assert nerflex.size_mb <= 240.0 + 1e-6
    assert block.size_mb > 240.0
    # Quality ordering on the detail region: NeRFlex beats every whole-scene
    # method; Block-NeRF (unconstrained per-object NeRFs) is at least as good.
    assert detail["nerflex"]["ssim"] > detail["single"]["ssim"] + 0.005
    assert detail["nerflex"]["ssim"] >= detail["mip360"]["ssim"] - 0.02
    assert detail["nerflex"]["ssim"] >= detail["ngp"]["ssim"] - 0.03
    assert detail["block"]["ssim"] >= detail["nerflex"]["ssim"] - 0.02
