"""Packaging metadata for the NeRFlex reproduction.

``pip install -e .`` makes ``import repro`` work without ``PYTHONPATH=src``
(the layout is a standard ``src/`` tree discovered by setuptools).
"""

from setuptools import find_packages, setup

setup(
    name="nerflex-repro",
    version="0.5.0",
    description=(
        "Reproduction of NeRFlex (ICDCS): profile-guided multi-NeRF "
        "decomposition for on-device rendering, with a sharded, "
        "artifact-cached execution layer"
    ),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
