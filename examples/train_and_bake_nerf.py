"""Train a numpy NeRF from images, then bake and render it.

This example exercises the learning substrate directly (no degradation
model): a small radiance field is trained on posed images of a procedural
object with the classic photometric objective, distilled into an SDF +
albedo field, baked into the mesh/texture representation at two different
configurations, and compared against ground truth — showing the
quality-versus-size trade-off that NeRFlex's profiler models.

All rendering goes through one :class:`repro.render.RenderEngine` (the
batched, cached engine behind the whole library) rather than the legacy
module-level wrappers, and every phase's wall-clock is reported via
:class:`repro.utils.timing.StageTimer`.

Run with:  python examples/train_and_bake_nerf.py   (takes a minute or two)
Select an execution backend with REPRO_BACKEND=serial|thread|process.
"""

from __future__ import annotations

from repro.baking import bake_field
from repro.metrics import psnr, ssim
from repro.nerf import train_distilled_field, train_nerf_from_images
from repro.render import RenderEngine
from repro.scenes.cameras import orbit_cameras
from repro.scenes.library import make_single_object_scene
from repro.utils.timing import StageTimer


def main() -> None:
    timers = StageTimer()
    engine = RenderEngine()
    print(f"Execution backend: {engine.backend.describe()}")

    scene = make_single_object_scene("torus")
    cameras = orbit_cameras(scene.center, radius=1.35 * scene.extent, count=6, width=48, height=48)
    with timers.time("ground-truth"):
        # One cross-view batch renders all six training views together.
        views = engine.render_scene_views(scene, cameras, scene_key="torus-example")
    test_camera = orbit_cameras(
        scene.center, radius=1.35 * scene.extent, count=1, elevation_deg=40.0, width=96, height=96
    )[0]
    with timers.time("ground-truth"):
        reference = engine.render_scene(scene, test_camera, scene_key="torus-example")

    # 1. Classic NeRF training from images (photometric loss, manual gradients).
    print("\nTraining an image-based NeRF (numpy MLP)...")
    with timers.time("train"):
        nerf, log = train_nerf_from_images(
            views, cameras, scene.bounds_min, scene.bounds_max,
            num_iterations=250, rays_per_batch=192, num_samples=32, seed=0,
        )
    print(f"  photometric loss: {log.initial_loss:.4f} -> {log.final_loss:.4f}")
    with timers.time("render"):
        rendered = engine.volume_render_field(nerf, test_camera, num_samples=96)
    print(f"  volume-rendered novel view vs ground truth: SSIM {ssim(reference.rgb, rendered.rgb):.3f}")

    # 2. Distillation training (fast path used when the target field is known).
    print("\nDistilling the analytic field into an MLP field...")
    with timers.time("distill"):
        distilled, dist_log = train_distilled_field(scene, num_iterations=400, batch_size=1024, seed=0)
    print(f"  distillation loss: {dist_log.initial_loss:.4f} -> {dist_log.final_loss:.4f}")

    # 3. Bake the distilled field at two configurations and compare.
    print("\nBaking the distilled field (the mobile-ready representation):")
    for granularity, patch in [(24, 2), (56, 3)]:
        with timers.time("bake"):
            baked = bake_field(distilled, granularity, patch, name=f"torus_g{granularity}")
        with timers.time("render"):
            view = engine.render_baked(baked, test_camera)
        print(
            f"  (g={granularity:3d}, p={patch})  size {baked.size_mb():6.2f} MB, "
            f"{baked.num_faces:6d} faces | SSIM {ssim(reference.rgb, view.rgb):.3f}, "
            f"PSNR {psnr(reference.rgb, view.rgb):.1f} dB"
        )

    print("\nHigher granularity costs more memory and buys more quality — the")
    print("trade-off NeRFlex's profiler predicts and its DP selector optimises.")

    print("\nStage timings:")
    for stage, seconds in timers.as_dict().items():
        print(f"  {stage:13s} {seconds:7.2f} s")
    print(f"  {'total':13s} {timers.total():7.2f} s")


if __name__ == "__main__":
    main()
