"""Sharded scene evaluation: the cluster backend, transport by transport.

The paper's per-object decomposition makes every heavy pipeline stage
shardable: profile fits shard by object, bake geometry by sub-model and
deploy ray marching by chunk.  This example runs the same staged pipeline
under the serial reference and then under the cluster backend with
increasing worker counts — on both worker transports — verifying along
the way that every run is **bit-identical** (sharding and transport are
pure scheduling decisions, never numerical ones) and printing the
wall-clock split plus the cluster's scheduling statistics: shards
planned/dispatched, speculative steals, store-discounted items, and the
worker-lifecycle counters of the tentpole — daemons spawned vs *reused*
across the pipeline's consecutive maps through the host's callable-token
registry.

Run with:  python examples/sharded_evaluation.py
Set REPRO_TRANSPORT=tcp to run every cluster pass on loopback-TCP workers
(the multi-machine-shaped wire protocol) instead of socketpair+fork.
Set REPRO_ARTIFACT_DIR=... to share an on-disk artifact store with the
workers — already-persisted profiles and bakes then show up as cheap
shards in the planner and are loaded, not recomputed, inside the workers.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.config_space import ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.device.models import IPHONE_13
from repro.exec import ClusterBackend, SerialBackend, create_artifact_store
from repro.scenes.dataset import generate_dataset
from repro.scenes.scene import compose_scene


def build_dataset():
    scene = compose_scene(
        ["hotdog", "torus", "lego"], layout="cluster", spacing=1.1, seed=0
    )
    return generate_dataset(
        scene, num_train=6, num_test=2, resolution=96, name="sharded-quickstart"
    )


def build_config() -> PipelineConfig:
    return PipelineConfig(
        config_space=ConfigurationSpace(
            granularities=(16, 24, 32, 48), patch_sizes=(1, 2, 3)
        ),
        profile_resolution=96,
        object_eval_resolution=96,
    )


def report_record(preparation, multi_model, report) -> str:
    """Timing-free JSON fingerprint of one run, for bit-identity checks."""
    return json.dumps(
        {
            "assignments": {
                name: config.as_tuple()
                for name, config in sorted(preparation.selection.assignments.items())
            },
            "size_mb": multi_model.size_mb(),
            "ssim": report.ssim,
            "psnr": report.psnr,
            "lpips": report.lpips,
            "per_object_ssim": dict(sorted(report.per_object_ssim.items())),
        },
        sort_keys=True,
    )


def run_once(backend, dataset):
    pipeline = NeRFlexPipeline(
        IPHONE_13, build_config(), artifacts=create_artifact_store(), backend=backend
    )
    start = time.perf_counter()
    preparation, multi_model, report = pipeline.run(dataset)
    elapsed = time.perf_counter() - start
    return report_record(preparation, multi_model, report), elapsed, report


def main() -> None:
    dataset = build_dataset()
    print(f"Scene objects: {dataset.scene.instance_names}")
    print(f"Host CPUs: {os.cpu_count()}")

    reference, serial_seconds, _ = run_once(SerialBackend(), dataset)
    print(f"\nserial reference: {serial_seconds:.1f}s")

    for workers in (1, 2, 4):
        backend = ClusterBackend(workers=workers)
        record, elapsed, report = run_once(backend, dataset)
        identical = "bit-identical" if record == reference else "MISMATCH"
        print(
            f"\ncluster({workers}) over {backend.transport.describe()}: "
            f"{elapsed:.1f}s  [{identical} vs serial]"
        )
        stats = backend.stats
        host = backend.host
        print(
            f"  shards: {stats.shards_planned} planned, "
            f"{stats.shards_dispatched} dispatched "
            f"({stats.speculative_dispatches} speculative steals), "
            f"{stats.serial_fallbacks} small maps ran inline"
        )
        print(
            f"  worker lifecycle: {stats.workers_spawned} daemons spawned over "
            f"{stats.task_registrations} task registrations, "
            f"{stats.workers_reused} daemon-reuses across {stats.maps} maps "
            f"({stats.maps_reusing_daemons} maps respawned nothing; "
            f"host lifetime: {host.spawn_count} spawns, "
            f"{host.reused_maps} fully reused maps)"
        )
        if stats.store_cheap_items:
            print(f"  store-aware planning: {stats.store_cheap_items} cheap items")
        stage_parts = ", ".join(
            f"{name} {seconds:.1f}s" for name, seconds in report.stage_seconds.items()
        )
        print(f"  stages: {stage_parts}")
        worker_parts = ", ".join(
            f"{name} {seconds:.1f}s"
            for name, seconds in sorted(report.worker_seconds.items())
            if seconds >= 0.05
        )
        if worker_parts:
            print(f"  worker-side: {worker_parts}")
        backend.shutdown()


if __name__ == "__main__":
    main()
