"""Quickstart: run the staged NeRFlex pipeline on a small synthetic scene.

This walks through the paper's workflow end to end on a laptop-sized
workload, stage by stage:

1. build a multi-object scene and render its training/testing views;
2. run the staged preparation — detail-based segmentation, lightweight
   profiling (fanned out through the execution backend) and the DP
   configuration selector for a target mobile device;
3. bake the selected per-object representations;
4. "deploy" the bundle to the device simulator and report data size,
   rendering quality, the simulated frame rate — and the wall-clock split
   of every stage.

Run with:  python examples/quickstart.py
Select an execution backend with REPRO_BACKEND=serial|thread|process|cluster
(see examples/sharded_evaluation.py for the cluster backend in detail).
Set REPRO_ARTIFACT_DIR=... to persist profile curves and baked models on
disk — a second invocation then skips the profile and bake stages entirely
(compare the stage timings of two consecutive runs).
"""

from __future__ import annotations

from repro.core.config_space import ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig
from repro.device.models import IPHONE_13
from repro.exec import create_artifact_store
from repro.scenes.dataset import generate_dataset
from repro.scenes.scene import compose_scene


def main() -> None:
    # 1. A compact three-object scene (mixed geometric complexity).
    scene = compose_scene(["hotdog", "torus", "lego"], layout="cluster", spacing=1.1, seed=0)
    dataset = generate_dataset(scene, num_train=6, num_test=2, resolution=96, name="quickstart")
    print(f"Scene objects: {scene.instance_names}")
    print(f"Training views: {dataset.num_train}, test views: {dataset.num_test}")

    # 2. NeRFlex preparation for the iPhone 13 budget (240 MB).  A reduced
    #    configuration space keeps this example fast.  The backend is
    #    resolved from REPRO_BACKEND (serial / thread / process).
    config = PipelineConfig(
        config_space=ConfigurationSpace(granularities=(16, 24, 32, 48, 64), patch_sizes=(1, 2, 3)),
        profile_resolution=112,
        object_eval_resolution=112,
    )
    artifacts = create_artifact_store()  # disk-backed iff REPRO_ARTIFACT_DIR is set
    pipeline = NeRFlexPipeline(IPHONE_13, config, artifacts=artifacts)
    print(f"Execution backend: {pipeline.backend.describe()}")
    if artifacts.disk is not None:
        print(f"Persistent artifact store: {artifacts.disk.root}")
    preparation = pipeline.prepare(dataset)

    print("\nDetail-based segmentation:")
    for sub_scene in preparation.segmentation.sub_scenes:
        kind = "dedicated NeRF" if sub_scene.dedicated else "joint NeRF"
        print(
            f"  {sub_scene.name:10s} -> {kind}, max detail frequency "
            f"{sub_scene.max_frequency:.3f}, mean enlargement x{sub_scene.mean_enlargement:.1f}"
        )

    print("\nSelected configurations (DP selector, budget 240 MB):")
    for name, cfg in preparation.selection.assignments.items():
        print(
            f"  {name:10s} -> g={cfg.granularity:3d}, p={cfg.patch_size}  "
            f"(predicted {preparation.selection.predicted_size_mb[name]:.1f} MB, "
            f"SSIM {preparation.selection.predicted_quality[name]:.3f})"
        )

    # 3 + 4. Bake and deploy (timed as their own stages on the shared timers).
    multi_model = pipeline.bake(preparation)
    report = pipeline.deploy(multi_model, dataset, preparation)

    print("\nDeployment on", report.device_name)
    print(f"  baked data size : {report.size_mb:.1f} MB ({report.num_submodels} sub-models)")
    print(f"  loaded          : {report.loaded}")
    print(f"  scene SSIM      : {report.ssim:.4f}   PSNR: {report.psnr:.2f} dB   LPIPS: {report.lpips:.4f}")
    print(f"  average FPS     : {report.average_fps:.1f}")
    print("  per-object SSIM :", {k: round(v, 3) for k, v in report.per_object_ssim.items()})

    print(f"\nStage timings ({report.backend_name} backend):")
    for stage, seconds in report.stage_seconds.items():
        worker = report.worker_seconds.get(stage)
        render = report.worker_seconds.get(f"render:{stage}")
        extra = f"  (worker-side {worker:.2f} s)" if worker else ""
        extra += f"  (engine chunks {render:.2f} s)" if render else ""
        print(f"  {stage:12s} {seconds:7.2f} s{extra}")
    print(f"  {'total':12s} {sum(report.stage_seconds.values()):7.2f} s")
    stats = report.artifact_stats
    if stats:
        print(
            f"\nArtifact store: {stats['hits']} hits "
            f"({stats['disk_hits']} from disk), recomputed "
            f"{stats['recompute_by_kind'] or 'nothing'}"
        )


if __name__ == "__main__":
    main()
