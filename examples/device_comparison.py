"""Device comparison: how NeRFlex adapts one scene to different phones.

Reproduces the paper's central resource-awareness claim on a small workload:
the same scene is prepared for an iPhone 13 (240 MB budget) and a Pixel 4
(150 MB budget), and compared against the resource-oblivious baselines
(single MobileNeRF and Block-NeRF).  NeRFlex re-allocates granularity across
objects per device; the baselines either overflow the device or give up
quality everywhere.

Both device runs share one content-addressed artifact store, so the second
device reuses every profile curve fitted for the first (the profiles depend
on the scene, never the device) — the stage timings printed per device show
the profiler stage collapsing to almost nothing on the second run.

Set REPRO_ARTIFACT_DIR to make the store persistent: the first invocation
pays the full profile+bake cost and writes the artefacts to disk, and every
later invocation of this script (or of the benchmarks on the same scene)
starts warm — the store summary at the end shows the disk hits.

Run with:  python examples/device_comparison.py
Select an execution backend with REPRO_BACKEND=serial|thread|process.
"""

from __future__ import annotations

from repro.baselines import BlockNeRFBaseline, SingleNeRFBaseline
from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.pipeline import NeRFlexPipeline, PipelineConfig, evaluate_baked_deployment
from repro.device.models import IPHONE_13, PIXEL_4
from repro.exec import create_artifact_store
from repro.scenes.dataset import generate_dataset
from repro.scenes.library import make_simulated_scene


def main() -> None:
    scene = make_simulated_scene(4, seed=0)  # hotdog, ficus, chair, ship, lego
    dataset = generate_dataset(scene, num_train=6, num_test=1, resolution=96, name="scene4")
    print(f"Scene 4 objects: {scene.instance_names}\n")

    config = PipelineConfig(
        config_space=ConfigurationSpace(granularities=(16, 24, 32, 48, 64, 96), patch_sizes=(1, 2, 3)),
        profile_resolution=112,
        object_eval_resolution=112,
        num_eval_views=1,
    )
    shared_cache: dict = {}
    # Disk-backed when REPRO_ARTIFACT_DIR is set; memory-only otherwise.
    artifacts = create_artifact_store()
    if artifacts.disk is not None:
        print(f"Persistent artifact store: {artifacts.disk.root}\n")

    for device in (IPHONE_13, PIXEL_4):
        pipeline = NeRFlexPipeline(
            device, config, measurement_cache=shared_cache, artifacts=artifacts
        )
        preparation, multi_model, report = pipeline.run(dataset)
        print(f"--- NeRFlex on {device.name} (budget {device.memory_budget_mb:.0f} MB) ---")
        for name, cfg in sorted(preparation.selection.assignments.items()):
            print(f"  {name:8s} g={cfg.granularity:3d} p={cfg.patch_size}  {report.per_object_size_mb[name]:6.1f} MB")
        print(
            f"  total {report.size_mb:.1f} MB | scene SSIM {report.ssim:.4f} | "
            f"avg FPS {report.average_fps:.1f}"
        )
        stage_line = "  ".join(
            f"{stage} {seconds:.2f}s" for stage, seconds in report.stage_seconds.items()
        )
        print(f"  stages ({report.backend_name} backend): {stage_line}\n")

    print(
        f"Artifact store after both devices: {len(artifacts)} artefacts, "
        f"{artifacts.stats.hits} reused ({artifacts.stats.disk_hits} from disk), "
        f"reuse by kind {artifacts.reuse_by_kind()}, "
        f"recomputed {artifacts.recompute_by_kind() or 'nothing'}\n"
    )

    # Resource-oblivious baselines at the recommended configuration.
    baseline_config = Configuration(96, 3)  # scaled-down recommended config for this example
    single_model = SingleNeRFBaseline(config=baseline_config).bake(dataset)
    block_model = BlockNeRFBaseline(config=baseline_config).bake(
        dataset, geometry_cache=shared_cache
    )
    for label, model in [("Single NeRF (MobileNeRF)", single_model), ("Block-NeRF", block_model)]:
        for device in (IPHONE_13, PIXEL_4):
            report = evaluate_baked_deployment(
                model, dataset, device, method=label, num_eval_views=1, gt_cache=shared_cache
            )
            status = "loads" if report.loaded else "FAILS TO LOAD"
            quality = f"SSIM {report.ssim:.4f}, {report.average_fps:.1f} FPS" if report.loaded else "-"
            print(f"{label:26s} on {device.name:9s}: {report.size_mb:7.1f} MB  {status:14s} {quality}")


if __name__ == "__main__":
    main()
