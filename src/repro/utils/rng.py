"""Deterministic random-number-generator helpers.

All stochastic components in the library accept either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalise both into a
generator and derive stream-independent child generators, so experiments are
reproducible end to end without any global seeding.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Args:
        seed: an integer seed, an existing generator (returned unchanged), or
            ``None`` for a default, fixed seed (``0``).  Using a fixed default
            keeps library behaviour deterministic unless the caller opts in to
            a different seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: "int | str") -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key path.

    The same parent state and keys always produce the same child stream, so a
    pipeline stage can be re-run in isolation without perturbing the streams
    used by other stages.
    """
    material = []
    for key in keys:
        if isinstance(key, str):
            material.extend(ord(ch) for ch in key)
        else:
            material.append(int(key))
    # Mix the parent's own entropy with the key path.
    parent_word = int(rng.integers(0, 2**32 - 1))
    seed_seq = np.random.SeedSequence([parent_word, *material])
    return np.random.default_rng(seed_seq)
