"""Small image-processing helpers shared across the library.

Images are ``float64``/``float32`` numpy arrays in ``[0, 1]`` with shape
``(H, W)`` for grayscale or ``(H, W, 3)`` for RGB.  Masks are boolean arrays
of shape ``(H, W)``.
"""

from __future__ import annotations

import numpy as np


def clamp01(image: np.ndarray) -> np.ndarray:
    """Clamp an image to the valid ``[0, 1]`` range."""
    return np.clip(image, 0.0, 1.0)


def to_gray(image: np.ndarray) -> np.ndarray:
    """Convert an RGB image to grayscale using Rec. 601 luma weights.

    Grayscale inputs are returned unchanged (as float).
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return image
    if image.ndim == 3 and image.shape[-1] == 3:
        weights = np.array([0.299, 0.587, 0.114])
        return image @ weights
    raise ValueError(f"expected (H, W) or (H, W, 3) image, got shape {image.shape}")


def bbox_from_mask(mask: np.ndarray, margin: int = 0) -> tuple[int, int, int, int]:
    """Return the tight bounding box ``(row0, col0, row1, col1)`` of a mask.

    ``row1``/``col1`` are exclusive.  ``margin`` expands the box on every side
    (clamped to the image).  Raises ``ValueError`` if the mask is empty.
    """
    mask = np.asarray(mask, dtype=bool)
    rows = np.any(mask, axis=1)
    cols = np.any(mask, axis=0)
    if not rows.any():
        raise ValueError("bbox_from_mask: mask is empty")
    row0, row1 = int(np.argmax(rows)), int(len(rows) - np.argmax(rows[::-1]))
    col0, col1 = int(np.argmax(cols)), int(len(cols) - np.argmax(cols[::-1]))
    row0 = max(0, row0 - margin)
    col0 = max(0, col0 - margin)
    row1 = min(mask.shape[0], row1 + margin)
    col1 = min(mask.shape[1], col1 + margin)
    return row0, col0, row1, col1


def crop_to_bbox(image: np.ndarray, bbox: tuple[int, int, int, int]) -> np.ndarray:
    """Crop ``image`` to a ``(row0, col0, row1, col1)`` bounding box."""
    row0, col0, row1, col1 = bbox
    return image[row0:row1, col0:col1]


def pad_to_square(image: np.ndarray, fill: float = 0.0) -> np.ndarray:
    """Pad an image with ``fill`` so that height equals width (centred)."""
    height, width = image.shape[:2]
    side = max(height, width)
    pad_h = side - height
    pad_w = side - width
    top, bottom = pad_h // 2, pad_h - pad_h // 2
    left, right = pad_w // 2, pad_w - pad_w // 2
    pad_spec = [(top, bottom), (left, right)] + [(0, 0)] * (image.ndim - 2)
    return np.pad(image, pad_spec, mode="constant", constant_values=fill)


def resize_bilinear(image: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
    """Resize an image to ``(out_h, out_w)`` with bilinear interpolation.

    This is the interpolation-scaling primitive used by the segmentation
    module when it enlarges a cropped object to the full training-image size
    (NeRFlex §III-A).
    """
    image = np.asarray(image, dtype=np.float64)
    in_h, in_w = image.shape[:2]
    out_h, out_w = int(out_shape[0]), int(out_shape[1])
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"invalid output shape {out_shape}")
    if (in_h, in_w) == (out_h, out_w):
        return image.copy()

    # Sample positions in the source image (align corners = False convention).
    row_pos = (np.arange(out_h) + 0.5) * in_h / out_h - 0.5
    col_pos = (np.arange(out_w) + 0.5) * in_w / out_w - 0.5
    row_pos = np.clip(row_pos, 0.0, in_h - 1.0)
    col_pos = np.clip(col_pos, 0.0, in_w - 1.0)

    row0 = np.floor(row_pos).astype(int)
    col0 = np.floor(col_pos).astype(int)
    row1 = np.minimum(row0 + 1, in_h - 1)
    col1 = np.minimum(col0 + 1, in_w - 1)
    row_frac = (row_pos - row0)[:, None]
    col_frac = (col_pos - col0)[None, :]

    if image.ndim == 3:
        row_frac = row_frac[..., None]
        col_frac = col_frac[..., None]

    top_left = image[row0][:, col0]
    top_right = image[row0][:, col1]
    bottom_left = image[row1][:, col0]
    bottom_right = image[row1][:, col1]

    top = top_left * (1.0 - col_frac) + top_right * col_frac
    bottom = bottom_left * (1.0 - col_frac) + bottom_right * col_frac
    return top * (1.0 - row_frac) + bottom * row_frac
