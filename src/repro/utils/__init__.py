"""Shared utilities: RNG handling, image operations, timing and serialization."""

from repro.utils.rng import make_rng, derive_rng
from repro.utils.timing import Timer, StageTimer
from repro.utils.image import (
    to_gray,
    resize_bilinear,
    crop_to_bbox,
    bbox_from_mask,
    pad_to_square,
    clamp01,
)

__all__ = [
    "make_rng",
    "derive_rng",
    "Timer",
    "StageTimer",
    "to_gray",
    "resize_bilinear",
    "crop_to_bbox",
    "bbox_from_mask",
    "pad_to_square",
    "clamp01",
]
