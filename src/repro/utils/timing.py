"""Wall-clock timing helpers used for the overhead analysis (Fig. 9)."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A simple start/stop wall-clock timer usable as a context manager.

    Re-entrancy errors are explicit: ``start()`` on a running timer and
    ``stop()`` on a stopped one both raise :class:`RuntimeError` instead of
    silently corrupting the accumulated time.

    Example:
        >>> with Timer() as t:
        ...     _ = sum(range(1000))
        >>> t.elapsed >= 0.0
        True
    """

    elapsed: float = 0.0
    _start: float | None = None

    @property
    def running(self) -> bool:
        return self._start is not None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(
                "Timer.start() called while already running; stop() it first "
                "(a Timer instance is not re-entrant — use one per scope)"
            )
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named pipeline stage.

    The NeRFlex overhead analysis (Fig. 9) reports the split between the
    segmentation module, the performance profiler and the configuration
    solver; :class:`StageTimer` is how the pipeline collects that split.

    Two accountings are kept per stage:

    * ``stages`` — wall-clock time of the stage as observed by the caller
      (the ``with timer.time(name)`` window).  This is what
      :meth:`as_dict` / :meth:`fractions` report, matching the paper's
      single-machine overhead numbers.
    * ``worker_stages`` — CPU-side task time reported by execution backends
      (:meth:`add_worker`), summed across workers.  With a process pool the
      work happens outside this process, so without this channel it would be
      invisible to any per-stage attribution; with in-process execution it
      roughly mirrors the wall clock.  Exposed via :meth:`worker_as_dict`
      and kept out of the wall-clock totals so the two are never conflated.

    All mutation is lock-protected: thread backends may attribute worker
    time to the same stage concurrently.
    """

    stages: dict = field(default_factory=dict)
    worker_stages: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def time(self, name: str) -> "_StageContext":
        """Return a context manager that adds its elapsed time to ``name``."""
        return _StageContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    def add_worker(self, name: str, seconds: float) -> None:
        """Attribute backend worker-side task time to the owning stage."""
        with self._lock:
            self.worker_stages[name] = self.worker_stages.get(name, 0.0) + float(
                seconds
            )

    def total(self) -> float:
        with self._lock:
            return float(sum(self.stages.values()))

    def fractions(self) -> dict:
        """Return each stage's share of the total (empty dict if no time)."""
        total = self.total()
        if total <= 0.0:
            return {}
        with self._lock:
            return {name: value / total for name, value in self.stages.items()}

    def as_dict(self) -> dict:
        with self._lock:
            return dict(self.stages)

    def worker_as_dict(self) -> dict:
        with self._lock:
            return dict(self.worker_stages)

    def merge(self, other: "StageTimer") -> None:
        """Fold another timer's stage and worker accounting into this one."""
        for name, seconds in other.as_dict().items():
            self.add(name, seconds)
        for name, seconds in other.worker_as_dict().items():
            self.add_worker(name, seconds)


class _StageContext:
    def __init__(self, owner: StageTimer, name: str) -> None:
        self._owner = owner
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> Timer:
        return self._timer.start()

    def __exit__(self, *exc) -> None:
        self._timer.stop()
        self._owner.add(self._name, self._timer.elapsed)
