"""Wall-clock timing helpers used for the overhead analysis (Fig. 9)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A simple start/stop wall-clock timer usable as a context manager.

    Example:
        >>> with Timer() as t:
        ...     _ = sum(range(1000))
        >>> t.elapsed >= 0.0
        True
    """

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named pipeline stage.

    The NeRFlex overhead analysis (Fig. 9) reports the split between the
    segmentation module, the performance profiler and the configuration
    solver; :class:`StageTimer` is how the pipeline collects that split.
    """

    stages: dict = field(default_factory=dict)

    def time(self, name: str) -> "_StageContext":
        """Return a context manager that adds its elapsed time to ``name``."""
        return _StageContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    def total(self) -> float:
        return float(sum(self.stages.values()))

    def fractions(self) -> dict:
        """Return each stage's share of the total (empty dict if no time)."""
        total = self.total()
        if total <= 0.0:
            return {}
        return {name: value / total for name, value in self.stages.items()}

    def as_dict(self) -> dict:
        return dict(self.stages)


class _StageContext:
    def __init__(self, owner: StageTimer, name: str) -> None:
        self._owner = owner
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> Timer:
        return self._timer.start()

    def __exit__(self, *exc) -> None:
        self._timer.stop()
        self._owner.add(self._name, self._timer.elapsed)
