"""A lock-protected ordered map with optional LRU eviction.

Shared machinery of the library's two content-keyed stores — the render
cache (:class:`repro.render.cache.RenderCache`, which memoises images) and
the artifact store (:class:`repro.exec.artifacts.ArtifactStore`, which
memoises profile curves and baked models).  Both wrap this class and layer
their own hit/miss statistics on top; compound operations take
:attr:`lock` (re-entrant) so a wrapper can make "look up + count" atomic.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.analysis.sanitize import make_rlock

#: Sentinel distinguishing "stored None" from "absent" in :meth:`LockedLRU.get`.
MISS = object()


class LockedLRU:
    """An ordered ``key -> value`` map, thread-safe, optionally bounded.

    Args:
        max_entries: optional bound on the number of entries; the least
            recently used entry is evicted beyond it.  ``None`` = unbounded.
    """

    def __init__(self, max_entries: "int | None" = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        # The sanitizer seam: a plain RLock normally, a recording wrapper
        # under REPRO_SANITIZE=1 (see repro.analysis.sanitize).
        self.lock = make_rlock("LockedLRU")
        self._store: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        with self.lock:
            return len(self._store)

    def __contains__(self, key) -> bool:
        with self.lock:
            return key in self._store

    def get(self, key, default=MISS):
        """Value for ``key`` (refreshing its LRU position), else ``default``."""
        with self.lock:
            if key in self._store:
                self._store.move_to_end(key)
                return self._store[key]
            return default

    def put(self, key, value) -> bool:
        """Store ``value`` under ``key``; returns whether an entry was evicted."""
        with self.lock:
            self._store[key] = value
            self._store.move_to_end(key)
            if self.max_entries is not None and len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                return True
            return False

    def remove_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the count."""
        with self.lock:
            doomed = [key for key in self._store if predicate(key)]
            for key in doomed:
                del self._store[key]
            return len(doomed)

    def clear(self) -> int:
        """Drop every entry; returns how many were stored."""
        with self.lock:
            dropped = len(self._store)
            self._store.clear()
            return dropped
