"""Renderer for baked models: thin wrappers over the shared render engine.

This plays the role of the WebGL rasteriser on the mobile device: it draws
the baked quad mesh with its textures.  Rays are marched through the voxel
grid to the first occupied cell, the entry face of that cell is identified
and its texture patch is sampled.  Several baked sub-models (the multi-NeRF
case) are composited by depth.

The marching itself lives in :class:`repro.render.RenderEngine` (the unified
batched marcher shared with the sphere tracer and the volume renderer); the
functions here keep the historical module-level API working.  Use the engine
directly for cross-view batching and render caching.
"""

from __future__ import annotations

from repro.baking.baked_model import BakedMultiModel, BakedSubModel
from repro.scenes.cameras import Camera
from repro.scenes.raytrace import RenderResult


def render_baked(
    model: BakedSubModel,
    camera: Camera,
    background=(1.0, 1.0, 1.0),
    step_scale: float = 0.5,
    chunk_rays: int = 8192,
) -> RenderResult:
    """Render one baked sub-model from a camera viewpoint."""
    return render_baked_multi(
        BakedMultiModel([model]),
        camera,
        background=background,
        step_scale=step_scale,
        chunk_rays=chunk_rays,
    )


def render_baked_multi(
    multi: "BakedMultiModel | list",
    camera: Camera,
    background=(1.0, 1.0, 1.0),
    step_scale: float = 0.5,
    chunk_rays: int = 8192,
) -> RenderResult:
    """Render and depth-composite several baked sub-models.

    This is the multi-NeRF playback path: each sub-scene's baked model is
    rendered independently and the closest surface wins each pixel, matching
    how the on-device player composites the outputs of multiple NeRFs.
    """
    from repro.render.engine import engine_for_chunk

    if isinstance(multi, list):
        multi = BakedMultiModel(multi)
    return engine_for_chunk(chunk_rays).render_baked(
        multi, camera, background=background, step_scale=step_scale
    )
