"""Renderer for baked models: a vectorised occupancy-grid ray marcher.

This plays the role of the WebGL rasteriser on the mobile device: it draws
the baked quad mesh with its textures.  Rays are marched through the voxel
grid to the first occupied cell, the entry face of that cell is identified
and its texture patch is sampled.  Several baked sub-models (the multi-NeRF
case) are composited by depth.
"""

from __future__ import annotations

import numpy as np

from repro.baking.baked_model import BakedMultiModel, BakedSubModel
from repro.baking.meshing import _TANGENT_AXES
from repro.scenes.cameras import Camera, camera_rays
from repro.scenes.raytrace import RenderResult


def _face_keys(model: BakedSubModel) -> tuple:
    """Sorted integer keys for (voxel, axis, sign) face lookup."""
    g = model.grid.resolution
    idx = model.faces.voxel_indices
    voxel_key = (idx[:, 0] * g + idx[:, 1]) * g + idx[:, 2]
    face_key = voxel_key * 6 + model.faces.axes * 2 + (model.faces.signs > 0)
    order = np.argsort(face_key, kind="stable")
    return face_key[order], order, voxel_key[order]


def _ray_aabb(origins, directions, lo, hi):
    """Slab-method ray/AABB intersection; returns (t_near, t_far)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / directions
    t_lo = (lo - origins) * inv
    t_hi = (hi - origins) * inv
    t_near = np.nanmax(np.minimum(t_lo, t_hi), axis=1)
    t_far = np.nanmin(np.maximum(t_lo, t_hi), axis=1)
    return t_near, t_far


def _render_single(
    model: BakedSubModel,
    origins: np.ndarray,
    directions: np.ndarray,
    step_scale: float,
    chunk_rays: int,
) -> tuple:
    """First-hit rendering of one baked model.

    Returns ``(colors, depths, hit_mask)`` flat arrays over all rays; rays
    that do not hit the model keep ``depth = inf`` and ``hit = False``.
    """
    num_rays = origins.shape[0]
    colors = np.zeros((num_rays, 3))
    depths = np.full(num_rays, np.inf)
    hits = np.zeros(num_rays, dtype=bool)

    if model.faces.num_faces == 0:
        return colors, depths, hits

    grid = model.grid
    lo, hi = grid.bounds_min, grid.bounds_max
    voxel = grid.voxel_size
    step = voxel * step_scale

    face_keys_sorted, face_order, voxel_keys_sorted = _face_keys(model)
    g = grid.resolution

    t_near, t_far = _ray_aabb(origins, directions, lo, hi)
    t_near = np.maximum(t_near, 0.0)
    candidates = np.flatnonzero(t_far > t_near)

    for start in range(0, candidates.size, chunk_rays):
        ray_ids = candidates[start : start + chunk_rays]
        ray_origins = origins[ray_ids]
        ray_dirs = directions[ray_ids]
        ray_near = t_near[ray_ids]
        ray_far = t_far[ray_ids]

        span = float(np.max(ray_far - ray_near))
        num_steps = max(int(np.ceil(span / step)) + 1, 1)
        t_samples = ray_near[:, None] + (np.arange(num_steps)[None, :] + 0.5) * step
        valid = t_samples <= ray_far[:, None]

        points = ray_origins[:, None, :] + t_samples[..., None] * ray_dirs[:, None, :]
        indices = np.floor((points - lo) / voxel).astype(int)
        inside = np.all((indices >= 0) & (indices < g), axis=-1)
        clipped = np.clip(indices, 0, g - 1)
        occupied = grid.occupancy[clipped[..., 0], clipped[..., 1], clipped[..., 2]]
        occupied = occupied & inside & valid

        any_hit = occupied.any(axis=1)
        if not any_hit.any():
            continue
        first = occupied.argmax(axis=1)
        hit_rows = np.flatnonzero(any_hit)
        hit_voxels = clipped[hit_rows, first[hit_rows]]

        # Exact entry point into the hit voxel (slab test on its AABB).
        voxel_lo = lo + hit_voxels * voxel
        voxel_hi = voxel_lo + voxel
        sub_origins = ray_origins[hit_rows]
        sub_dirs = ray_dirs[hit_rows]
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / sub_dirs
        t_lo_axis = (voxel_lo - sub_origins) * inv
        t_hi_axis = (voxel_hi - sub_origins) * inv
        t_axis_entry = np.minimum(t_lo_axis, t_hi_axis)
        # Guard against rays parallel to an axis (inv = inf -> t = -inf/nan).
        t_axis_entry = np.where(np.isfinite(t_axis_entry), t_axis_entry, -np.inf)
        entry_axis = t_axis_entry.argmax(axis=1)
        t_entry = np.maximum(t_axis_entry[np.arange(len(hit_rows)), entry_axis], 0.0)
        entry_points = sub_origins + t_entry[:, None] * sub_dirs
        entry_sign = np.where(sub_dirs[np.arange(len(hit_rows)), entry_axis] > 0, -1, 1)

        # Face lookup: exact (voxel, axis, sign) key, falling back to any
        # face of the voxel when marching entered through an interior face.
        voxel_key = (hit_voxels[:, 0] * g + hit_voxels[:, 1]) * g + hit_voxels[:, 2]
        face_key = voxel_key * 6 + entry_axis * 2 + (entry_sign > 0)
        pos = np.searchsorted(face_keys_sorted, face_key)
        pos = np.clip(pos, 0, len(face_keys_sorted) - 1)
        found = face_keys_sorted[pos] == face_key
        face_indices = face_order[pos]
        if not found.all():
            fallback_pos = np.searchsorted(voxel_keys_sorted, voxel_key[~found])
            fallback_pos = np.clip(fallback_pos, 0, len(voxel_keys_sorted) - 1)
            face_indices[~found] = face_order[fallback_pos]

        # In-face texture coordinates from the entry point.
        local = (entry_points - voxel_lo) / voxel
        tangent_u = np.array([_TANGENT_AXES[a][0] for a in entry_axis])
        tangent_v = np.array([_TANGENT_AXES[a][1] for a in entry_axis])
        rows = np.arange(len(hit_rows))
        u = np.clip(local[rows, tangent_u], 0.0, 1.0)
        v = np.clip(local[rows, tangent_v], 0.0, 1.0)

        sampled = model.texture.sample(face_indices, u, v)
        global_rows = ray_ids[hit_rows]
        colors[global_rows] = sampled
        depths[global_rows] = t_entry
        hits[global_rows] = True

    return colors, depths, hits


def render_baked(
    model: BakedSubModel,
    camera: Camera,
    background=(1.0, 1.0, 1.0),
    step_scale: float = 0.5,
    chunk_rays: int = 8192,
) -> RenderResult:
    """Render one baked sub-model from a camera viewpoint."""
    return render_baked_multi(
        BakedMultiModel([model]),
        camera,
        background=background,
        step_scale=step_scale,
        chunk_rays=chunk_rays,
    )


def render_baked_multi(
    multi: "BakedMultiModel | list",
    camera: Camera,
    background=(1.0, 1.0, 1.0),
    step_scale: float = 0.5,
    chunk_rays: int = 8192,
) -> RenderResult:
    """Render and depth-composite several baked sub-models.

    This is the multi-NeRF playback path: each sub-scene's baked model is
    rendered independently and the closest surface wins each pixel, matching
    how the on-device player composites the outputs of multiple NeRFs.
    """
    if isinstance(multi, list):
        multi = BakedMultiModel(multi)
    origins, directions = camera_rays(camera)
    num_rays = origins.shape[0]
    background = np.asarray(background, dtype=np.float64)

    best_colors = np.tile(background, (num_rays, 1))
    best_depths = np.full(num_rays, np.inf)
    best_ids = np.full(num_rays, -1, dtype=int)

    for submodel_index, submodel in enumerate(multi.submodels):
        colors, depths, hits = _render_single(
            submodel, origins, directions, step_scale=step_scale, chunk_rays=chunk_rays
        )
        closer = hits & (depths < best_depths)
        best_colors[closer] = colors[closer]
        best_depths[closer] = depths[closer]
        best_ids[closer] = submodel_index

    height, width = camera.height, camera.width
    return RenderResult(
        rgb=best_colors.reshape(height, width, 3),
        depth=best_depths.reshape(height, width),
        object_ids=best_ids.reshape(height, width),
        hit_mask=(best_ids >= 0).reshape(height, width),
    )
