"""Voxelisation of a field onto a cubic ``g^3`` occupancy grid.

The mesh-granularity knob ``g`` of NeRFlex is the number of voxels allocated
per axis.  Voxelisation pads the field's bounding box to a cube (so voxels
are cubic), samples the signed distance at every cell centre and marks cells
with non-positive distance as occupied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class VoxelGrid:
    """A cubic occupancy grid.

    Attributes:
        origin: world position of the grid's minimum corner.
        voxel_size: edge length of one (cubic) voxel.
        resolution: number of voxels per axis (``g``).
        occupancy: ``(g, g, g)`` boolean array, indexed ``[ix, iy, iz]``.
    """

    origin: np.ndarray
    voxel_size: float
    resolution: int
    occupancy: np.ndarray

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.float64)
        self.occupancy = np.asarray(self.occupancy, dtype=bool)
        expected = (self.resolution,) * 3
        if self.occupancy.shape != expected:
            raise ValueError(
                f"occupancy shape {self.occupancy.shape} does not match resolution {expected}"
            )

    @property
    def bounds_min(self) -> np.ndarray:
        return self.origin

    @property
    def bounds_max(self) -> np.ndarray:
        return self.origin + self.voxel_size * self.resolution

    @property
    def num_occupied(self) -> int:
        return int(self.occupancy.sum())

    def cell_centers(self, indices: np.ndarray) -> np.ndarray:
        """World-space centres of the voxels at the given ``(N, 3)`` indices."""
        indices = np.asarray(indices, dtype=np.float64)
        return self.origin + (indices + 0.5) * self.voxel_size

    def world_to_index(self, points: np.ndarray) -> np.ndarray:
        """Integer voxel indices containing the given world points."""
        points = np.asarray(points, dtype=np.float64)
        return np.floor((points - self.origin) / self.voxel_size).astype(int)

    def contains_index(self, indices: np.ndarray) -> np.ndarray:
        """Boolean mask: which of the ``(N, 3)`` indices lie inside the grid."""
        indices = np.asarray(indices)
        return np.all((indices >= 0) & (indices < self.resolution), axis=-1)

    def occupied_at(self, indices: np.ndarray) -> np.ndarray:
        """Occupancy lookup with out-of-grid indices treated as empty."""
        indices = np.asarray(indices)
        inside = self.contains_index(indices)
        clipped = np.clip(indices, 0, self.resolution - 1)
        values = self.occupancy[clipped[..., 0], clipped[..., 1], clipped[..., 2]]
        return values & inside


def _cubic_bounds(bounds_min: np.ndarray, bounds_max: np.ndarray, padding: float) -> tuple:
    """Pad an AABB to a cube (equal side lengths, shared centre)."""
    bounds_min = np.asarray(bounds_min, dtype=np.float64)
    bounds_max = np.asarray(bounds_max, dtype=np.float64)
    center = 0.5 * (bounds_min + bounds_max)
    side = float(np.max(bounds_max - bounds_min)) * (1.0 + padding)
    if side <= 0:
        raise ValueError("field has a degenerate bounding box")
    half = 0.5 * side
    return center - half, center + half


#: Coarse-to-fine block edge of the hierarchical voxeliser.
_REFINE_FACTOR = 4
#: Safety multiplier on the assumed SDF Lipschitz constant.  Fields that
#: distort distances (e.g. the degradation model's geometry noise) can
#: advertise a larger bound via an ``sdf_lipschitz`` attribute.
_LIPSCHITZ_SAFETY = 2.0


def _chunked_sdf(field, centers: np.ndarray, chunk_size: int) -> np.ndarray:
    values = np.empty(centers.shape[0])
    for start in range(0, centers.shape[0], chunk_size):
        stop = start + chunk_size
        values[start:stop] = field.sdf(centers[start:stop])
    return values


def voxelize_field(
    field,
    resolution: int,
    padding: float = 0.06,
    occupancy_threshold: float = 0.0,
    chunk_size: int = 262144,
) -> VoxelGrid:
    """Sample a field's SDF onto a cubic occupancy grid.

    For large resolutions divisible by the refinement factor, sampling is
    hierarchical: the SDF is first evaluated on a 4x-coarser lattice, and a
    fine cell is only evaluated individually when its coarse sample lies
    within the (safety-scaled) Lipschitz bound of the occupancy threshold —
    otherwise the sign of ``sdf - threshold`` provably cannot change
    anywhere inside the coarse block, so the whole block inherits it.  The
    occupancy is identical to evaluating every cell centre (the fine
    centres that *are* evaluated use the exact same coordinates), at an
    order of magnitude fewer SDF evaluations for large ``g``.  Only fields
    that *advertise* a finite Lipschitz bound via an ``sdf_lipschitz``
    attribute take the hierarchical path (scenes and placed objects are
    exact 1-Lipschitz SDF compositions; :class:`~repro.nerf.degradation.
    DegradedField` derives its bound from the noise slope); everything
    else — notably MLP-backed pseudo-SDFs with unbounded gradients — is
    sampled exhaustively.

    Args:
        field: any object with ``sdf(points)`` and ``bounds_min``/``bounds_max``
            (a :class:`~repro.scenes.scene.Scene`, a placed object, or a
            trained/degraded radiance field).
        resolution: the mesh-granularity knob ``g`` (voxels per axis).
        padding: fractional padding added around the field bounds.
        occupancy_threshold: cells with ``sdf <= threshold`` are occupied; a
            small positive value makes voxelisation slightly conservative so
            thin structures survive at low ``g``.
        chunk_size: number of cell centres evaluated per SDF call (bounds the
            peak memory of the field evaluation).
    """
    if resolution < 2:
        raise ValueError("voxel resolution must be at least 2")
    lo, hi = _cubic_bounds(field.bounds_min, field.bounds_max, padding)
    voxel_size = float((hi - lo)[0]) / resolution
    threshold = float(occupancy_threshold)

    # Hierarchical pruning is only sound for fields that explicitly
    # advertise a finite Lipschitz bound; anything else (e.g. MLP-backed
    # pseudo-SDFs, whose gradients are unbounded) is sampled exhaustively.
    lipschitz = getattr(field, "sdf_lipschitz", None)
    if (
        resolution >= 8 * _REFINE_FACTOR
        and resolution % _REFINE_FACTOR == 0
        and lipschitz is not None
        and np.isfinite(lipschitz)
    ):
        occupancy = _voxelize_hierarchical(
            field, lo, voxel_size, int(resolution), threshold, chunk_size
        )
    else:
        coords = (np.arange(resolution) + 0.5) * voxel_size
        grid_x, grid_y, grid_z = np.meshgrid(coords, coords, coords, indexing="ij")
        centers = np.stack([grid_x, grid_y, grid_z], axis=-1).reshape(-1, 3) + lo
        occupancy = (_chunked_sdf(field, centers, chunk_size) <= threshold).reshape(
            resolution, resolution, resolution
        )

    return VoxelGrid(
        origin=lo,
        voxel_size=voxel_size,
        resolution=int(resolution),
        occupancy=occupancy,
    )


def _voxelize_hierarchical(
    field,
    lo: np.ndarray,
    voxel_size: float,
    resolution: int,
    threshold: float,
    chunk_size: int,
) -> np.ndarray:
    """Coarse-to-fine occupancy sampling with a Lipschitz pruning bound."""
    factor = _REFINE_FACTOR
    coarse_res = resolution // factor
    coarse_voxel = voxel_size * factor

    coarse_coords = (np.arange(coarse_res) + 0.5) * coarse_voxel
    grid_x, grid_y, grid_z = np.meshgrid(
        coarse_coords, coarse_coords, coarse_coords, indexing="ij"
    )
    coarse_centers = np.stack([grid_x, grid_y, grid_z], axis=-1).reshape(-1, 3) + lo
    coarse_sdf = _chunked_sdf(field, coarse_centers, chunk_size)

    # Farthest fine-cell centre from its coarse block's centre, times the
    # field's (safety-scaled) Lipschitz bound: outside this margin the sign
    # of ``sdf - threshold`` is constant across the whole block.
    lipschitz = float(field.sdf_lipschitz)
    max_offset = np.sqrt(3.0) * 0.5 * (factor - 1) * voxel_size
    margin = _LIPSCHITZ_SAFETY * max(lipschitz, 1.0) * max_offset

    decided = np.abs(coarse_sdf - threshold) > margin
    coarse_occupied = coarse_sdf <= threshold

    occupancy = (coarse_occupied & decided).reshape(coarse_res, coarse_res, coarse_res)
    for axis in range(3):
        occupancy = np.repeat(occupancy, factor, axis=axis)

    undecided = np.flatnonzero(~decided)
    if undecided.size:
        block_index = np.stack(
            np.unravel_index(undecided, (coarse_res, coarse_res, coarse_res)), axis=1
        )
        sub = np.arange(factor)
        sub_x, sub_y, sub_z = np.meshgrid(sub, sub, sub, indexing="ij")
        sub_offsets = np.stack([sub_x, sub_y, sub_z], axis=-1).reshape(-1, 3)
        fine_index = (
            block_index[:, None, :] * factor + sub_offsets[None, :, :]
        ).reshape(-1, 3)
        # Exact same centre coordinates as the flat path computes.
        fine_centers = (fine_index + 0.5) * voxel_size + lo
        fine_occupied = _chunked_sdf(field, fine_centers, chunk_size) <= threshold
        occupancy[fine_index[:, 0], fine_index[:, 1], fine_index[:, 2]] = fine_occupied

    return occupancy
