"""Voxelisation of a field onto a cubic ``g^3`` occupancy grid.

The mesh-granularity knob ``g`` of NeRFlex is the number of voxels allocated
per axis.  Voxelisation pads the field's bounding box to a cube (so voxels
are cubic), samples the signed distance at every cell centre and marks cells
with non-positive distance as occupied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class VoxelGrid:
    """A cubic occupancy grid.

    Attributes:
        origin: world position of the grid's minimum corner.
        voxel_size: edge length of one (cubic) voxel.
        resolution: number of voxels per axis (``g``).
        occupancy: ``(g, g, g)`` boolean array, indexed ``[ix, iy, iz]``.
    """

    origin: np.ndarray
    voxel_size: float
    resolution: int
    occupancy: np.ndarray

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.float64)
        self.occupancy = np.asarray(self.occupancy, dtype=bool)
        expected = (self.resolution,) * 3
        if self.occupancy.shape != expected:
            raise ValueError(
                f"occupancy shape {self.occupancy.shape} does not match resolution {expected}"
            )

    @property
    def bounds_min(self) -> np.ndarray:
        return self.origin

    @property
    def bounds_max(self) -> np.ndarray:
        return self.origin + self.voxel_size * self.resolution

    @property
    def num_occupied(self) -> int:
        return int(self.occupancy.sum())

    def cell_centers(self, indices: np.ndarray) -> np.ndarray:
        """World-space centres of the voxels at the given ``(N, 3)`` indices."""
        indices = np.asarray(indices, dtype=np.float64)
        return self.origin + (indices + 0.5) * self.voxel_size

    def world_to_index(self, points: np.ndarray) -> np.ndarray:
        """Integer voxel indices containing the given world points."""
        points = np.asarray(points, dtype=np.float64)
        return np.floor((points - self.origin) / self.voxel_size).astype(int)

    def contains_index(self, indices: np.ndarray) -> np.ndarray:
        """Boolean mask: which of the ``(N, 3)`` indices lie inside the grid."""
        indices = np.asarray(indices)
        return np.all((indices >= 0) & (indices < self.resolution), axis=-1)

    def occupied_at(self, indices: np.ndarray) -> np.ndarray:
        """Occupancy lookup with out-of-grid indices treated as empty."""
        indices = np.asarray(indices)
        inside = self.contains_index(indices)
        clipped = np.clip(indices, 0, self.resolution - 1)
        values = self.occupancy[clipped[..., 0], clipped[..., 1], clipped[..., 2]]
        return values & inside


def _cubic_bounds(bounds_min: np.ndarray, bounds_max: np.ndarray, padding: float) -> tuple:
    """Pad an AABB to a cube (equal side lengths, shared centre)."""
    bounds_min = np.asarray(bounds_min, dtype=np.float64)
    bounds_max = np.asarray(bounds_max, dtype=np.float64)
    center = 0.5 * (bounds_min + bounds_max)
    side = float(np.max(bounds_max - bounds_min)) * (1.0 + padding)
    if side <= 0:
        raise ValueError("field has a degenerate bounding box")
    half = 0.5 * side
    return center - half, center + half


def voxelize_field(
    field,
    resolution: int,
    padding: float = 0.06,
    occupancy_threshold: float = 0.0,
    chunk_size: int = 262144,
) -> VoxelGrid:
    """Sample a field's SDF onto a cubic occupancy grid.

    Args:
        field: any object with ``sdf(points)`` and ``bounds_min``/``bounds_max``
            (a :class:`~repro.scenes.scene.Scene`, a placed object, or a
            trained/degraded radiance field).
        resolution: the mesh-granularity knob ``g`` (voxels per axis).
        padding: fractional padding added around the field bounds.
        occupancy_threshold: cells with ``sdf <= threshold`` are occupied; a
            small positive value makes voxelisation slightly conservative so
            thin structures survive at low ``g``.
        chunk_size: number of cell centres evaluated per SDF call (bounds the
            peak memory of the field evaluation).
    """
    if resolution < 2:
        raise ValueError("voxel resolution must be at least 2")
    lo, hi = _cubic_bounds(field.bounds_min, field.bounds_max, padding)
    voxel_size = float((hi - lo)[0]) / resolution

    coords = (np.arange(resolution) + 0.5) * voxel_size
    grid_x, grid_y, grid_z = np.meshgrid(coords, coords, coords, indexing="ij")
    centers = np.stack([grid_x, grid_y, grid_z], axis=-1).reshape(-1, 3) + lo

    occupancy = np.zeros(centers.shape[0], dtype=bool)
    threshold = float(occupancy_threshold)
    for start in range(0, centers.shape[0], chunk_size):
        stop = start + chunk_size
        occupancy[start:stop] = field.sdf(centers[start:stop]) <= threshold

    return VoxelGrid(
        origin=lo,
        voxel_size=voxel_size,
        resolution=int(resolution),
        occupancy=occupancy.reshape(resolution, resolution, resolution),
    )
