"""Quad-face extraction from a voxel occupancy grid.

The baked geometry of a mesh-assisted NeRF consists of the boundary faces
between occupied and empty voxels (the "blocky" mesh that the rasteriser
draws, one textured quad per face).  The number of extracted faces is the
paper's measure of 3D geometric complexity and the main driver of baked data
size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baking.voxelize import VoxelGrid

#: Per-axis in-plane direction pairs: for a face normal along ``axis`` the
#: quad spans the two remaining axes.
_TANGENT_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}


@dataclass
class QuadFaceSet:
    """The boundary quad faces of a voxel grid.

    Each face is stored as the index of its *occupied* voxel, the axis of its
    outward normal and the sign of that normal (+1 means the face lies on the
    voxel's positive side along ``axis``).

    Attributes:
        voxel_indices: ``(N, 3)`` integer indices of the occupied voxels.
        axes: ``(N,)`` face normal axis in {0, 1, 2}.
        signs: ``(N,)`` face normal sign in {-1, +1}.
        grid: the voxel grid the faces were extracted from.
    """

    voxel_indices: np.ndarray
    axes: np.ndarray
    signs: np.ndarray
    grid: VoxelGrid

    def __post_init__(self) -> None:
        self.voxel_indices = np.asarray(self.voxel_indices, dtype=int).reshape(-1, 3)
        self.axes = np.asarray(self.axes, dtype=int).reshape(-1)
        self.signs = np.asarray(self.signs, dtype=int).reshape(-1)
        if not (len(self.voxel_indices) == len(self.axes) == len(self.signs)):
            raise ValueError("face arrays must have matching lengths")

    @property
    def num_faces(self) -> int:
        return int(len(self.axes))

    @property
    def face_size(self) -> float:
        """Edge length of every (square) face."""
        return float(self.grid.voxel_size)

    def face_centers(self) -> np.ndarray:
        """World-space centres of all faces, shape ``(N, 3)``."""
        centers = self.grid.cell_centers(self.voxel_indices)
        offsets = np.zeros_like(centers)
        offsets[np.arange(self.num_faces), self.axes] = (
            0.5 * self.grid.voxel_size * self.signs
        )
        return centers + offsets

    def face_points(self, face_indices: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """World-space points on faces at in-plane coordinates ``(u, v)``.

        ``u`` and ``v`` are in ``[0, 1]`` across the face; ``face_indices``
        selects which faces to evaluate.  Used both for texture baking (texel
        centres) and for texture lookup during rendering.
        """
        face_indices = np.asarray(face_indices, dtype=int)
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        centers = self.face_centers()[face_indices]
        axes = self.axes[face_indices]
        size = self.grid.voxel_size

        points = centers.copy()
        tangent_u = np.array([_TANGENT_AXES[axis][0] for axis in axes])
        tangent_v = np.array([_TANGENT_AXES[axis][1] for axis in axes])
        rows = np.arange(len(face_indices))
        points[rows, tangent_u] += (u - 0.5) * size
        points[rows, tangent_v] += (v - 0.5) * size
        return points


def extract_quad_faces(grid: VoxelGrid) -> QuadFaceSet:
    """Extract all boundary faces between occupied and empty voxels.

    A face is emitted wherever an occupied voxel touches an empty voxel (or
    the grid boundary) along any axis, which is exactly the visible surface
    of the blocky reconstruction.
    """
    occupancy = grid.occupancy
    padded = np.pad(occupancy, 1, mode="constant", constant_values=False)

    all_indices = []
    all_axes = []
    all_signs = []
    core = (slice(1, -1), slice(1, -1), slice(1, -1))
    for axis in range(3):
        for sign in (-1, 1):
            shifted = np.roll(padded, -sign, axis=axis)[core]
            boundary = occupancy & ~shifted
            indices = np.argwhere(boundary)
            if indices.size:
                all_indices.append(indices)
                all_axes.append(np.full(len(indices), axis, dtype=int))
                all_signs.append(np.full(len(indices), sign, dtype=int))

    if all_indices:
        voxel_indices = np.concatenate(all_indices, axis=0)
        axes = np.concatenate(all_axes)
        signs = np.concatenate(all_signs)
    else:
        voxel_indices = np.zeros((0, 3), dtype=int)
        axes = np.zeros(0, dtype=int)
        signs = np.zeros(0, dtype=int)

    return QuadFaceSet(voxel_indices=voxel_indices, axes=axes, signs=signs, grid=grid)
