"""The baked multi-modal NeRF representation and its size accounting.

A :class:`BakedSubModel` is the on-device artefact for one NeRF network —
the voxel-grid quad mesh, its texture patches and the tiny deferred-shading
MLP.  Its byte size is what the paper's ``S`` (data size) measures and what
the device memory budget ``H`` constrains.  A :class:`BakedMultiModel`
bundles the sub-models of a multi-NeRF decomposition (NeRFlex, Block-NeRF).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baking.meshing import QuadFaceSet, extract_quad_faces
from repro.baking.texture import LazyTexture, TextureAtlas, bake_texture_atlas
from repro.baking.voxelize import VoxelGrid, voxelize_field
from repro.scenes.raytrace import field_radiance


@dataclass(frozen=True)
class SizeConstants:
    """Byte-cost constants of the baked representation.

    The constants model the multi-modal data a mesh-assisted NeRF ships to
    the device: vertex/index buffers for the quad mesh, feature texels (the
    deferred-shading features MobileNeRF stores per texel), the per-grid-cell
    volume data (a compressed alpha/indirection volume that scales with
    ``g^3``), a per-occupied-voxel entry in the sparse index and the small
    decoder MLP.  They are calibration constants — chosen so that the
    reference configurations land in the same size regime the paper reports
    (one network at the recommended configuration is a few hundred MB) —
    and every size the library reports is derived from them.

    Calibration notes.  The reproduction renders and scores at 100–200 px,
    so its patch sizes are scaled down from the paper's (``p <= 8`` instead
    of ``p <= 41``, see EXPERIMENTS.md); one reproduction texel therefore
    stands for roughly ``(800/128)^2 ~ 39`` device texels of ~10 bytes of
    deferred-shading features, giving ``texel_bytes = 384``.  The volume
    data is a compressed occupancy/indirection grid at ~4 bytes per cell —
    **not** a fat dense payload: an earlier calibration charged 128 B/cell,
    which made the ``g^3`` term dominate every model, priced the granularity
    the detail objects need (``g ~ 96``) out of any mobile budget and caused
    the Fig. 4 detail-region quality regression.  With the byte budget
    carried by textures and geometry (as in real MobileNeRF-class bundles),
    the selector can buy detail where the paper says it should.
    """

    geometry_bytes_per_face: float = 96.0
    texel_bytes: float = 384.0
    dense_grid_bytes_per_cell: float = 4.0
    voxel_index_bytes: float = 16.0
    mlp_bytes: float = 8192.0
    header_bytes: float = 4096.0

    def model_bytes(
        self,
        num_faces: int,
        patch_size: int,
        num_occupied_voxels: int,
        grid_resolution: int,
    ) -> float:
        """Total bytes of one baked sub-model."""
        geometry = num_faces * self.geometry_bytes_per_face
        textures = num_faces * (patch_size**2) * self.texel_bytes
        dense = float(grid_resolution) ** 3 * self.dense_grid_bytes_per_cell
        sparse = num_occupied_voxels * self.voxel_index_bytes
        return float(
            self.header_bytes + self.mlp_bytes + geometry + textures + dense + sparse
        )


#: Default size constants shared by all baking entry points.
DEFAULT_SIZE_CONSTANTS = SizeConstants()


@dataclass
class BakedSubModel:
    """The baked representation of one NeRF network.

    Attributes:
        name: sub-scene / object name this model represents.
        grid: occupancy grid at granularity ``g``.
        faces: extracted boundary quad faces.
        texture: texture patches (materialised atlas or lazy evaluator).
        patch_size: the texture knob ``p``.
        size_constants: byte-cost constants used for size accounting.
    """

    name: str
    grid: VoxelGrid
    faces: QuadFaceSet
    texture: "TextureAtlas | LazyTexture"
    patch_size: int
    size_constants: SizeConstants = field(default=DEFAULT_SIZE_CONSTANTS)

    @property
    def granularity(self) -> int:
        """The mesh-granularity knob ``g`` this model was baked at."""
        return int(self.grid.resolution)

    @property
    def num_faces(self) -> int:
        return self.faces.num_faces

    def size_bytes(self) -> float:
        """Total baked data size in bytes (geometry + textures + grid + MLP)."""
        return self.size_constants.model_bytes(
            num_faces=self.num_faces,
            patch_size=self.patch_size,
            num_occupied_voxels=self.grid.num_occupied,
            grid_resolution=self.grid.resolution,
        )

    def size_mb(self) -> float:
        """Total baked data size in megabytes (1 MB = 2**20 bytes)."""
        return self.size_bytes() / (1024.0 * 1024.0)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "granularity": self.granularity,
            "patch_size": self.patch_size,
            "num_faces": self.num_faces,
            "num_occupied_voxels": self.grid.num_occupied,
            "size_mb": self.size_mb(),
        }


@dataclass
class BakedMultiModel:
    """A collection of baked sub-models forming one deployable scene.

    This is the artefact NeRFlex ships to a mobile device: one baked
    sub-model per sub-scene, rendered jointly by depth compositing.
    """

    submodels: list

    def __post_init__(self) -> None:
        if not self.submodels:
            raise ValueError("BakedMultiModel needs at least one sub-model")

    @property
    def num_submodels(self) -> int:
        return len(self.submodels)

    @property
    def num_faces(self) -> int:
        return int(sum(model.num_faces for model in self.submodels))

    def size_bytes(self) -> float:
        return float(sum(model.size_bytes() for model in self.submodels))

    def size_mb(self) -> float:
        return self.size_bytes() / (1024.0 * 1024.0)

    def by_name(self, name: str) -> BakedSubModel:
        for model in self.submodels:
            if model.name == name:
                return model
        raise KeyError(f"no baked sub-model named {name!r}")

    def describe(self) -> dict:
        return {
            "num_submodels": self.num_submodels,
            "total_size_mb": self.size_mb(),
            "total_faces": self.num_faces,
            "submodels": [model.describe() for model in self.submodels],
        }


def make_radiance_fn(field, normal_epsilon: float = 1e-3):
    """Build a shaded-radiance function for a field.

    The baked textures store the *shaded* surface radiance (albedo lit by the
    fixed scene light), matching what the ground-truth renderer produces, so
    baked-versus-ground-truth SSIM isolates the representation error that the
    configuration knobs control.
    """

    def radiance(points: np.ndarray) -> np.ndarray:
        return field_radiance(field, points, normal_epsilon=normal_epsilon)

    return radiance


def field_cache_identity(field) -> tuple:
    """A hashable identity of the *content* a field voxelises to.

    Geometry caches shared across pipelines key on this in addition to the
    dataset/sub-scene name, so two fields that merely share a name (e.g.
    the same object under a different segmentation threshold or a
    different degradation scale) can never collide: the identity captures
    the placed instance ids of the underlying scene subset and the
    degradation detail scale, the two inputs that determine the SDF.
    """
    base = getattr(field, "base", field)
    placed = getattr(base, "placed", None)
    instance_ids = (
        tuple(int(p.instance_id) for p in placed) if placed is not None else None
    )
    detail_scale = getattr(field, "detail_scale", None)
    return (
        instance_ids,
        None if detail_scale is None else round(float(detail_scale), 12),
    )


def bake_geometry(
    field,
    granularity: int,
    occupancy_threshold: "float | None" = None,
    padding: float = 0.06,
) -> tuple:
    """Voxelise a field and extract its boundary quad faces.

    The geometry of a bake depends only on the granularity knob ``g`` (never
    on the texture knob ``p``), so profilers sweeping many ``(g, p)`` pairs
    can compute it once per ``g`` and hand it to :func:`bake_field` via its
    ``geometry`` argument instead of re-voxelising for every patch size.

    Returns:
        ``(grid, faces)`` — the occupancy grid and its quad faces.
    """
    grid = voxelize_field(
        field,
        resolution=granularity,
        padding=padding,
        occupancy_threshold=(
            occupancy_threshold if occupancy_threshold is not None else 0.0
        ),
    )
    return grid, extract_quad_faces(grid)


def bake_field(
    field,
    granularity: int,
    patch_size: int,
    name: str = "field",
    materialize_textures: bool = False,
    size_constants: SizeConstants = DEFAULT_SIZE_CONSTANTS,
    occupancy_threshold: "float | None" = None,
    padding: float = 0.06,
    geometry: "tuple | None" = None,
) -> BakedSubModel:
    """Bake a field into the mesh + texture representation.

    Args:
        field: any object with ``sdf``, ``albedo`` and bounds (scene, placed
            object, joint sub-scene, or trained/degraded radiance field).
        granularity: the voxel-grid knob ``g``.
        patch_size: the texture knob ``p``.
        name: name recorded on the resulting sub-model.
        materialize_textures: when true the full texture atlas is evaluated
            up front; when false texels are evaluated lazily at render time
            (identical output, used by large parameter sweeps).
        size_constants: byte-cost constants for size accounting.
        occupancy_threshold: voxel occupancy threshold; defaults to a third
            of the voxel size (slightly conservative so thin structures
            survive at coarse granularity).
        padding: fractional padding applied around the field bounds.
        geometry: optional pre-computed ``(grid, faces)`` from
            :func:`bake_geometry` (must match ``granularity``); lets callers
            reuse the voxelisation across texture knobs.
    """
    if geometry is not None:
        grid, faces = geometry
        if grid.resolution != int(granularity):
            raise ValueError(
                f"precomputed geometry at resolution {grid.resolution} does not "
                f"match granularity {granularity}"
            )
    else:
        grid, faces = bake_geometry(
            field,
            granularity,
            occupancy_threshold=occupancy_threshold,
            padding=padding,
        )
    radiance = make_radiance_fn(field)
    if materialize_textures:
        texture: "TextureAtlas | LazyTexture" = bake_texture_atlas(
            radiance, faces, patch_size
        )
    else:
        texture = LazyTexture(patch_size=patch_size, faces=faces, radiance_fn=radiance)
    return BakedSubModel(
        name=name,
        grid=grid,
        faces=faces,
        texture=texture,
        patch_size=int(patch_size),
        size_constants=size_constants,
    )
