"""Mesh-based NeRF baking substrate.

Mesh-assisted mobile NeRF renderers (MobileNeRF, NeRF2Mesh) convert a trained
radiance field into (a) a voxel-grid-derived quad mesh and (b) texture
patches of ``p x p`` texels per quad face, which a rasteriser then renders in
real time.  NeRFlex's two configuration knobs are exactly this substrate's
parameters: the per-axis voxel granularity ``g`` and the texture patch size
``p``.

This package implements that pipeline from scratch on numpy:

* :mod:`repro.baking.voxelize` — sample a field's SDF onto a ``g^3`` grid;
* :mod:`repro.baking.meshing`  — extract boundary quad faces;
* :mod:`repro.baking.texture`  — bake ``p x p`` texture patches per face
  (materialised or lazily evaluated);
* :mod:`repro.baking.baked_model` — the baked representation, its byte-level
  size accounting and the :func:`bake_field` entry point;
* :mod:`repro.baking.renderer` — a grid ray-marcher that renders baked
  models (and composites several of them, as the multi-NeRF player does).
"""

from repro.baking.voxelize import VoxelGrid, voxelize_field
from repro.baking.meshing import QuadFaceSet, extract_quad_faces
from repro.baking.texture import TextureAtlas, LazyTexture, bake_texture_atlas
from repro.baking.baked_model import (
    BakedSubModel,
    BakedMultiModel,
    SizeConstants,
    bake_field,
    bake_geometry,
)
from repro.baking.renderer import render_baked, render_baked_multi

__all__ = [
    "VoxelGrid",
    "voxelize_field",
    "QuadFaceSet",
    "extract_quad_faces",
    "TextureAtlas",
    "LazyTexture",
    "bake_texture_atlas",
    "BakedSubModel",
    "BakedMultiModel",
    "SizeConstants",
    "bake_field",
    "bake_geometry",
    "render_baked",
    "render_baked_multi",
]
