"""Texture baking: ``p x p`` texel patches per quad face.

The texture knob ``p`` controls how many texels are allocated to each quad
face.  Two implementations share one lookup interface:

* :class:`TextureAtlas` materialises the full ``(num_faces, p, p, 3)`` texel
  array — byte-for-byte what would be shipped to the device;
* :class:`LazyTexture` defers texel evaluation to lookup time.  It quantises
  the lookup coordinate to the texel centre and evaluates the source field
  there, which is mathematically identical to nearest-texel sampling of a
  materialised atlas while only ever evaluating the texels that are actually
  seen.  Benchmarks use it to keep large-``g`` sweeps tractable; the baked
  data *size* is always accounted as if the atlas were materialised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baking.meshing import QuadFaceSet


def _texel_center(coord: np.ndarray, patch_size: int) -> np.ndarray:
    """Snap in-face coordinates in [0, 1] to the nearest texel centre."""
    texel = np.clip(np.floor(coord * patch_size), 0, patch_size - 1)
    return (texel + 0.5) / patch_size


@dataclass
class TextureAtlas:
    """A materialised texture atlas: one ``p x p`` RGB patch per face."""

    patch_size: int
    texels: np.ndarray  # (num_faces, p, p, 3)

    def __post_init__(self) -> None:
        self.texels = np.asarray(self.texels, dtype=np.float64)
        expected = (self.patch_size, self.patch_size, 3)
        if self.texels.ndim != 4 or self.texels.shape[1:] != expected:
            raise ValueError(
                f"texel array shape {self.texels.shape} does not match patch size {self.patch_size}"
            )

    @property
    def num_faces(self) -> int:
        return int(self.texels.shape[0])

    def sample(self, face_indices: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Nearest-texel lookup at in-face coordinates ``(u, v)`` in [0, 1]."""
        face_indices = np.asarray(face_indices, dtype=int)
        u_texel = np.clip(
            np.floor(np.asarray(u) * self.patch_size), 0, self.patch_size - 1
        ).astype(int)
        v_texel = np.clip(
            np.floor(np.asarray(v) * self.patch_size), 0, self.patch_size - 1
        ).astype(int)
        return self.texels[face_indices, u_texel, v_texel]


@dataclass
class LazyTexture:
    """Texture patches evaluated on demand from a radiance function.

    ``radiance_fn`` maps world-space points ``(N, 3)`` to RGB; the lookup
    quantises ``(u, v)`` to the texel centre of the ``p x p`` patch and
    evaluates the radiance there, matching :class:`TextureAtlas` exactly.
    """

    patch_size: int
    faces: QuadFaceSet
    radiance_fn: "object"

    def sample(self, face_indices: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        face_indices = np.asarray(face_indices, dtype=int)
        u_center = _texel_center(np.asarray(u, dtype=np.float64), self.patch_size)
        v_center = _texel_center(np.asarray(v, dtype=np.float64), self.patch_size)
        # Lookups quantise to texel centres, so any two queries landing in
        # the same texel of the same face evaluate the radiance at exactly
        # the same world point.  Deduplicate before evaluating: when the
        # texture is coarser than the screen sampling (small ``p``), this
        # cuts the dominant cost of lazy rendering by a large factor while
        # returning byte-identical colours.
        p = int(self.patch_size)
        u_texel = np.minimum((u_center * p).astype(np.int64), p - 1)
        v_texel = np.minimum((v_center * p).astype(np.int64), p - 1)
        texel_key = (face_indices.astype(np.int64) * p + u_texel) * p + v_texel
        unique_keys, inverse = np.unique(texel_key, return_inverse=True)
        if unique_keys.size == texel_key.size:
            points = self.faces.face_points(face_indices, u_center, v_center)
            return self.radiance_fn(points)
        first_occurrence = np.zeros(unique_keys.size, dtype=np.int64)
        first_occurrence[inverse[::-1]] = np.arange(texel_key.size - 1, -1, -1)
        points = self.faces.face_points(
            face_indices[first_occurrence],
            u_center[first_occurrence],
            v_center[first_occurrence],
        )
        return self.radiance_fn(points)[inverse]

    @property
    def num_faces(self) -> int:
        return self.faces.num_faces


def bake_texture_atlas(
    radiance_fn,
    faces: QuadFaceSet,
    patch_size: int,
    chunk_faces: int = 4096,
) -> TextureAtlas:
    """Materialise the full texture atlas by evaluating every texel centre.

    Args:
        radiance_fn: ``(N, 3) world points -> (N, 3) RGB`` (typically the
            shaded radiance of the source field).
        faces: quad faces to texture.
        patch_size: the texture knob ``p`` (texels per face edge).
        chunk_faces: number of faces baked per evaluation batch.
    """
    if patch_size < 1:
        raise ValueError("patch size must be at least 1")
    num_faces = faces.num_faces
    texels = np.zeros((num_faces, patch_size, patch_size, 3), dtype=np.float64)
    if num_faces == 0:
        return TextureAtlas(patch_size=patch_size, texels=texels)

    coords = (np.arange(patch_size) + 0.5) / patch_size
    grid_u, grid_v = np.meshgrid(coords, coords, indexing="ij")
    flat_u = grid_u.ravel()
    flat_v = grid_v.ravel()
    texels_per_face = patch_size * patch_size

    for start in range(0, num_faces, chunk_faces):
        stop = min(start + chunk_faces, num_faces)
        batch = np.arange(start, stop)
        face_rep = np.repeat(batch, texels_per_face)
        u_rep = np.tile(flat_u, stop - start)
        v_rep = np.tile(flat_v, stop - start)
        colors = radiance_fn(faces.face_points(face_rep, u_rep, v_rep))
        texels[start:stop] = colors.reshape(stop - start, patch_size, patch_size, 3)

    return TextureAtlas(patch_size=patch_size, texels=texels)
