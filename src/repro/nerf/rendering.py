"""Volume rendering: alpha compositing along rays, forward and gradients.

This module provides the classic NeRF rendering equation

    C(r) = sum_i T_i * (1 - exp(-sigma_i * delta_i)) * c_i + T_end * bg

together with the analytic gradients of ``C`` with respect to the per-sample
densities and colours, which the image-based trainer uses for
backpropagation without any autodiff framework.
"""

from __future__ import annotations

import numpy as np

from repro.nerf.sampling import stratified_samples
from repro.scenes.cameras import Camera, camera_rays
from repro.scenes.raytrace import RenderResult


def composite_samples(
    densities: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    background=(1.0, 1.0, 1.0),
    sample_distances: "np.ndarray | None" = None,
    kernel: "str | None" = None,
) -> dict:
    """Alpha-composite per-sample densities and colours along rays.

    The compositing body lives in the kernel layer
    (:mod:`repro.render.kernels`); this wrapper normalises inputs and keeps
    the historical dict interface :func:`composite_gradients` consumes.

    Args:
        densities: ``(R, S)`` non-negative densities.
        colors: ``(R, S, 3)`` per-sample colours.
        deltas: ``(R, S)`` distances between consecutive samples.
        background: background colour composited behind the volume.
        sample_distances: ``(R, S)`` absolute distances of the samples from
            the ray origin; when given, the reported ``depth`` is the
            weighted expectation of these distances (otherwise depth is
            measured from the first sample).
        kernel: kernel backend name; ``None`` pins the numpy reference so
            direct callers (the trainer above all) stay bit-stable across
            environments.  The render engine passes its configured kernel —
            ``composite_forward`` sits in the bounded-ULP parity tier, so
            compiled backends may differ from the reference by a few ULP.

    Returns:
        dict with ``rgb`` (R, 3), ``weights`` (R, S), ``transmittance``
        (R, S+1) and ``depth`` (R,) — the expected termination depth.
    """
    from repro.render.kernels import get_kernels

    densities = np.asarray(densities, dtype=np.float64)
    colors = np.asarray(colors, dtype=np.float64)
    deltas = np.asarray(deltas, dtype=np.float64)
    background = np.asarray(background, dtype=np.float64)
    if sample_distances is None:
        sample_distances = np.cumsum(deltas, axis=1)
    sample_distances = np.asarray(sample_distances, dtype=np.float64)

    kernels = get_kernels("numpy" if kernel is None else kernel)
    rgb, weights, transmittance, depth, cumulative = kernels.composite_forward(
        np.ascontiguousarray(densities),
        np.ascontiguousarray(colors),
        np.ascontiguousarray(deltas),
        np.ascontiguousarray(background),
        np.ascontiguousarray(sample_distances),
    )
    return {
        "rgb": rgb,
        "weights": weights,
        "transmittance": transmittance,
        "depth": depth,
        "alpha": cumulative,
    }


def composite_gradients(
    densities: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    grad_rgb: np.ndarray,
    composite: dict,
    background=(1.0, 1.0, 1.0),
) -> tuple:
    """Gradients of the composited colour w.r.t. densities and colours.

    Uses the identity ``dC/dsigma_i = delta_i * (T_{i+1} c_i - suffix_i)``
    where ``suffix_i`` is the contribution of everything behind sample ``i``
    (including the background term), avoiding any division by
    ``1 - alpha_i``.

    Args:
        grad_rgb: ``(R, 3)`` upstream gradient ``dL/dC``.
        composite: the dict returned by :func:`composite_samples` for the
            same inputs.

    Returns:
        ``(grad_densities, grad_colors)`` with shapes ``(R, S)`` and
        ``(R, S, 3)``.
    """
    weights = composite["weights"]
    transmittance = composite["transmittance"]
    background = np.asarray(background, dtype=np.float64)
    colors = np.asarray(colors, dtype=np.float64)
    deltas = np.asarray(deltas, dtype=np.float64)

    grad_colors = weights[..., None] * grad_rgb[:, None, :]

    weighted = weights[..., None] * colors  # (R, S, 3)
    # suffix_i = sum_{j>i} w_j c_j + T_end * bg
    reversed_cumsum = np.cumsum(weighted[:, ::-1, :], axis=1)[:, ::-1, :]
    suffix = np.concatenate(
        [reversed_cumsum[:, 1:, :], np.zeros_like(reversed_cumsum[:, :1, :])], axis=1
    )
    suffix = suffix + transmittance[:, -1:, None] * background[None, None, :]
    per_channel = transmittance[:, 1:, None] * colors - suffix
    grad_densities = deltas * np.einsum("rsc,rc->rs", per_channel, grad_rgb)
    # Densities are clamped at zero in the forward pass; gradient flows only
    # where the density is positive (handled by the caller's activation).
    return grad_densities, grad_colors


def volume_render_field(
    field,
    camera: Camera,
    num_samples: int = 96,
    background=(1.0, 1.0, 1.0),
    density_scale: float = 160.0,
    rng: "np.random.Generator | int | None" = None,
    chunk_rays: int = 8192,
) -> RenderResult:
    """Volume-render a field-protocol object (SDF + albedo) from a camera.

    The SDF is converted to density with a logistic bump around the surface
    (``density_scale`` controls its sharpness relative to the field extent);
    the per-ray colour is the shaded radiance evaluated at the expected
    termination point (a two-pass scheme that avoids evaluating shading at
    every volume sample).  This is the rendering path used by the NGP /
    Mip-NeRF 360 baseline emulators, which render their (degraded) fields
    directly rather than baking a mesh.

    This is a thin wrapper over the shared :class:`~repro.render.RenderEngine`
    (see :mod:`repro.render`); use the engine directly for cross-view
    batching and render caching.
    """
    from repro.render.engine import engine_for_chunk

    return engine_for_chunk(chunk_rays).volume_render_field(
        field,
        camera,
        num_samples=num_samples,
        background=background,
        density_scale=density_scale,
        rng=rng,
    )


def _sdf_to_density(sdf: np.ndarray, surface_width: float) -> np.ndarray:
    """Convert signed distance to volume density.

    Density is high inside the surface and falls off smoothly across a band
    of width ``surface_width`` outside it, which keeps the volume renderer
    well behaved at finite sample counts.  The math lives in the kernel
    layer (numpy reference); this wrapper exists for its historical name
    and for callers with non-2D inputs.
    """
    from repro.render.kernels import numpy_ref

    return numpy_ref.sdf_to_density(np.asarray(sdf, dtype=np.float64), surface_width)


def _sigmoid_array(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-values))
