"""Training loops: field distillation and image-based NeRF optimisation.

Two training paths are provided:

* :func:`train_distilled_field` — regress a target field's SDF and albedo
  from point samples.  This is fast enough to run inside tests and examples
  and produces a field that plugs directly into the baking pipeline.
* :func:`train_nerf_from_images` — the classic NeRF objective: minimise the
  photometric error of volume-rendered rays against training images, with
  gradients propagated analytically through the compositing equation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nerf.field import DistilledField, NeRFField, _sigmoid
from repro.nerf.mlp import AdamOptimizer
from repro.nerf.rendering import composite_gradients, composite_samples
from repro.nerf.sampling import stratified_samples
from repro.scenes.cameras import camera_rays
from repro.utils.rng import make_rng


@dataclass
class TrainingLog:
    """Loss history of a training run."""

    losses: list

    @property
    def final_loss(self) -> float:
        return float(self.losses[-1]) if self.losses else float("nan")

    @property
    def initial_loss(self) -> float:
        return float(self.losses[0]) if self.losses else float("nan")


def _sample_training_points(
    field, batch_size: int, rng: np.random.Generator, surface_fraction: float = 0.5
) -> np.ndarray:
    """Mix of uniform points in the bounds and points near the surface."""
    lo = np.asarray(field.bounds_min, dtype=np.float64)
    hi = np.asarray(field.bounds_max, dtype=np.float64)
    uniform = rng.uniform(lo, hi, size=(batch_size, 3))
    num_surface = int(batch_size * surface_fraction)
    if num_surface == 0:
        return uniform
    # Importance sampling near the surface: keep the uniform points closest
    # to the surface and jitter them.
    distances = np.abs(field.sdf(uniform))
    closest = np.argsort(distances)[:num_surface]
    extent = float(np.max(hi - lo))
    jitter = rng.normal(0.0, 0.02 * extent, size=(num_surface, 3))
    surface_points = np.clip(uniform[closest] + jitter, lo, hi)
    return np.concatenate([uniform, surface_points], axis=0)


def train_distilled_field(
    target_field,
    num_iterations: int = 400,
    batch_size: int = 1024,
    hidden_size: int = 64,
    num_hidden_layers: int = 3,
    num_frequencies: int = 6,
    learning_rate: float = 2e-3,
    seed: int = 0,
) -> tuple:
    """Distil a target field into an MLP field.

    Returns:
        ``(field, log)`` — the trained :class:`DistilledField` and its
        :class:`TrainingLog`.
    """
    rng = make_rng(seed)
    field = DistilledField(
        bounds_min=target_field.bounds_min,
        bounds_max=target_field.bounds_max,
        hidden_size=hidden_size,
        num_hidden_layers=num_hidden_layers,
        num_frequencies=num_frequencies,
        seed=seed,
    )
    optimizer = AdamOptimizer(learning_rate=learning_rate)
    losses = []
    for _ in range(num_iterations):
        points = _sample_training_points(target_field, batch_size, rng)
        targets = field.training_targets(target_field, points)
        loss, gradients = field.training_step(points, targets)
        optimizer.step(field.mlp.parameters(), gradients)
        losses.append(loss)
    return field, TrainingLog(losses=losses)


def train_nerf_from_images(
    views: list,
    cameras: list,
    bounds_min: np.ndarray,
    bounds_max: np.ndarray,
    num_iterations: int = 300,
    rays_per_batch: int = 256,
    num_samples: int = 48,
    hidden_size: int = 48,
    num_hidden_layers: int = 2,
    num_frequencies: int = 5,
    learning_rate: float = 2e-3,
    background=(1.0, 1.0, 1.0),
    seed: int = 0,
) -> tuple:
    """Train a classic NeRF from posed images by photometric error.

    Args:
        views: list of ``(H, W, 3)`` images (or objects with an ``rgb``
            attribute, e.g. :class:`~repro.scenes.raytrace.RenderResult`).
        cameras: matching camera poses.
        bounds_min / bounds_max: scene bounds for ray near/far planes.

    Returns:
        ``(field, log)`` — the trained :class:`NeRFField` and its loss log.
    """
    if len(views) != len(cameras):
        raise ValueError("views and cameras must have the same length")
    if not views:
        raise ValueError("need at least one training view")
    images = [getattr(view, "rgb", view) for view in views]

    rng = make_rng(seed)
    field = NeRFField(
        bounds_min=bounds_min,
        bounds_max=bounds_max,
        hidden_size=hidden_size,
        num_hidden_layers=num_hidden_layers,
        num_frequencies=num_frequencies,
        seed=seed,
    )
    optimizer = AdamOptimizer(learning_rate=learning_rate)
    background = np.asarray(background, dtype=np.float64)

    # Pre-compute per-view ray bundles.
    bundles = []
    for image, camera in zip(images, cameras):
        origins, directions = camera_rays(camera)
        pixels = np.asarray(image, dtype=np.float64).reshape(-1, 3)
        bundles.append((origins, directions, pixels))

    extent = float(np.max(np.asarray(bounds_max) - np.asarray(bounds_min)))
    center = 0.5 * (np.asarray(bounds_min) + np.asarray(bounds_max))

    losses = []
    for _ in range(num_iterations):
        view_index = int(rng.integers(0, len(bundles)))
        origins, directions, pixels = bundles[view_index]
        ray_ids = rng.integers(0, origins.shape[0], size=rays_per_batch)
        ray_origins = origins[ray_ids]
        ray_dirs = directions[ray_ids]
        targets = pixels[ray_ids]

        distance = float(np.linalg.norm(cameras[view_index].position - center))
        near = max(distance - 0.75 * extent, 1e-3)
        far = distance + 0.75 * extent
        t_values = stratified_samples(
            np.full(rays_per_batch, near),
            np.full(rays_per_batch, far),
            num_samples,
            rng=rng,
        )
        points = ray_origins[:, None, :] + t_values[..., None] * ray_dirs[:, None, :]
        flat_points = points.reshape(-1, 3)

        raw, cache = field.forward(flat_points, return_cache=True)
        raw_density = raw[:, 0].reshape(rays_per_batch, num_samples)
        densities = np.log1p(np.exp(-np.abs(raw_density))) + np.maximum(raw_density, 0.0)
        colors = _sigmoid(raw[:, 1:4]).reshape(rays_per_batch, num_samples, 3)
        deltas = np.diff(
            t_values, axis=1, append=t_values[:, -1:] + (far - near) / num_samples
        )

        composite = composite_samples(densities, colors, deltas, background=background)
        residual = composite["rgb"] - targets
        loss = float(np.mean(residual**2))
        losses.append(loss)

        grad_rgb = 2.0 * residual / residual.size
        grad_density, grad_colors = composite_gradients(
            densities, colors, deltas, grad_rgb, composite, background=background
        )
        # Chain through softplus (densities) and sigmoid (colours).
        softplus_grad = _sigmoid(raw_density)
        grad_raw = np.zeros_like(raw)
        grad_raw[:, 0] = (grad_density * softplus_grad).reshape(-1)
        flat_colors = colors.reshape(-1, 3)
        grad_raw[:, 1:4] = grad_colors.reshape(-1, 3) * flat_colors * (1.0 - flat_colors)
        gradients = field.mlp.backward(grad_raw, cache)
        optimizer.step(field.mlp.parameters(), gradients)

    return field, TrainingLog(losses=losses)
