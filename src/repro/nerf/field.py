"""Field adapters: analytic, distilled-MLP and classic NeRF fields.

Everything downstream of training (baking, rendering, profiling) consumes
the *field protocol*: ``sdf(points)``, ``albedo(points)``, ``bounds_min``,
``bounds_max``.  Three implementations are provided:

* :class:`AnalyticField` — wraps a procedural scene or placed object; this
  is the "perfectly trained" field and the reference for every experiment.
* :class:`DistilledField` — an MLP that regresses the SDF and albedo of a
  target field (distillation training, the fast path that demonstrates
  end-to-end learning on CPU).
* :class:`NeRFField` — a classic density/colour NeRF MLP used with the
  volume renderer; it exposes the field protocol through a density
  iso-surface so it can also be baked.
"""

from __future__ import annotations

import numpy as np

from repro.nerf.encoding import PositionalEncoding
from repro.nerf.mlp import MLP


class AnalyticField:
    """Adapter presenting any scene-like object as a radiance field.

    This is the idealised limit of NeRF training: the field equals the
    ground-truth geometry and appearance exactly.
    """

    def __init__(self, source) -> None:
        self.source = source

    def sdf(self, points: np.ndarray) -> np.ndarray:
        return self.source.sdf(points)

    def albedo(self, points: np.ndarray) -> np.ndarray:
        return self.source.albedo(points)

    @property
    def bounds_min(self) -> np.ndarray:
        return self.source.bounds_min

    @property
    def bounds_max(self) -> np.ndarray:
        return self.source.bounds_max


class DistilledField:
    """An MLP field trained to regress a target field's SDF and albedo.

    The network maps positional-encoded coordinates to ``[sdf, r, g, b]``.
    Coordinates are normalised to the target's bounding box so the encoding
    frequencies are scale-free.
    """

    def __init__(
        self,
        bounds_min: np.ndarray,
        bounds_max: np.ndarray,
        hidden_size: int = 64,
        num_hidden_layers: int = 3,
        num_frequencies: int = 6,
        seed: int = 0,
    ) -> None:
        self._bounds_min = np.asarray(bounds_min, dtype=np.float64)
        self._bounds_max = np.asarray(bounds_max, dtype=np.float64)
        if np.any(self._bounds_max <= self._bounds_min):
            raise ValueError("bounds_max must exceed bounds_min on every axis")
        self.encoding = PositionalEncoding(num_frequencies=num_frequencies)
        sizes = [self.encoding.output_dim] + [hidden_size] * num_hidden_layers + [4]
        self.mlp = MLP(sizes, seed=seed)
        self._extent = float(np.max(self._bounds_max - self._bounds_min))

    # -- field protocol ----------------------------------------------------

    @property
    def bounds_min(self) -> np.ndarray:
        return self._bounds_min

    @property
    def bounds_max(self) -> np.ndarray:
        return self._bounds_max

    def _normalize(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        center = 0.5 * (self._bounds_min + self._bounds_max)
        return (points - center) / (0.5 * self._extent)

    def _raw_outputs(self, points: np.ndarray, return_cache: bool = False):
        encoded = self.encoding(self._normalize(points))
        return self.mlp.forward(encoded, return_cache=return_cache)

    def sdf(self, points: np.ndarray) -> np.ndarray:
        """Predicted signed distance (denormalised to world units)."""
        outputs = self._raw_outputs(points)
        return outputs[:, 0] * (0.5 * self._extent)

    def albedo(self, points: np.ndarray) -> np.ndarray:
        outputs = self._raw_outputs(points)
        return np.clip(_sigmoid(outputs[:, 1:4]), 0.0, 1.0)

    # -- training interface (used by repro.nerf.training) -------------------

    def training_targets(self, target_field, points: np.ndarray) -> np.ndarray:
        """Regression targets ``[sdf, r, g, b]`` from the target field."""
        sdf = target_field.sdf(points) / (0.5 * self._extent)
        albedo = target_field.albedo(points)
        return np.concatenate([sdf[:, None], albedo], axis=1)

    def training_step(self, points: np.ndarray, targets: np.ndarray) -> tuple:
        """One forward/backward pass; returns ``(loss, gradients)``."""
        encoded = self.encoding(self._normalize(points))
        outputs, cache = self.mlp.forward(encoded, return_cache=True)
        predictions = np.concatenate(
            [outputs[:, :1], _sigmoid(outputs[:, 1:4])], axis=1
        )
        residual = predictions - targets
        loss = float(np.mean(residual**2))
        grad_predictions = 2.0 * residual / residual.size
        grad_outputs = grad_predictions.copy()
        sigmoid_vals = predictions[:, 1:4]
        grad_outputs[:, 1:4] = grad_predictions[:, 1:4] * sigmoid_vals * (1.0 - sigmoid_vals)
        gradients = self.mlp.backward(grad_outputs, cache)
        return loss, gradients


class NeRFField:
    """A classic NeRF: density and colour predicted from encoded positions.

    Exposes ``density``/``color`` for the volume renderer and the field
    protocol (via a density iso-surface pseudo-SDF) so a trained network can
    be baked like any other field.
    """

    def __init__(
        self,
        bounds_min: np.ndarray,
        bounds_max: np.ndarray,
        hidden_size: int = 64,
        num_hidden_layers: int = 3,
        num_frequencies: int = 6,
        density_threshold: float = 8.0,
        seed: int = 0,
    ) -> None:
        self._bounds_min = np.asarray(bounds_min, dtype=np.float64)
        self._bounds_max = np.asarray(bounds_max, dtype=np.float64)
        self.encoding = PositionalEncoding(num_frequencies=num_frequencies)
        sizes = [self.encoding.output_dim] + [hidden_size] * num_hidden_layers + [4]
        self.mlp = MLP(sizes, seed=seed)
        self.density_threshold = float(density_threshold)
        self._extent = float(np.max(self._bounds_max - self._bounds_min))

    @property
    def bounds_min(self) -> np.ndarray:
        return self._bounds_min

    @property
    def bounds_max(self) -> np.ndarray:
        return self._bounds_max

    def _normalize(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        center = 0.5 * (self._bounds_min + self._bounds_max)
        return (points - center) / (0.5 * self._extent)

    def forward(self, points: np.ndarray, return_cache: bool = False):
        encoded = self.encoding(self._normalize(points))
        return self.mlp.forward(encoded, return_cache=return_cache)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Non-negative volume density."""
        outputs = self.forward(points)
        return _softplus(outputs[:, 0])

    def color(self, points: np.ndarray) -> np.ndarray:
        """Emitted colour in [0, 1]."""
        outputs = self.forward(points)
        return _sigmoid(outputs[:, 1:4])

    # -- field protocol (density iso-surface) -------------------------------

    def sdf(self, points: np.ndarray) -> np.ndarray:
        """Pseudo-SDF: negative where density exceeds the threshold."""
        return (self.density_threshold - self.density(points)) * (
            0.05 * self._extent / max(self.density_threshold, 1e-6)
        )

    def albedo(self, points: np.ndarray) -> np.ndarray:
        return self.color(points)


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30.0, 30.0)))


def _softplus(values: np.ndarray) -> np.ndarray:
    return np.log1p(np.exp(-np.abs(values))) + np.maximum(values, 0.0)
