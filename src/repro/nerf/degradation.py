"""Training-coverage degradation model.

Full-scale GPU training of a NeRF is replaced, for the large parameter
sweeps, by an explicit model of *how well a field can be learned from its
training views*.  The paper's core observation motivates it (§I): when a
complex object occupies only a small number of pixels in each training
frame, the network cannot recover its high-frequency geometry and texture,
and poorly constrained regions grow spurious density ("floaters") that
inflate the baked mesh without improving quality (§IV-B).

:class:`DegradedField` wraps any field and applies three effects whose
magnitude is governed by a single length scale — the *detail scale*, i.e.
the world-space size of one training pixel on the object:

* **geometry noise** — the SDF is perturbed by smooth noise of amplitude
  proportional to the detail scale (surfaces wobble at the scale the
  training could not resolve);
* **appearance low-pass** — albedo queries are quantised to the detail
  scale, removing texture detail finer than a training pixel;
* **floaters** — spurious occupied blobs appear in free space at a rate
  that grows with the detail scale, reproducing the "bigger model, not
  better quality" behaviour of under-constrained single-scene NeRFs.

:func:`coverage_detail_scale` derives the detail scale from actual training
views (object mask areas), so the degradation applied to the single-NeRF
baseline, to Block-NeRF and to NeRFlex's per-object networks follows from
the same measured quantity rather than per-method tuning.
"""

from __future__ import annotations

import numpy as np

#: Geometry noise amplitude as a fraction of the detail scale.
GEOMETRY_NOISE_FACTOR = 0.45
#: Floater probability grows linearly with (detail scale / extent) above the
#: threshold below which training coverage is dense enough to prune floaters.
FLOATER_RATE_FACTOR = 6.0
FLOATER_COVERAGE_THRESHOLD = 0.02
#: Maximum per-cell floater probability.
FLOATER_MAX_PROBABILITY = 0.4
#: Floaters only appear within this many detail scales of real geometry
#: (NeRF floaters cluster around poorly constrained surfaces).
FLOATER_SHELL_FACTOR = 6.0


def coverage_detail_scale(
    mask_pixel_counts: "list | np.ndarray",
    world_extent: float,
    network_factor: float = 1.0,
    floor_fraction: float = 1e-4,
) -> float:
    """World-space size of one training pixel on the object.

    Args:
        mask_pixel_counts: per-training-view pixel counts of the object (or
            scene) of interest.  The *best* view (largest count) bounds the
            finest detail the network can learn.
        world_extent: the object's (or scene's) world extent.
        network_factor: multiplier expressing network capability (1.0 for a
            MobileNeRF-class network, <1 for stronger baselines such as
            Instant-NGP); smaller means less degradation.
        floor_fraction: lower bound on the returned scale as a fraction of
            the extent (a perfectly covered object still has finite
            resolution).
    """
    counts = np.asarray(list(mask_pixel_counts), dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size == 0:
        # Never observed: the field is essentially unconstrained.
        return float(world_extent)
    pixels_across = np.sqrt(counts.max())
    scale = float(world_extent) / pixels_across * float(network_factor)
    return max(scale, float(floor_fraction) * float(world_extent))


def _hash01(cells: np.ndarray, salt: float) -> np.ndarray:
    """Deterministic pseudo-random values in [0, 1) per integer cell."""
    cells = np.asarray(cells, dtype=np.float64)
    dots = cells @ np.array([127.1, 311.7, 74.7]) + salt * 53.7
    return np.modf(np.abs(np.sin(dots) * 43758.5453123))[0]


class DegradedField:
    """A field degraded according to its training coverage.

    Args:
        base_field: the field that would be learned with unlimited training
            resolution (typically an :class:`~repro.nerf.field.AnalyticField`
            or a placed object / scene).
        detail_scale: world-space size of one training pixel on the content
            (see :func:`coverage_detail_scale`).
        floater_rate: per-cell probability of a spurious blob; derived from
            the detail scale when omitted.
        seed: seed controlling the deterministic noise phases.
    """

    def __init__(
        self,
        base_field,
        detail_scale: float,
        floater_rate: "float | None" = None,
        seed: int = 0,
    ) -> None:
        if detail_scale <= 0:
            raise ValueError("detail_scale must be positive")
        self.base = base_field
        self.detail_scale = float(detail_scale)
        self.seed = int(seed)

        extent = float(np.max(np.asarray(base_field.bounds_max) - np.asarray(base_field.bounds_min)))
        self.extent = extent
        self.noise_amplitude = GEOMETRY_NOISE_FACTOR * self.detail_scale
        # Noise wavelength: a couple of detail scales — reconstruction error
        # has spectral content right up to the resolution the training views
        # could constrain, and is hallucinated noise below it.
        self.noise_wavelength = max(2.5 * self.detail_scale, 1e-6)

        if floater_rate is None:
            relative = self.detail_scale / max(extent, 1e-9)
            floater_rate = min(
                max(FLOATER_RATE_FACTOR * (relative - FLOATER_COVERAGE_THRESHOLD), 0.0),
                FLOATER_MAX_PROBABILITY,
            )
        self.floater_rate = float(floater_rate)
        # Floater lattice: small "dust" blobs on a lattice of a few detail
        # scales; each cell may host one blob.
        self.floater_spacing = max(2.0 * self.detail_scale, extent / 96.0)
        self.floater_radius = 0.55 * self.detail_scale
        self.floater_shell = FLOATER_SHELL_FACTOR * self.detail_scale

        # Deterministic noise phases derived from the seed.
        rng = np.random.default_rng(seed)
        self._noise_dirs = rng.normal(size=(3, 3))
        self._noise_dirs /= np.linalg.norm(self._noise_dirs, axis=1, keepdims=True)
        self._noise_phases = rng.uniform(0.0, 2.0 * np.pi, size=3)

        # Lipschitz bound of the degraded SDF, advertised so the
        # hierarchical voxeliser can prune exactly: the base field's bound
        # plus the geometry noise's maximum slope (amplitude x wavenumber).
        # Floaters appear/disappear discontinuously across their lattice
        # cells, and a base field without an advertised bound (e.g. an
        # MLP-backed pseudo-SDF) has no usable one either — both cases
        # force exhaustive sampling.
        base_lipschitz = getattr(base_field, "sdf_lipschitz", None)
        noise_slope = self.noise_amplitude * (2.0 * np.pi / self.noise_wavelength)
        if self.floater_rate > 0.0 or base_lipschitz is None:
            self.sdf_lipschitz = np.inf
        else:
            self.sdf_lipschitz = max(float(base_lipschitz) + noise_slope, 1.0)

    # -- field protocol ----------------------------------------------------

    @property
    def bounds_min(self) -> np.ndarray:
        return self.base.bounds_min

    @property
    def bounds_max(self) -> np.ndarray:
        return self.base.bounds_max

    def sdf(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        base_distance = self.base.sdf(points)
        distance = base_distance + self.noise_amplitude * self._geometry_noise(points)
        if self.floater_rate > 0.0:
            distance = np.minimum(distance, self._floater_sdf(points, base_distance))
        return distance

    def albedo(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        # Appearance low-pass: quantise queries to the detail scale so any
        # texture variation finer than a training pixel is lost.
        cell = max(1.2 * self.detail_scale, 1e-9)
        quantized = (np.floor(points / cell) + 0.5) * cell
        return self.base.albedo(quantized)

    # -- degradation components ---------------------------------------------

    def _geometry_noise(self, points: np.ndarray) -> np.ndarray:
        """Smooth pseudo-random field with values roughly in [-1, 1]."""
        value = np.zeros(points.shape[0])
        wavenumber = 2.0 * np.pi / self.noise_wavelength
        for direction, phase in zip(self._noise_dirs, self._noise_phases):
            value += np.sin(wavenumber * (points @ direction) + phase)
        return value / len(self._noise_phases)

    def _floater_sdf(self, points: np.ndarray, base_distance: np.ndarray) -> np.ndarray:
        """Signed distance to the spurious blobs (positive when none nearby).

        Floaters only materialise within a shell around real geometry — the
        poorly constrained region where an under-trained NeRF accumulates
        spurious density — so empty space far from any surface stays clean.
        """
        spacing = self.floater_spacing
        cells = np.floor(points / spacing)
        exists = _hash01(cells, salt=1.0 + self.seed) < self.floater_rate
        exists &= base_distance < self.floater_shell
        offsets = np.stack(
            [_hash01(cells, salt=salt + self.seed) for salt in (2.0, 3.0, 4.0)], axis=1
        )
        centers = (cells + 0.2 + 0.6 * offsets) * spacing
        radii = self.floater_radius * (0.5 + _hash01(cells, salt=5.0 + self.seed))
        distance = np.linalg.norm(points - centers, axis=1) - radii
        # Cells without a floater contribute a large positive distance.
        return np.where(exists, distance, np.full_like(distance, 10.0 * self.extent))

    def describe(self) -> dict:
        return {
            "detail_scale": self.detail_scale,
            "noise_amplitude": self.noise_amplitude,
            "floater_rate": self.floater_rate,
            "floater_spacing": self.floater_spacing,
        }
