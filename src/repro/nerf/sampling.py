"""Ray sampling strategies for volume rendering."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


def stratified_samples(
    near: np.ndarray,
    far: np.ndarray,
    num_samples: int,
    rng: "np.random.Generator | int | None" = None,
    jitter: bool = True,
) -> np.ndarray:
    """Stratified sample distances along each ray.

    Args:
        near / far: ``(R,)`` per-ray integration bounds.
        num_samples: samples per ray.
        rng: generator or seed for the stratified jitter.
        jitter: when false, samples sit at bin centres (deterministic).

    Returns:
        ``(R, num_samples)`` array of distances, monotonically increasing
        along each ray.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    near = np.asarray(near, dtype=np.float64).reshape(-1)
    far = np.asarray(far, dtype=np.float64).reshape(-1)
    if near.shape != far.shape:
        raise ValueError("near and far must have the same shape")
    if np.any(far < near):
        raise ValueError("far must be >= near for every ray")

    bins = np.linspace(0.0, 1.0, num_samples + 1)
    lower = bins[:-1][None, :]
    width = (bins[1:] - bins[:-1])[None, :]
    if jitter:
        generator = make_rng(rng)
        offsets = generator.uniform(size=(near.shape[0], num_samples))
    else:
        offsets = np.full((near.shape[0], num_samples), 0.5)
    fractions = lower + offsets * width
    return near[:, None] + fractions * (far - near)[:, None]
