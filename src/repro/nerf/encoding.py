"""Sinusoidal positional encoding (NeRF's input featurisation)."""

from __future__ import annotations

import numpy as np


class PositionalEncoding:
    """Map coordinates to a bank of sinusoids at geometrically spaced
    frequencies, as in the original NeRF.

    Args:
        num_frequencies: number of octaves; frequencies are
            ``2^0 .. 2^(L-1)`` (times pi).
        include_input: whether the raw coordinates are appended.
        input_dim: dimensionality of the encoded coordinates (3 for xyz).
    """

    def __init__(
        self, num_frequencies: int = 6, include_input: bool = True, input_dim: int = 3
    ) -> None:
        if num_frequencies < 1:
            raise ValueError("num_frequencies must be at least 1")
        self.num_frequencies = int(num_frequencies)
        self.include_input = bool(include_input)
        self.input_dim = int(input_dim)
        self.frequencies = (2.0 ** np.arange(self.num_frequencies)) * np.pi

    @property
    def output_dim(self) -> int:
        dim = 2 * self.num_frequencies * self.input_dim
        if self.include_input:
            dim += self.input_dim
        return dim

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Encode ``(N, input_dim)`` coordinates to ``(N, output_dim)``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.input_dim:
            raise ValueError(
                f"expected (N, {self.input_dim}) points, got {points.shape}"
            )
        angles = points[:, None, :] * self.frequencies[None, :, None]
        encoded = np.concatenate(
            [np.sin(angles), np.cos(angles)], axis=1
        ).reshape(points.shape[0], -1)
        if self.include_input:
            encoded = np.concatenate([points, encoded], axis=1)
        return encoded

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.encode(points)
