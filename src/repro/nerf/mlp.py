"""A small fully-connected network with manual backpropagation.

PyTorch is unavailable in this environment, so the NeRF networks are plain
numpy MLPs: ReLU hidden layers, linear output, explicit forward caches and
gradients, trained with Adam.  The networks the paper uses per sub-scene are
tiny (a few thousand parameters once baked), so this scale is sufficient to
demonstrate the full train -> bake -> deploy path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng


class MLP:
    """Multi-layer perceptron with ReLU activations and a linear head."""

    def __init__(self, layer_sizes: list, seed: "int | None" = 0) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output size")
        rng = make_rng(seed)
        self.layer_sizes = [int(size) for size in layer_sizes]
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def num_parameters(self) -> int:
        return int(
            sum(w.size for w in self.weights) + sum(b.size for b in self.biases)
        )

    def parameters(self) -> list:
        """Flat list of parameter arrays (weights then biases, per layer)."""
        params = []
        for weight, bias in zip(self.weights, self.biases):
            params.extend([weight, bias])
        return params

    def forward(self, inputs: np.ndarray, return_cache: bool = False):
        """Forward pass; optionally returns the activation cache for backward."""
        activations = [np.asarray(inputs, dtype=np.float64)]
        pre_activations = []
        hidden = activations[0]
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre = hidden @ weight + bias
            pre_activations.append(pre)
            if index < self.num_layers - 1:
                hidden = np.maximum(pre, 0.0)
            else:
                hidden = pre
            activations.append(hidden)
        if return_cache:
            return hidden, (activations, pre_activations)
        return hidden

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def backward(self, grad_output: np.ndarray, cache) -> list:
        """Backpropagate ``dL/d(output)`` through the cached forward pass.

        Returns gradients in the same order as :meth:`parameters`.
        """
        activations, pre_activations = cache
        grads = [None] * (2 * self.num_layers)
        grad = np.asarray(grad_output, dtype=np.float64)
        for index in range(self.num_layers - 1, -1, -1):
            if index < self.num_layers - 1:
                grad = grad * (pre_activations[index] > 0.0)
            grads[2 * index] = activations[index].T @ grad
            grads[2 * index + 1] = grad.sum(axis=0)
            if index > 0:
                grad = grad @ self.weights[index].T
        return grads


@dataclass
class AdamOptimizer:
    """Adam optimiser over a fixed list of parameter arrays."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8

    def __post_init__(self) -> None:
        self._first_moments = None
        self._second_moments = None
        self._step = 0

    def step(self, parameters: list, gradients: list) -> None:
        """Apply one in-place Adam update to ``parameters``."""
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must have the same length")
        if self._first_moments is None:
            self._first_moments = [np.zeros_like(param) for param in parameters]
            self._second_moments = [np.zeros_like(param) for param in parameters]
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, grad, moment1, moment2 in zip(
            parameters, gradients, self._first_moments, self._second_moments
        ):
            moment1 *= self.beta1
            moment1 += (1.0 - self.beta1) * grad
            moment2 *= self.beta2
            moment2 += (1.0 - self.beta2) * grad**2
            corrected1 = moment1 / bias1
            corrected2 = moment2 / bias2
            param -= self.learning_rate * corrected1 / (np.sqrt(corrected2) + self.epsilon)
