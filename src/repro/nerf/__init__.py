"""Radiance-field substrate (pure numpy).

The paper trains one NeRF per sub-scene on a GPU cluster.  This package
rebuilds the training stack at laptop scale:

* :mod:`repro.nerf.encoding`  — sinusoidal positional encoding;
* :mod:`repro.nerf.mlp`       — a small fully-connected network with manual
  backpropagation and an Adam optimiser;
* :mod:`repro.nerf.field`     — field adapters: the analytic ground-truth
  field, an MLP field distilled from it, and a classic density/colour NeRF;
* :mod:`repro.nerf.sampling`  — stratified ray sampling;
* :mod:`repro.nerf.rendering` — volume rendering (forward and gradients);
* :mod:`repro.nerf.training`  — distillation and image-based training loops;
* :mod:`repro.nerf.degradation` — the training-coverage degradation model
  that stands in for full-scale GPU training when a field is learned from
  views in which an object covers only a few pixels (see DESIGN.md).
"""

from repro.nerf.encoding import PositionalEncoding
from repro.nerf.mlp import MLP, AdamOptimizer
from repro.nerf.field import AnalyticField, DistilledField, NeRFField
from repro.nerf.sampling import stratified_samples
from repro.nerf.rendering import volume_render_field, composite_samples
from repro.nerf.training import train_distilled_field, train_nerf_from_images
from repro.nerf.degradation import DegradedField, coverage_detail_scale

__all__ = [
    "PositionalEncoding",
    "MLP",
    "AdamOptimizer",
    "AnalyticField",
    "DistilledField",
    "NeRFField",
    "stratified_samples",
    "volume_render_field",
    "composite_samples",
    "train_distilled_field",
    "train_nerf_from_images",
    "DegradedField",
    "coverage_detail_scale",
]
