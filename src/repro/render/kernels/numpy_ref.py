"""The vectorised NumPy reference implementation of every render kernel.

These functions are the *semantics* of the kernel layer: each compiled
backend (:mod:`repro.render.kernels.loops` compiled by
:mod:`repro.render.kernels.numba_backend`) is pinned against them by the
tiered parity suite (``tests/test_render_kernels.py``) at the tolerance its
declared tier permits — bit-identical for the occupancy marcher and the
sphere-tracer bookkeeping, bounded-ULP for the exp/reduction-bearing
volume kernels (see ``PARITY_TIERS`` in
:mod:`repro.render.kernels.registry`).

The bodies are the exact hot-loop math that historically lived inline in
:mod:`repro.render.engine` and :mod:`repro.nerf.rendering`; moving it here
changed call boundaries only, never values, so the engine's legacy parity
pins (``tests/test_render_engine.py``) keep holding bit for bit.

Every kernel is a narrow array-in/array-out function: no engine state, no
callables, no I/O — the contract that lets the same signature be compiled
to native loops and shipped through forked/spawned workers.
"""

from __future__ import annotations

import numpy as np

from repro.baking.meshing import _TANGENT_AXES

#: Quad-face in-plane axes by face-normal axis, as flat lookup tables
#: (``u`` spans ``TANGENT_U[axis]``, ``v`` spans ``TANGENT_V[axis]``).
#: Derived from the meshing module's table so there is one source of truth;
#: the loop backend hard-codes the same mapping as branches (verified
#: against these tables by the parity suite).
TANGENT_U = np.array([_TANGENT_AXES[axis][0] for axis in range(3)], dtype=np.int64)
TANGENT_V = np.array([_TANGENT_AXES[axis][1] for axis in range(3)], dtype=np.int64)


def march_occupancy(
    origins: np.ndarray,
    directions: np.ndarray,
    t_near: np.ndarray,
    t_far: np.ndarray,
    grid_lo: np.ndarray,
    voxel: float,
    step: float,
    resolution: int,
    occupancy: np.ndarray,
    face_keys: np.ndarray,
    face_order: np.ndarray,
    voxel_keys: np.ndarray,
    slab_steps: int,
) -> tuple:
    """First-hit occupancy-grid march of one chunk of candidate rays.

    Marches the sample ladder ``t = t_near + (k + 0.5) * step`` per ray,
    finds the first occupied voxel, computes the exact entry point into its
    AABB and resolves the ``(voxel, axis, sign)`` face key against the
    sorted face tables (interior entries fall back to any face of the
    voxel).  Texture sampling stays with the caller — the kernel returns
    in-face coordinates, not colours.

    Args:
        origins / directions: ``(N, 3)`` float64 candidate rays.
        t_near / t_far: ``(N,)`` clamped AABB entry/exit distances
            (``t_far > t_near`` for every candidate).
        grid_lo: ``(3,)`` world position of the grid's minimum corner.
        voxel: voxel edge length; ``step``: marching step (``voxel *
            step_scale``).
        resolution: grid resolution ``g``.
        occupancy: ``(g, g, g)`` boolean occupancy.
        face_keys / face_order / voxel_keys: the sorted face-lookup tables
            built by the engine's ``_face_keys``.
        slab_steps: samples examined per vectorised marching round (loop
            backends ignore it; the sample ladder is identical either way).

    Returns:
        ``(hit_rows, face_indices, u, v, t_entry)`` — ascending chunk-local
        hit rows, the face index and in-face coordinates to sample, and the
        entry distance.  Empty int64/float64 arrays when nothing hit.
    """
    num_rays = origins.shape[0]
    g = int(resolution)

    span = float(np.max(t_far - t_near)) if num_rays else 0.0
    num_steps = max(int(np.ceil(span / step)) + 1, 1)

    # Slab-wise march with early-termination compaction: rays stop
    # participating as soon as their first occupied voxel is found.  The
    # sample ladder is identical to evaluating all ``num_steps`` samples at
    # once, so the result is bit-identical to a full-span evaluation — it
    # just skips the samples behind a hit.
    hit_rows_parts = []
    hit_voxels_parts = []
    active = np.arange(num_rays)
    for slab_start in range(0, num_steps, slab_steps):
        if active.size == 0:
            break
        ks = np.arange(slab_start, min(slab_start + slab_steps, num_steps))
        t_samples = t_near[active, None] + (ks[None, :] + 0.5) * step
        valid = t_samples <= t_far[active, None]
        points = (
            origins[active, None, :]
            + t_samples[..., None] * directions[active, None, :]
        )
        indices = np.floor((points - grid_lo) / voxel).astype(int)
        inside = np.all((indices >= 0) & (indices < g), axis=-1)
        clipped = np.clip(indices, 0, g - 1)
        occupied = occupancy[clipped[..., 0], clipped[..., 1], clipped[..., 2]]
        occupied = occupied & inside & valid

        any_hit = occupied.any(axis=1)
        if any_hit.any():
            local_rows = np.flatnonzero(any_hit)
            first = occupied[local_rows].argmax(axis=1)
            hit_rows_parts.append(active[local_rows])
            hit_voxels_parts.append(clipped[local_rows, first])
        # Rays whose remaining samples are all beyond t_far are done.
        finished = any_hit | ~valid[:, -1]
        active = active[~finished]

    if not hit_rows_parts:
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        return empty_i, empty_i.copy(), empty_f, empty_f.copy(), empty_f.copy()
    hit_rows = np.concatenate(hit_rows_parts)
    hit_voxels = np.concatenate(hit_voxels_parts, axis=0)
    order = np.argsort(hit_rows, kind="stable")
    hit_rows = hit_rows[order]
    hit_voxels = hit_voxels[order]

    # Exact entry point into the hit voxel (slab test on its AABB).
    voxel_lo = grid_lo + hit_voxels * voxel
    voxel_hi = voxel_lo + voxel
    sub_origins = origins[hit_rows]
    sub_dirs = directions[hit_rows]
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / sub_dirs
    t_lo_axis = (voxel_lo - sub_origins) * inv
    t_hi_axis = (voxel_hi - sub_origins) * inv
    t_axis_entry = np.minimum(t_lo_axis, t_hi_axis)
    # Guard against rays parallel to an axis (inv = inf -> t = -inf/nan).
    t_axis_entry = np.where(np.isfinite(t_axis_entry), t_axis_entry, -np.inf)
    entry_axis = t_axis_entry.argmax(axis=1)
    t_entry = np.maximum(t_axis_entry[np.arange(len(hit_rows)), entry_axis], 0.0)
    entry_points = sub_origins + t_entry[:, None] * sub_dirs
    entry_sign = np.where(sub_dirs[np.arange(len(hit_rows)), entry_axis] > 0, -1, 1)

    # Face lookup: exact (voxel, axis, sign) key, falling back to any face
    # of the voxel when marching entered through an interior face.
    voxel_key = (hit_voxels[:, 0] * g + hit_voxels[:, 1]) * g + hit_voxels[:, 2]
    face_key = voxel_key * 6 + entry_axis * 2 + (entry_sign > 0)
    pos = np.searchsorted(face_keys, face_key)
    pos = np.clip(pos, 0, len(face_keys) - 1)
    found = face_keys[pos] == face_key
    face_indices = face_order[pos]
    if not found.all():
        fallback_pos = np.searchsorted(voxel_keys, voxel_key[~found])
        fallback_pos = np.clip(fallback_pos, 0, len(voxel_keys) - 1)
        face_indices[~found] = face_order[fallback_pos]

    # In-face texture coordinates from the entry point.
    local = (entry_points - voxel_lo) / voxel
    tangent_u = TANGENT_U[entry_axis]
    tangent_v = TANGENT_V[entry_axis]
    rows = np.arange(len(hit_rows))
    u = np.clip(local[rows, tangent_u], 0.0, 1.0)
    v = np.clip(local[rows, tangent_v], 0.0, 1.0)

    return (
        hit_rows.astype(np.int64, copy=False),
        face_indices.astype(np.int64, copy=False),
        u,
        v,
        t_entry,
    )


def sdf_to_density(sdf: np.ndarray, surface_width: float) -> np.ndarray:
    """Convert ``(R, S)`` signed distances to volume density.

    Density is high inside the surface and falls off smoothly across a band
    of width ``surface_width`` outside it (the logistic bump of the volume
    renderer).
    """
    width = max(surface_width, 1e-9)
    scaled = np.clip(-sdf / width, -30.0, 30.0)
    return 30.0 / width * (1.0 / (1.0 + np.exp(-scaled))) * 0.5


def composite_forward(
    densities: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    background: np.ndarray,
    sample_distances: np.ndarray,
) -> tuple:
    """Alpha-composite per-sample densities and colours along rays.

    Args:
        densities: ``(R, S)`` densities (clamped at zero inside the kernel).
        colors: ``(R, S, 3)`` per-sample colours.
        deltas: ``(R, S)`` distances between consecutive samples.
        background: ``(3,)`` colour composited behind the volume.
        sample_distances: ``(R, S)`` absolute sample distances (the
            reported depth is their weighted expectation).

    Returns:
        ``(rgb, weights, transmittance, depth, alpha)`` with shapes
        ``(R, 3)``, ``(R, S)``, ``(R, S+1)``, ``(R,)``, ``(R,)``.
    """
    densities = np.maximum(densities, 0.0)
    alphas = 1.0 - np.exp(-densities * deltas)
    ones = np.ones((alphas.shape[0], 1))
    transmittance = np.concatenate(
        [ones, np.cumprod(1.0 - alphas + 1e-12, axis=1)], axis=1
    )
    weights = transmittance[:, :-1] * alphas
    rgb = (weights[..., None] * colors).sum(axis=1)
    rgb = rgb + transmittance[:, -1:] * background
    cumulative = weights.sum(axis=1)
    depth = (weights * sample_distances).sum(axis=1) / np.maximum(cumulative, 1e-8)
    return rgb, weights, transmittance, depth, cumulative


def gather_ray_points(
    origins: np.ndarray,
    directions: np.ndarray,
    t_values: np.ndarray,
    alive: np.ndarray,
) -> np.ndarray:
    """Current sample positions ``o + t * d`` of the ``alive`` rays."""
    return origins[alive] + t_values[alive, None] * directions[alive]


def sphere_advance(
    t_values: np.ndarray,
    hit: np.ndarray,
    alive: np.ndarray,
    distances: np.ndarray,
    limits: np.ndarray,
    hit_epsilon: float,
) -> np.ndarray:
    """One sphere-tracing step: record hits, advance survivors, compact.

    Mutates ``t_values`` and ``hit`` in place (rows indexed by ``alive``)
    and returns the compacted alive set — rays that neither hit nor
    escaped their per-ray ``limits``.
    """
    newly_hit = distances < hit_epsilon
    hit[alive[newly_hit]] = True
    advancing = ~newly_hit
    advancing_ids = alive[advancing]
    t_values[advancing_ids] += np.maximum(distances[advancing], hit_epsilon)
    escaped = t_values[advancing_ids] > limits[advancing_ids]
    return advancing_ids[~escaped]
