"""The kernel registry: named backends, selection order, warm-up.

A *kernel backend* is a :class:`KernelSet` — the five narrow
array-in/array-out functions the render engine dispatches its hot loops
to.  Three backends are registered:

``numpy``
    The vectorised reference (:mod:`repro.render.kernels.numpy_ref`).
    Always available; defines the semantics every other backend is pinned
    against.
``loops``
    The per-ray plain-Python loops (:mod:`repro.render.kernels.loops`)
    executed *uncompiled*.  Far slower than numpy — it exists so the
    parity suite can prove the loop algorithms equivalent to the
    reference on machines without numba, and as the debugging vehicle for
    the compiled path (same code, python tracebacks).
``numba``
    The same loops compiled by :mod:`repro.render.kernels.numba_backend`.
    Registered only when numba imports; the fast path.

Selection order (:func:`resolve_kernel_name`): an explicit name wins and
is strict — asking for ``numba`` where it is not installed is an error,
not a silent slowdown.  ``auto`` (the default, also via the
``REPRO_KERNEL`` environment knob declared in :mod:`repro.config.env`)
prefers the compiled path and degrades gracefully to ``numpy``.  The
environment value is forgiving like every other ``REPRO_*`` knob:
``REPRO_KERNEL=numba`` on a numba-less machine falls back to ``numpy``
rather than failing a run that would have produced identical values.

Fork/pickle contract: the engine stores only the resolved kernel *name*
(a string) and chunk functions call :func:`get_kernels` at execution
time, so nothing compiled or unpicklable ever crosses a transport.  Each
worker process resolves its own :class:`KernelSet` from this module-level
registry; :func:`warm_up` triggers JIT compilation eagerly where first-call
latency matters (numba's on-disk cache makes it cheap after the first
process on a machine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import env as repro_env
from repro.render.kernels import loops as _loops
from repro.render.kernels import numba_backend as _numba_backend
from repro.render.kernels import numpy_ref as _numpy_ref

#: Environment variable that overrides the default kernel selection.
KERNEL_ENV_VAR = repro_env.REPRO_KERNEL.name

#: The selection placeholder: not a backend, but "pick for me".
AUTO_KERNEL_NAME = "auto"

#: ``auto`` tries these in order and takes the first registered one.
AUTO_PREFERENCE = ("numba", "numpy")

#: Whether the compiled backend registered in this process.
NUMBA_AVAILABLE = _numba_backend.NUMBA_AVAILABLE

#: Parity-tier labels (see DESIGN.md "Kernels").
PARITY_EXACT = "exact"
PARITY_BOUNDED_ULP = "bounded-ulp"

#: The declared parity tier of every kernel function: ``exact`` results
#: must be bit-identical across all backends; ``bounded-ulp`` results may
#: differ by a few ULP (sequential vs pairwise reductions, scalar vs
#: vectorised ``exp``) and are pinned at a small ``maxulp`` by the parity
#: suite.  Tests import this mapping so the tiers are enforced, not prose.
PARITY_TIERS = {
    "march_occupancy": PARITY_EXACT,
    "gather_ray_points": PARITY_EXACT,
    "sphere_advance": PARITY_EXACT,
    "sdf_to_density": PARITY_BOUNDED_ULP,
    "composite_forward": PARITY_BOUNDED_ULP,
}


@dataclass(frozen=True)
class KernelSet:
    """One named kernel backend: the five dispatchable hot-loop functions.

    ``compiled`` distinguishes native code from interpreted backends —
    benchmarks report it, and :func:`warm_up` only has real work to do
    when it is set.
    """

    name: str
    compiled: bool
    march_occupancy: "callable"
    sdf_to_density: "callable"
    composite_forward: "callable"
    gather_ray_points: "callable"
    sphere_advance: "callable"

    def describe(self) -> str:
        return f"{self.name}({'compiled' if self.compiled else 'interpreted'})"


def _from_namespace(name: str, namespace, compiled: bool) -> KernelSet:
    """Build a :class:`KernelSet` from a module or mapping of functions."""
    if isinstance(namespace, dict):
        functions = {fn: namespace[fn] for fn in _loops.KERNEL_FUNCTION_NAMES}
    else:
        functions = {
            fn: getattr(namespace, fn) for fn in _loops.KERNEL_FUNCTION_NAMES
        }
    return KernelSet(name=name, compiled=compiled, **functions)


#: Registry of selectable kernel backends, keyed by the names accepted
#: from ``PipelineConfig.kernel`` and the ``REPRO_KERNEL`` environment
#: variable.  ``numba`` is present only when it imported.
KERNELS = {
    "numpy": _from_namespace("numpy", _numpy_ref, compiled=False),
    "loops": _from_namespace("loops", _loops, compiled=False),
}
if NUMBA_AVAILABLE:
    KERNELS["numba"] = _from_namespace(
        "numba", _numba_backend.COMPILED, compiled=True
    )


def known_kernel_names() -> list:
    """Every name :func:`resolve_kernel_name` accepts in this process."""
    return sorted(KERNELS) + [AUTO_KERNEL_NAME]


def resolve_kernel_name(name=None) -> str:
    """Resolve a kernel selection to the name of a registered backend.

    Args:
        name: a backend name, ``"auto"``, or ``None`` to consult the
            ``REPRO_KERNEL`` environment variable (default ``auto``).

    Returns:
        A key of :data:`KERNELS` — the string the engine stores and ships
        to workers instead of the (potentially unpicklable) kernel set.

    Raises:
        ValueError: for an unknown name, or for an *explicitly requested*
            ``numba`` when numba is not installed.  An environment-selected
            ``numba`` falls back to ``numpy`` instead (environment knobs
            never take a run down; see :mod:`repro.config.env`).
    """
    from_env = name is None
    if from_env:
        name = repro_env.REPRO_KERNEL.get()
    name = str(name).strip().lower() or AUTO_KERNEL_NAME
    if name == AUTO_KERNEL_NAME:
        for candidate in AUTO_PREFERENCE:
            if candidate in KERNELS:
                return candidate
        raise ValueError(  # pragma: no cover - numpy always registers
            "no kernel backend available"
        )
    if name in KERNELS:
        return name
    if from_env:
        # A stale/foreign environment must not break runs that would have
        # produced identical values on the reference backend.
        return resolve_kernel_name(AUTO_KERNEL_NAME)
    if name == "numba":
        raise ValueError(
            "kernel backend 'numba' requested explicitly but numba is not "
            "installed; install numba or select 'auto' to fall back"
        )
    raise ValueError(
        f"unknown kernel backend {name!r}; expected one of "
        f"{known_kernel_names()}"
    )


def get_kernels(name=None) -> KernelSet:
    """The :class:`KernelSet` for a selection (resolved per this process).

    This is the function chunk closures call *inside* workers: passing the
    resolved name (a plain string) through a transport and re-resolving
    here keeps compiled functions out of pickles entirely.
    """
    return KERNELS[resolve_kernel_name(name)]


def warm_up(name=None) -> KernelSet:
    """Exercise every kernel of a backend once on tiny inputs.

    For compiled backends this triggers JIT compilation (or a load from
    numba's on-disk cache) up front, so the first measured chunk does not
    pay it.  Interpreted backends run the same calls as a cheap smoke
    test.  Returns the warmed :class:`KernelSet`.
    """
    kernels = get_kernels(name)

    origins = np.array([[-1.0, 0.5, 0.5]])
    directions = np.array([[1.0, 0.0, 0.0]])
    t_near = np.array([0.5])
    t_far = np.array([2.5])
    grid_lo = np.zeros(3)
    occupancy = np.ones((1, 1, 1), dtype=bool)
    face_keys = np.arange(6, dtype=np.int64)
    face_order = np.zeros(6, dtype=np.int64)
    voxel_keys = np.zeros(6, dtype=np.int64)
    kernels.march_occupancy(
        origins, directions, t_near, t_far, grid_lo, 1.0, 0.5, 1,
        occupancy, face_keys, face_order, voxel_keys, 32,
    )

    sdf = np.array([[0.25, -0.25]])
    densities = kernels.sdf_to_density(sdf, 0.1)
    colors = np.full((1, 2, 3), 0.5)
    deltas = np.full((1, 2), 0.1)
    background = np.zeros(3)
    sample_distances = np.array([[1.0, 1.1]])
    kernels.composite_forward(densities, colors, deltas, background,
                              sample_distances)

    alive = np.array([0], dtype=np.int64)
    t_values = np.array([0.5])
    kernels.gather_ray_points(origins, directions, t_values, alive)

    hit = np.zeros(1, dtype=bool)
    distances = np.array([0.25])
    limits = np.array([4.0])
    kernels.sphere_advance(t_values, hit, alive, distances, limits, 1e-4)
    return kernels
