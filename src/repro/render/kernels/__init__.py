"""Compiled kernel layer for the render engine's hot loops.

Public surface of the registry (see
:mod:`repro.render.kernels.registry` for the selection and fork-safety
contracts, and DESIGN.md "Kernels" for the prose version):

* :class:`KernelSet` — the five array-in/array-out hot-loop functions of
  one named backend (``numpy`` reference, ``loops`` uncompiled per-ray,
  ``numba`` compiled when available);
* :func:`resolve_kernel_name` / :func:`get_kernels` — name-based
  selection (``REPRO_KERNEL`` / ``PipelineConfig.kernel``), strings only
  across process boundaries;
* :func:`warm_up` — eager JIT compile per process;
* :data:`PARITY_TIERS` — the declared parity tier per kernel, enforced by
  ``tests/test_render_kernels.py``.
"""

from repro.render.kernels.registry import (
    AUTO_KERNEL_NAME,
    AUTO_PREFERENCE,
    KERNEL_ENV_VAR,
    KERNELS,
    NUMBA_AVAILABLE,
    PARITY_BOUNDED_ULP,
    PARITY_EXACT,
    PARITY_TIERS,
    KernelSet,
    get_kernels,
    known_kernel_names,
    resolve_kernel_name,
    warm_up,
)

__all__ = [
    "AUTO_KERNEL_NAME",
    "AUTO_PREFERENCE",
    "KERNEL_ENV_VAR",
    "KERNELS",
    "NUMBA_AVAILABLE",
    "PARITY_BOUNDED_ULP",
    "PARITY_EXACT",
    "PARITY_TIERS",
    "KernelSet",
    "get_kernels",
    "known_kernel_names",
    "resolve_kernel_name",
    "warm_up",
]
