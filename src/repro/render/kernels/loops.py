"""Per-ray loop implementations of the render kernels (numba-compilable).

Each function here is the scalar-loop form of the matching vectorised
reference in :mod:`repro.render.kernels.numpy_ref`, written in the
restricted Python subset numba's nopython mode compiles: preallocated
outputs, explicit index loops, ``math`` scalar functions, no fancy
indexing, no closures, no Python objects.  The functions run *uncompiled*
too — deliberately: the tiered parity suite executes them as plain Python
on every machine, so the algorithmic equivalence to the reference is
proven even where numba is not installed, and the numba backend merely
compiles code that is already pinned.

Determinism notes, load-bearing for the parity tiers:

* no ``fastmath`` anywhere (the numba backend compiles with
  ``fastmath=False``), so LLVM may not contract ``a + t * d`` into fma or
  reorder reductions — the "exact" tier kernels stay bit-identical to the
  reference;
* float division by zero is guarded explicitly (``copysign(inf, d)``)
  instead of relying on IEEE division, because plain Python raises
  ``ZeroDivisionError`` where NumPy returns ``inf`` — the guard makes the
  uncompiled and compiled behaviour identical;
* NaN propagation mirrors ``np.minimum`` / ``np.maximum`` semantics
  wherever the reference could see a NaN (axis-parallel slab tests).

The per-ray march visits exactly the sample ladder
``t = t_near + (k + 0.5) * step`` for ``t <= t_far`` that the slab-wise
reference evaluates, so the first occupied voxel — and everything derived
from it — is identical; the loop merely stops at the hit instead of
masking the samples behind it.
"""

from __future__ import annotations

import math

import numpy as np

#: The kernel entry points every backend must provide, in one canonical
#: place (the registry builds KernelSets from this tuple and the numba
#: backend compiles exactly these names).
KERNEL_FUNCTION_NAMES = (
    "march_occupancy",
    "sdf_to_density",
    "composite_forward",
    "gather_ray_points",
    "sphere_advance",
)


def march_occupancy(
    origins,
    directions,
    t_near,
    t_far,
    grid_lo,
    voxel,
    step,
    resolution,
    occupancy,
    face_keys,
    face_order,
    voxel_keys,
    slab_steps,
):
    """Per-ray DDA-style first-hit march (see numpy_ref for the contract).

    ``slab_steps`` is accepted for signature parity and ignored — a scalar
    loop needs no slab batching to terminate early.
    """
    num_rays = origins.shape[0]
    g = resolution
    num_faces = face_keys.shape[0]

    hit_rows = np.empty(num_rays, dtype=np.int64)
    face_indices = np.empty(num_rays, dtype=np.int64)
    u_out = np.empty(num_rays, dtype=np.float64)
    v_out = np.empty(num_rays, dtype=np.float64)
    t_entry_out = np.empty(num_rays, dtype=np.float64)
    count = 0

    lo0 = grid_lo[0]
    lo1 = grid_lo[1]
    lo2 = grid_lo[2]

    for i in range(num_rays):
        near = t_near[i]
        far = t_far[i]
        o0 = origins[i, 0]
        o1 = origins[i, 1]
        o2 = origins[i, 2]
        d0 = directions[i, 0]
        d1 = directions[i, 1]
        d2 = directions[i, 2]

        # -- first-hit march along the shared sample ladder ---------------
        v0 = -1
        v1 = -1
        v2 = -1
        found = False
        # Upper bound on the ladder index (the break below is the real
        # termination condition; the bound only keeps the loop finite).
        k_max = int((far - near) / step) + 2
        for k in range(k_max):
            t = near + (k + 0.5) * step
            if t > far:
                break
            p0 = o0 + t * d0
            p1 = o1 + t * d1
            p2 = o2 + t * d2
            i0 = int(math.floor((p0 - lo0) / voxel))
            if i0 < 0 or i0 >= g:
                continue
            i1 = int(math.floor((p1 - lo1) / voxel))
            if i1 < 0 or i1 >= g:
                continue
            i2 = int(math.floor((p2 - lo2) / voxel))
            if i2 < 0 or i2 >= g:
                continue
            if occupancy[i0, i1, i2]:
                v0 = i0
                v1 = i1
                v2 = i2
                found = True
                break
        if not found:
            continue

        # -- exact entry point into the hit voxel (slab test on its AABB) --
        vlo0 = lo0 + v0 * voxel
        vlo1 = lo1 + v1 * voxel
        vlo2 = lo2 + v2 * voxel

        best_t = -math.inf
        entry_axis = 0
        for axis in range(3):
            if axis == 0:
                d_axis = d0
                o_axis = o0
                vlo_axis = vlo0
            elif axis == 1:
                d_axis = d1
                o_axis = o1
                vlo_axis = vlo1
            else:
                d_axis = d2
                o_axis = o2
                vlo_axis = vlo2
            if d_axis != 0.0:
                inv = 1.0 / d_axis
            else:
                inv = math.copysign(math.inf, d_axis)
            a = (vlo_axis - o_axis) * inv
            b = (vlo_axis + voxel - o_axis) * inv
            # np.minimum semantics: NaN (0 * inf on a face-touching,
            # axis-parallel ray) propagates, then non-finite entries are
            # replaced by -inf exactly as the reference does.
            if a != a or b != b:
                m = -math.inf
            else:
                m = a if a < b else b
                if not math.isfinite(m):
                    m = -math.inf
            if m > best_t:
                best_t = m
                entry_axis = axis
        t_entry = best_t if best_t > 0.0 else 0.0

        if entry_axis == 0:
            d_axis = d0
        elif entry_axis == 1:
            d_axis = d1
        else:
            d_axis = d2
        sign_bit = 0 if d_axis > 0.0 else 1  # entry sign -1 for d > 0

        # -- face lookup: exact (voxel, axis, sign) key, voxel fallback ----
        voxel_key = (v0 * g + v1) * g + v2
        face_key = voxel_key * 6 + entry_axis * 2 + sign_bit
        lo_i = 0
        hi_i = num_faces
        while lo_i < hi_i:
            mid = (lo_i + hi_i) // 2
            if face_keys[mid] < face_key:
                lo_i = mid + 1
            else:
                hi_i = mid
        pos = lo_i
        if pos > num_faces - 1:
            pos = num_faces - 1
        if face_keys[pos] == face_key:
            face_index = face_order[pos]
        else:
            lo_i = 0
            hi_i = num_faces
            while lo_i < hi_i:
                mid = (lo_i + hi_i) // 2
                if voxel_keys[mid] < voxel_key:
                    lo_i = mid + 1
                else:
                    hi_i = mid
            pos = lo_i
            if pos > num_faces - 1:
                pos = num_faces - 1
            face_index = face_order[pos]

        # -- in-face texture coordinates from the entry point --------------
        e0 = o0 + t_entry * d0
        e1 = o1 + t_entry * d1
        e2 = o2 + t_entry * d2
        l0 = (e0 - vlo0) / voxel
        l1 = (e1 - vlo1) / voxel
        l2 = (e2 - vlo2) / voxel
        # The tangent table of repro.baking.meshing (_TANGENT_AXES), as
        # branches: u spans TANGENT_U[axis], v spans TANGENT_V[axis].
        if entry_axis == 0:
            u_val = l1
            v_val = l2
        elif entry_axis == 1:
            u_val = l0
            v_val = l2
        else:
            u_val = l0
            v_val = l1
        if u_val < 0.0:
            u_val = 0.0
        elif u_val > 1.0:
            u_val = 1.0
        if v_val < 0.0:
            v_val = 0.0
        elif v_val > 1.0:
            v_val = 1.0

        hit_rows[count] = i
        face_indices[count] = face_index
        u_out[count] = u_val
        v_out[count] = v_val
        t_entry_out[count] = t_entry
        count += 1

    return (
        hit_rows[:count].copy(),
        face_indices[:count].copy(),
        u_out[:count].copy(),
        v_out[:count].copy(),
        t_entry_out[:count].copy(),
    )


def sdf_to_density(sdf, surface_width):
    """Elementwise logistic density bump over a ``(R, S)`` SDF slab."""
    width = surface_width if surface_width > 1e-9 else 1e-9
    scale = 30.0 / width
    num_rays = sdf.shape[0]
    num_samples = sdf.shape[1]
    out = np.empty((num_rays, num_samples), dtype=np.float64)
    for r in range(num_rays):
        for s in range(num_samples):
            scaled = -sdf[r, s] / width
            if scaled < -30.0:
                scaled = -30.0
            elif scaled > 30.0:
                scaled = 30.0
            out[r, s] = scale * (1.0 / (1.0 + math.exp(-scaled))) * 0.5
    return out


def composite_forward(densities, colors, deltas, background, sample_distances):
    """Sequential per-ray alpha compositing (see numpy_ref for the contract).

    The running transmittance product matches ``np.cumprod`` order exactly;
    the rgb/weight/depth accumulations are sequential where NumPy sums
    pairwise, which is why this kernel sits in the bounded-ULP parity tier.
    """
    num_rays = densities.shape[0]
    num_samples = densities.shape[1]
    rgb = np.empty((num_rays, 3), dtype=np.float64)
    weights = np.empty((num_rays, num_samples), dtype=np.float64)
    transmittance = np.empty((num_rays, num_samples + 1), dtype=np.float64)
    depth = np.empty(num_rays, dtype=np.float64)
    alpha = np.empty(num_rays, dtype=np.float64)

    for r in range(num_rays):
        trans = 1.0
        transmittance[r, 0] = 1.0
        weight_sum = 0.0
        depth_sum = 0.0
        c0 = 0.0
        c1 = 0.0
        c2 = 0.0
        for s in range(num_samples):
            density = densities[r, s]
            if density < 0.0:
                density = 0.0
            a = 1.0 - math.exp(-density * deltas[r, s])
            w = trans * a
            weights[r, s] = w
            trans = trans * (1.0 - a + 1e-12)
            transmittance[r, s + 1] = trans
            c0 += w * colors[r, s, 0]
            c1 += w * colors[r, s, 1]
            c2 += w * colors[r, s, 2]
            weight_sum += w
            depth_sum += w * sample_distances[r, s]
        rgb[r, 0] = c0 + trans * background[0]
        rgb[r, 1] = c1 + trans * background[1]
        rgb[r, 2] = c2 + trans * background[2]
        denom = weight_sum if weight_sum > 1e-8 else 1e-8
        depth[r] = depth_sum / denom
        alpha[r] = weight_sum
    return rgb, weights, transmittance, depth, alpha


def gather_ray_points(origins, directions, t_values, alive):
    """Current sample positions ``o + t * d`` of the ``alive`` rays."""
    count = alive.shape[0]
    points = np.empty((count, 3), dtype=np.float64)
    for i in range(count):
        ray = alive[i]
        t = t_values[ray]
        points[i, 0] = origins[ray, 0] + t * directions[ray, 0]
        points[i, 1] = origins[ray, 1] + t * directions[ray, 1]
        points[i, 2] = origins[ray, 2] + t * directions[ray, 2]
    return points


def sphere_advance(t_values, hit, alive, distances, limits, hit_epsilon):
    """One sphere-tracing step; mutates ``t_values``/``hit``, compacts alive.

    A non-hitting ray advances by its SDF distance (which is ``>=
    hit_epsilon`` whenever this branch is taken, so the reference's
    ``maximum(distance, hit_epsilon)`` reduces to the distance itself) and
    survives unless it passed its per-ray limit.
    """
    count = alive.shape[0]
    survivors = np.empty(count, dtype=np.int64)
    kept = 0
    for i in range(count):
        ray = alive[i]
        distance = distances[i]
        if distance < hit_epsilon:
            hit[ray] = True
        else:
            t = t_values[ray] + distance
            t_values[ray] = t
            if not (t > limits[ray]):
                survivors[kept] = ray
                kept += 1
    return survivors[:kept].copy()
