"""The numba-compiled kernel backend.

This module compiles the per-ray loop kernels of
:mod:`repro.render.kernels.loops` with ``numba.njit`` and exposes them as
the plain :data:`COMPILED` mapping the registry assembles into a
:class:`~repro.render.kernels.registry.KernelSet`.  It imports cleanly —
and :data:`COMPILED` is simply empty — when numba is not installed, so the
registry can probe availability without a try/except at every call site.

Compilation flags, all load-bearing:

* ``fastmath=False`` — the parity tiers depend on IEEE-faithful codegen:
  no fma contraction, no reassociation, NaN/inf semantics preserved.  The
  "exact" tier kernels are pinned bit-identical to the numpy reference and
  stay that way only without fastmath.
* ``cache=True`` — compiled machine code is persisted next to the source
  (``__pycache__``), so spawned/TCP workers and fresh CI processes warm
  from disk instead of re-JITting every kernel per process.
* ``nogil=True`` — kernels release the GIL while marching; the thread
  backend overlaps chunks for free.

Deliberately **no** ``parallel=True`` and no thread-count knob: numba's
threading layers (TBB/OpenMP/workqueue) start worker threads that do not
survive ``os.fork``, which would poison the fork-transport worker daemons
(the REP-F202 class of bug).  Kernels stay single-threaded per call;
parallelism across rays belongs to the existing chunk sharding in
:mod:`repro.exec`.

JIT compilation itself is lazy (first call per signature); callers that
must not pay it mid-measurement use
:func:`repro.render.kernels.registry.warm_up`.
"""

from __future__ import annotations

from repro.render.kernels import loops

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover - the numpy-only environment
    numba = None

#: Whether the compiled path is importable in this environment.
NUMBA_AVAILABLE = numba is not None


def compile_kernels() -> dict:
    """njit-wrap every kernel entry point of the loop backend.

    Returns ``{kernel_name: compiled_function}`` for the names in
    :data:`repro.render.kernels.loops.KERNEL_FUNCTION_NAMES`.  Raises
    :class:`RuntimeError` when numba is unavailable — callers should gate
    on :data:`NUMBA_AVAILABLE` (or use the prebuilt :data:`COMPILED`).
    """
    if numba is None:
        raise RuntimeError("numba is not installed; the compiled kernel "
                           "backend is unavailable")
    decorate = numba.njit(cache=True, fastmath=False, nogil=True)
    return {
        name: decorate(getattr(loops, name))
        for name in loops.KERNEL_FUNCTION_NAMES
    }


COMPILED: dict = compile_kernels() if NUMBA_AVAILABLE else {}
