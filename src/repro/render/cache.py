"""Persistent render cache keyed by ``(scene, camera, quality)``.

Rendering the same view of the same content twice is the single largest
source of wasted wall-clock in the reproduction benchmarks: ground-truth
views are consumed by the segmenter, the profiler and every method's quality
evaluation, and each figure used to re-render them from scratch.  The cache
replaces the ad-hoc ``gt_cache`` / ``measurement_cache`` render dictionaries
that used to live in :mod:`repro.core.pipeline`.

Keys are explicit three-part tuples:

* ``scene_key`` — a caller-supplied hashable identifying the content (e.g.
  ``("realworld", "lego")`` for a sub-scene, or a baked-model fingerprint);
* ``camera_key`` — derived from the camera pose/resolution by
  :func:`camera_cache_key`;
* ``quality_key`` — the rendering path and every parameter that affects the
  output (renderer name, step counts, background, ...).

Entries are only stored when the caller provides a ``scene_key`` — anonymous
content is never cached, so mutating a scene between renders cannot serve
stale images unless the caller reuses a key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.lru import MISS, LockedLRU


def camera_cache_key(camera) -> tuple:
    """A hashable fingerprint of a camera's pose and image geometry."""
    return (
        tuple(round(float(v), 12) for v in camera.position),
        tuple(round(float(v), 12) for v in camera.look_at),
        tuple(round(float(v), 12) for v in camera.up),
        round(float(camera.fov_deg), 12),
        int(camera.width),
        int(camera.height),
    )


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`RenderCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class RenderCache:
    """An LRU map from ``(scene, camera, quality)`` keys to render results.

    Args:
        max_entries: optional bound on the number of cached results; the
            least recently used entry is evicted beyond it.  ``None`` means
            unbounded (the benchmark harness caches a few hundred small
            images, far below any memory concern).

    All operations are thread-safe (the map is a
    :class:`repro.utils.lru.LockedLRU`): the thread execution backend fans
    independent render batches out concurrently, and every one of them reads
    and writes the shared process-wide cache.  ``get``/``put`` hold the
    internal lock; ``get_or_render`` deliberately releases it around the
    render callback (holding a lock for seconds of marching would serialise
    the backend), so two threads racing on the same key may both render —
    wasteful but consistent, as keyed renders are deterministic.
    """

    max_entries: "int | None" = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._lru = LockedLRU(max_entries=self.max_entries)

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key) -> bool:
        return key in self._lru

    @staticmethod
    def make_key(scene_key, camera, quality_key) -> tuple:
        """Assemble the canonical three-part cache key for a camera view."""
        return (scene_key, camera_cache_key(camera), quality_key)

    def get(self, key):
        """Cached value for ``key`` (``None`` on miss); updates statistics."""
        with self._lru.lock:
            value = self._lru.get(key)
            if value is MISS:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lru.lock:
            if self._lru.put(key, value):
                self.stats.evictions += 1

    def get_or_render(self, key, render_fn):
        """Return the cached value for ``key``, rendering it on a miss."""
        value = self.get(key)
        if value is None:
            value = render_fn()
            self.put(key, value)
        return value

    def invalidate(self, scene_key=None) -> int:
        """Drop every entry (or only those whose scene part equals ``scene_key``)."""
        if scene_key is None:
            return self._lru.clear()
        return self._lru.remove_where(lambda key: key[0] == scene_key)
