"""The unified, batched ray-marching engine.

Historically the library grew three independent ray-marching loops — the
ground-truth sphere tracer (:mod:`repro.scenes.raytrace`), the volume
renderer's ray chunking (:mod:`repro.nerf.rendering`) and the baked
occupancy-grid marcher (:mod:`repro.baking.renderer`) — each with its own
hand-rolled ``active``-mask bookkeeping, its own chunking and no sharing of
rendered results.  :class:`RenderEngine` subsumes all three behind one
batched API:

* **cross-view ray batching** — the ``*_views`` methods stack every
  camera's rays into a single ``(N, 3)`` march, so rendering eight views
  costs one marching loop instead of eight;
* **one early-termination compaction** — :meth:`sphere_trace_rays` is the
  single surviving active-set loop; both the scene and the field renderers
  are thin shading passes over it;
* **a persistent render cache** — results are memoised under
  ``(scene, camera, quality)`` keys (see :mod:`repro.render.cache`);
* **chunk-size / backend knobs** — ``chunk_rays`` bounds peak memory of the
  sample-heavy paths, and independent ray chunks are fanned out through a
  pluggable execution backend (:mod:`repro.exec.backends`): serial loop,
  thread pool (the historical ``workers`` knob) or a fork-based process
  pool.  Chunks are pure functions of disjoint ray ranges and results are
  assembled in chunk order, so every backend produces bit-identical images.

The legacy module-level functions (``render_scene``, ``render_field``,
``volume_render_field``, ``render_baked_multi``) remain as thin wrappers
over a shared default engine, so downstream callers keep working unchanged.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.exec.backends import Backend, resolve_backend
from repro.nerf.sampling import stratified_samples
from repro.render.cache import RenderCache
from repro.render.kernels import get_kernels, resolve_kernel_name
from repro.scenes.cameras import Camera, camera_rays
from repro.scenes.raytrace import (
    RenderResult,
    estimate_normals,
    field_radiance,
    shade_lambertian,
)

#: Default number of rays marched per chunk in the sample-heavy paths.
DEFAULT_CHUNK_RAYS = 8192


def baked_fingerprint(multi) -> tuple:
    """A hashable fingerprint of a baked multi-model's content and knobs.

    Geometry counts alone cannot distinguish two bakes of *different*
    fields that happen to voxelise identically (e.g. degraded versus clean
    albedo at a coarse granularity), so each sub-model also contributes a
    small deterministic texture probe: the sampled colour of a few spread
    faces.  Two models that agree on name, configuration, geometry and the
    probe render identically for caching purposes.
    """
    parts = []
    for model in multi.submodels:
        num_faces = int(model.num_faces)
        if num_faces:
            probe_faces = np.unique(
                np.array([0, num_faces // 3, (2 * num_faces) // 3, num_faces - 1])
            )
            centers = np.full(probe_faces.size, 0.5)
            probe = tuple(
                round(float(v), 9)
                for v in model.texture.sample(probe_faces, centers, centers).ravel()
            )
        else:
            probe = ()
        parts.append(
            (
                model.name,
                int(model.granularity),
                int(model.patch_size),
                num_faces,
                int(model.grid.num_occupied),
                probe,
            )
        )
    return tuple(parts)


def _content_identity(content) -> tuple:
    """Best-effort fingerprint of a scene's / field's renderable content.

    Caller-supplied ``scene_key`` names are not guaranteed unique (two
    datasets generated without explicit names both default to ``"scene"``),
    so the cache key also carries what the library can observe about the
    content: the degradation parameters of a wrapped field, and either the
    placed-object configuration of a scene or the raw bounds of an opaque
    field.  Deterministically rebuilt content (e.g. a baseline emulator's
    field) fingerprints identically across instances, so cross-instance
    cache reuse is preserved.  Custom fields with identical identities must
    render identically — that residual contract is documented on
    :mod:`repro.render.cache`.
    """
    parts = []
    detail_scale = getattr(content, "detail_scale", None)
    if detail_scale is not None:
        parts.append(
            (
                "degraded",
                round(float(detail_scale), 12),
                int(getattr(content, "seed", 0)),
                round(float(getattr(content, "floater_rate", 0.0)), 12),
            )
        )
        content = getattr(content, "base", content)
    placed = getattr(content, "placed", None)
    if placed is not None:
        parts.append(
            tuple(
                (
                    p.instance_name,
                    int(p.instance_id),
                    getattr(p.obj, "name", ""),
                    round(float(getattr(p, "texture_frequency", 0.0)), 12),
                    tuple(round(float(v), 12) for v in p.translation),
                    round(float(p.scale), 12),
                )
                for p in placed
            )
        )
    else:
        parts.append(
            (
                tuple(np.round(np.asarray(content.bounds_min, dtype=np.float64), 12)),
                tuple(np.round(np.asarray(content.bounds_max, dtype=np.float64), 12)),
            )
        )
    return tuple(parts)


def _stack_camera_rays(cameras) -> tuple:
    """Stack all cameras' rays into one flat batch.

    Returns ``(origins, directions, slices)`` where ``slices[i]`` recovers
    camera ``i``'s rays from the stacked arrays.
    """
    origins_list = []
    directions_list = []
    slices = []
    offset = 0
    for camera in cameras:
        origins, directions = camera_rays(camera)
        origins_list.append(origins)
        directions_list.append(directions)
        slices.append(slice(offset, offset + origins.shape[0]))
        offset += origins.shape[0]
    return (
        np.concatenate(origins_list, axis=0),
        np.concatenate(directions_list, axis=0),
        slices,
    )


def _default_max_distance(content, camera: Camera) -> float:
    """The legacy per-camera ray-termination distance."""
    bounds_min = np.asarray(content.bounds_min, dtype=np.float64)
    bounds_max = np.asarray(content.bounds_max, dtype=np.float64)
    center = 0.5 * (bounds_min + bounds_max)
    extent = float(np.max(bounds_max - bounds_min))
    return 4.0 * max(extent, 1.0) + float(np.linalg.norm(camera.position - center))


def _ray_aabb(origins, directions, lo, hi):
    """Slab-method ray/AABB intersection; returns (t_near, t_far)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / directions
    t_lo = (lo - origins) * inv
    t_hi = (hi - origins) * inv
    t_near = np.nanmax(np.minimum(t_lo, t_hi), axis=1)
    t_far = np.nanmin(np.maximum(t_lo, t_hi), axis=1)
    return t_near, t_far


def _sphere_trace_chunk(
    sdf_fn,
    origins: np.ndarray,
    directions: np.ndarray,
    limits: np.ndarray,
    max_steps: int,
    hit_epsilon: float,
    kernel_name: str = "numpy",
) -> tuple:
    """The active-set sphere-tracing loop over one chunk of rays.

    The per-step bookkeeping (point gathering, hit recording, advancing,
    compaction) dispatches to the kernel layer; the SDF itself stays an
    arbitrary Python callable evaluated between kernel calls.  Both steps
    sit in the exact parity tier, so every kernel backend traces
    bit-identically.
    """
    kernels = get_kernels(kernel_name)
    num_rays = origins.shape[0]
    t_values = np.zeros(num_rays)
    hit = np.zeros(num_rays, dtype=bool)
    alive = np.arange(num_rays, dtype=np.int64)
    origins = np.ascontiguousarray(origins)
    directions = np.ascontiguousarray(directions)
    # ``limits`` may arrive as a stride-0 broadcast view; compiled kernels
    # want a real buffer.
    limits = np.ascontiguousarray(limits, dtype=np.float64)
    for _ in range(max_steps):
        if alive.size == 0:
            break
        points = kernels.gather_ray_points(origins, directions, t_values, alive)
        distances = np.ascontiguousarray(sdf_fn(points), dtype=np.float64)
        alive = kernels.sphere_advance(
            t_values, hit, alive, distances, limits, hit_epsilon
        )
    return t_values, hit


def _face_keys(model) -> tuple:
    """Sorted integer keys for (voxel, axis, sign) face lookup.

    Arrays come back as int64 — the dtype the compiled marching kernels
    are specialised on (platform-default ints would recompile per dtype).
    """
    g = model.grid.resolution
    idx = model.faces.voxel_indices.astype(np.int64, copy=False)
    voxel_key = (idx[:, 0] * g + idx[:, 1]) * g + idx[:, 2]
    face_key = voxel_key * 6 + model.faces.axes * 2 + (model.faces.signs > 0)
    face_key = face_key.astype(np.int64, copy=False)
    order = np.argsort(face_key, kind="stable").astype(np.int64, copy=False)
    return face_key[order], order, voxel_key[order]


class RenderEngine:
    """Batched, cached renderer for every representation in the library.

    Args:
        chunk_rays: rays marched per chunk in the sample-heavy paths
            (bounds peak memory; the rendered output is chunk-invariant).
        workers: worker count handed to the execution backend when one is
            resolved by name; ``None`` (the default) means the backend's own
            default — 1 (today's inline loop) for serial/thread, the host
            CPU count for the process pool — while an explicit count is
            always honoured (``workers=1`` forces even a process backend
            down to one worker).  Retained for backward compatibility —
            ``RenderEngine(workers=3)`` still means a 3-thread fan-out
            unless a different backend is selected.
        cache: optional :class:`RenderCache`; when present, the camera-level
            methods memoise results for callers that supply a ``scene_key``.
        backend: execution backend for independent ray chunks — a
            :class:`repro.exec.backends.Backend` instance, a backend name
            (``"serial"`` / ``"thread"`` / ``"process"`` / ``"cluster"``),
            or ``None`` to consult the ``REPRO_BACKEND`` environment
            variable.  Chunks are pure and assembled in order, so every
            backend renders bit-identical images.
        transport: worker-transport name (``"fork"`` / ``"tcp"``) handed to
            the daemon-backed backends when one is resolved by name;
            ``None`` consults ``REPRO_TRANSPORT``.  Ignored when a backend
            *instance* is supplied (it already owns its transport) and by
            the in-process backends; every transport renders bit-identical
            images.
        kernel: hot-loop kernel backend for the marching/compositing
            bodies — a name from
            :func:`repro.render.kernels.known_kernel_names` (``"numpy"`` /
            ``"loops"`` / ``"numba"`` / ``"auto"``), or ``None`` to consult
            the ``REPRO_KERNEL`` environment variable (default ``auto``:
            compiled when numba is available, numpy otherwise).  The
            marching and sphere-tracing kernels are pinned bit-identical
            across backends; the volume sdf→density→composite kernels are
            pinned to a few ULP (see DESIGN.md "Kernels").
    """

    def __init__(
        self,
        chunk_rays: int = DEFAULT_CHUNK_RAYS,
        workers: "int | None" = None,
        cache: "RenderCache | None" = None,
        backend: "Backend | str | None" = None,
        transport: "str | None" = None,
        kernel: "str | None" = None,
    ) -> None:
        if chunk_rays < 1:
            raise ValueError("chunk_rays must be positive")
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        self.chunk_rays = int(chunk_rays)
        self.workers = 1 if workers is None else int(workers)
        self.cache = cache
        self.backend = resolve_backend(backend, workers=workers, transport=transport)
        # Resolved to a backend *name* (string), never a KernelSet: chunk
        # closures re-resolve it via get_kernels() at execution time, so
        # compiled functions never cross a worker transport.
        self.kernel = resolve_kernel_name(kernel)
        self._stage_timer = None
        self._stage_name = None

    # -- shared machinery ----------------------------------------------------

    @contextlib.contextmanager
    def attribute(self, timer, stage: "str | None"):
        """Attribute engine-internal chunk maps to a stage while active.

        Within the context, every ray-chunk map run by this engine reports
        its worker-side task seconds to ``timer`` (a
        :class:`repro.utils.timing.StageTimer`) under ``stage`` — the
        channel that makes the marching work *inside* a render visible to
        the per-stage overhead accounting, which otherwise only sees
        pipeline-level maps.  Callers use a dedicated stage name (the
        pipeline uses ``"render:<stage>"``) because with an in-process
        backend a render issued from inside another attributed task would
        otherwise be double-counted into that task's stage.  Attribution is
        engine-instance state, not thread-local: attribute and render from
        the same thread.
        """
        previous = (self._stage_timer, self._stage_name)
        self._stage_timer = timer if stage is not None else None
        self._stage_name = stage
        try:
            yield self
        finally:
            self._stage_timer, self._stage_name = previous

    def _map_chunks(self, process, starts, num_items: "int | None" = None) -> list:
        """Map ``process`` over chunk starts via the execution backend.

        ``process(start)`` must be a pure function of its chunk (no writes
        to shared state — with the process backend they would be lost in the
        worker); results come back in chunk order for deterministic
        assembly.  Worker-side task time lands on the stage configured via
        :meth:`attribute`, when one is active.  ``num_items`` (the ray count
        behind the chunk starts) lets a cost-hinted backend — the cluster's
        shard planner — weigh the short tail chunk correctly instead of
        assuming uniform chunks.
        """
        starts = list(starts)
        map_kwargs = {}
        if (
            num_items is not None
            and len(starts) > 1
            and getattr(self.backend, "supports_cost_hints", False)
        ):
            map_kwargs["costs"] = [
                float(min(self.chunk_rays, num_items - start)) for start in starts
            ]
        return self.backend.map(
            process,
            starts,
            timer=self._stage_timer,
            stage=self._stage_name,
            **map_kwargs,
        )

    def _cached_views(self, cameras, scene_key, quality_key, render_batch):
        """Memoise per-camera results, rendering the misses in one batch.

        ``render_batch(cameras)`` must return one result per camera.  When
        no cache or no ``scene_key`` is configured, everything is rendered.
        """
        cameras = list(cameras)
        if self.cache is None or scene_key is None:
            return render_batch(cameras)
        keys = [self.cache.make_key(scene_key, camera, quality_key) for camera in cameras]
        results: list = [self.cache.get(key) for key in keys]
        miss_indices = [i for i, value in enumerate(results) if value is None]
        if miss_indices:
            rendered = render_batch([cameras[i] for i in miss_indices])
            for i, result in zip(miss_indices, rendered):
                self.cache.put(keys[i], result)
                results[i] = result
        return results

    # -- the one sphere-tracing loop ----------------------------------------

    def sphere_trace_rays(
        self,
        sdf_fn,
        origins: np.ndarray,
        directions: np.ndarray,
        max_steps: int = 96,
        hit_epsilon: float = 2e-3,
        max_distance: "float | np.ndarray" = np.inf,
    ) -> tuple:
        """March rays against an SDF with early-termination compaction.

        This is the single active-set loop that both the ground-truth scene
        renderer and the field renderer shade on top of.  ``max_distance``
        may be a scalar or a per-ray array (cross-view batches mix cameras
        with different termination distances).

        Returns:
            ``(t_values, hit)`` — per-ray hit distance and hit mask.
        """
        num_rays = origins.shape[0]
        limits = np.broadcast_to(
            np.asarray(max_distance, dtype=np.float64), (num_rays,)
        )
        starts = list(range(0, num_rays, self.chunk_rays))
        kernel_name = self.kernel
        if len(starts) <= 1:
            return _sphere_trace_chunk(
                sdf_fn, origins, directions, limits, max_steps, hit_epsilon,
                kernel_name=kernel_name,
            )

        # Each ray's march is independent, so splitting the batch into
        # chunks and re-concatenating is bit-identical to one global
        # active-set loop — which makes the tracer shardable across the
        # execution backend.
        def process(start):
            stop = min(start + self.chunk_rays, num_rays)
            return _sphere_trace_chunk(
                sdf_fn,
                origins[start:stop],
                directions[start:stop],
                limits[start:stop],
                max_steps,
                hit_epsilon,
                kernel_name=kernel_name,
            )

        parts = self._map_chunks(process, starts, num_items=num_rays)
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
        )

    # -- ground-truth scenes -------------------------------------------------

    def render_scene_rays(
        self,
        scene,
        origins: np.ndarray,
        directions: np.ndarray,
        max_steps: int = 96,
        hit_epsilon: float = 2e-3,
        max_distance: "float | np.ndarray" = np.inf,
        shading: bool = True,
    ) -> dict:
        """Flat-ray sphere tracing of a scene with per-object attribution.

        Returns a dict with flat ``rgb``, ``depth``, ``object_ids`` and
        ``hit`` buffers (one row per input ray).
        """
        num_rays = origins.shape[0]
        t_values, hit = self.sphere_trace_rays(
            scene.sdf,
            origins,
            directions,
            max_steps=max_steps,
            hit_epsilon=hit_epsilon,
            max_distance=max_distance,
        )
        rgb = np.tile(scene.background_color, (num_rays, 1))
        depth = np.full(num_rays, np.inf)
        object_ids = np.full(num_rays, -1, dtype=int)
        if hit.any():
            hit_points = origins[hit] + t_values[hit, None] * directions[hit]
            _, ids = scene.classify(hit_points)
            albedo = scene.albedo(hit_points)
            if shading:
                normals = estimate_normals(scene, hit_points, epsilon=1e-3)
                colors = shade_lambertian(albedo, normals)
            else:
                colors = albedo
            rgb[hit] = colors
            depth[hit] = t_values[hit]
            object_ids[hit] = ids
        return {"rgb": rgb, "depth": depth, "object_ids": object_ids, "hit": hit}

    def render_scene_views(
        self,
        scene,
        cameras,
        max_steps: int = 96,
        hit_epsilon: float = 2e-3,
        max_distance: "float | None" = None,
        shading: bool = True,
        scene_key=None,
    ) -> list:
        """Render several views of a scene in one cross-view ray batch."""
        quality_key = (
            "scene",
            _content_identity(scene) if scene_key is not None else None,
            tuple(np.asarray(scene.background_color, dtype=np.float64).tolist()),
            max_steps,
            hit_epsilon,
            max_distance,
            shading,
        )

        def render_batch(batch_cameras):
            if not batch_cameras:
                return []
            origins, directions, slices = _stack_camera_rays(batch_cameras)
            limits = np.empty(origins.shape[0])
            for camera, view_slice in zip(batch_cameras, slices):
                limits[view_slice] = (
                    max_distance
                    if max_distance is not None
                    else _default_max_distance(scene, camera)
                )
            buffers = self.render_scene_rays(
                scene,
                origins,
                directions,
                max_steps=max_steps,
                hit_epsilon=hit_epsilon,
                max_distance=limits,
                shading=shading,
            )
            return [
                _assemble_result(buffers, view_slice, camera)
                for camera, view_slice in zip(batch_cameras, slices)
            ]

        return self._cached_views(cameras, scene_key, quality_key, render_batch)

    def render_scene(self, scene, camera: Camera, **kwargs) -> RenderResult:
        """Render one view of a scene (see :meth:`render_scene_views`)."""
        return self.render_scene_views(scene, [camera], **kwargs)[0]

    # -- radiance fields -----------------------------------------------------

    def render_field_rays(
        self,
        field,
        origins: np.ndarray,
        directions: np.ndarray,
        background=(1.0, 1.0, 1.0),
        max_steps: int = 96,
        hit_epsilon: float = 2e-3,
        max_distance: "float | np.ndarray" = np.inf,
    ) -> dict:
        """Flat-ray sphere tracing of a field-protocol object (SDF + albedo)."""
        num_rays = origins.shape[0]
        t_values, hit = self.sphere_trace_rays(
            field.sdf,
            origins,
            directions,
            max_steps=max_steps,
            hit_epsilon=hit_epsilon,
            max_distance=max_distance,
        )
        rgb = np.tile(np.asarray(background, dtype=np.float64), (num_rays, 1))
        depth = np.full(num_rays, np.inf)
        object_ids = np.full(num_rays, -1, dtype=int)
        if hit.any():
            hit_points = origins[hit] + t_values[hit, None] * directions[hit]
            rgb[hit] = field_radiance(field, hit_points)
            depth[hit] = t_values[hit]
            object_ids[hit] = 0
        return {"rgb": rgb, "depth": depth, "object_ids": object_ids, "hit": hit}

    def render_field_views(
        self,
        field,
        cameras,
        background=(1.0, 1.0, 1.0),
        max_steps: int = 96,
        hit_epsilon: float = 2e-3,
        max_distance: "float | None" = None,
        scene_key=None,
    ) -> list:
        """Render several views of a field in one cross-view ray batch."""
        quality_key = (
            "field",
            _content_identity(field) if scene_key is not None else None,
            max_steps,
            hit_epsilon,
            max_distance,
            tuple(np.asarray(background, dtype=np.float64).tolist()),
        )

        def render_batch(batch_cameras):
            if not batch_cameras:
                return []
            origins, directions, slices = _stack_camera_rays(batch_cameras)
            limits = np.empty(origins.shape[0])
            for camera, view_slice in zip(batch_cameras, slices):
                limits[view_slice] = (
                    max_distance
                    if max_distance is not None
                    else _default_max_distance(field, camera)
                )
            buffers = self.render_field_rays(
                field,
                origins,
                directions,
                background=background,
                max_steps=max_steps,
                hit_epsilon=hit_epsilon,
                max_distance=limits,
            )
            return [
                _assemble_result(buffers, view_slice, camera)
                for camera, view_slice in zip(batch_cameras, slices)
            ]

        return self._cached_views(cameras, scene_key, quality_key, render_batch)

    def render_field(self, field, camera: Camera, **kwargs) -> RenderResult:
        """Render one view of a field (see :meth:`render_field_views`)."""
        return self.render_field_views(field, [camera], **kwargs)[0]

    # -- volume rendering ----------------------------------------------------

    def volume_render_views(
        self,
        field,
        cameras,
        num_samples: int = 96,
        background=(1.0, 1.0, 1.0),
        density_scale: float = 160.0,
        rng: "np.random.Generator | int | None" = None,
        scene_key=None,
    ) -> list:
        """Volume-render several views of a field in one chunked ray batch.

        The SDF is converted to density with a logistic bump around the
        surface; per-ray colour is the shaded radiance at the expected
        termination depth (the two-pass scheme of the legacy renderer).
        """
        quality_key = (
            "volume",
            _content_identity(field) if scene_key is not None else None,
            num_samples,
            tuple(np.asarray(background, dtype=np.float64).tolist()),
            density_scale,
        )

        def render_batch(batch_cameras):
            if not batch_cameras:
                return []
            origins, directions, slices = _stack_camera_rays(batch_cameras)
            num_rays = origins.shape[0]
            extent = float(np.max(np.asarray(field.bounds_max) - np.asarray(field.bounds_min)))
            surface_width = extent / max(density_scale, 1e-6)
            center = 0.5 * (np.asarray(field.bounds_min) + np.asarray(field.bounds_max))

            near = np.empty(num_rays)
            far = np.empty(num_rays)
            for camera, view_slice in zip(batch_cameras, slices):
                distance_to_center = np.linalg.norm(camera.position - center)
                near[view_slice] = max(distance_to_center - extent, 1e-3)
                far[view_slice] = distance_to_center + extent

            bg = np.asarray(background, dtype=np.float64)
            rgb = np.tile(bg, (num_rays, 1))
            depth = np.full(num_rays, np.inf)
            alpha = np.zeros(num_rays)

            kernel_name = self.kernel

            def process(start):
                # Pure chunk function: reads the stacked ray buffers, returns
                # this chunk's rows — no writes to shared state, so the chunk
                # can run in a forked worker and ship its rows back pickled.
                # The kernel set is re-resolved by name inside the worker.
                kernels = get_kernels(kernel_name)
                stop = min(start + self.chunk_rays, num_rays)
                count = stop - start
                t_values = stratified_samples(
                    near[start:stop], far[start:stop], num_samples, rng=rng, jitter=False
                )
                points = origins[start:stop, None, :] + t_values[..., None] * directions[
                    start:stop, None, :
                ]
                sdf = np.ascontiguousarray(
                    field.sdf(points.reshape(-1, 3)).reshape(count, num_samples),
                    dtype=np.float64,
                )
                densities = kernels.sdf_to_density(sdf, surface_width)
                deltas = np.diff(
                    t_values,
                    axis=1,
                    append=t_values[:, -1:]
                    + (far[start:stop] - near[start:stop])[:, None] / num_samples,
                )
                _, _, _, ray_depth, ray_alpha = kernels.composite_forward(
                    densities,
                    np.zeros((count, num_samples, 3)),
                    np.ascontiguousarray(deltas),
                    np.zeros(3),
                    np.ascontiguousarray(t_values),
                )
                hit_rows = np.flatnonzero(ray_alpha > 0.05)
                if hit_rows.size:
                    surface_points = origins[start:stop][hit_rows] + ray_depth[
                        hit_rows, None
                    ] * (directions[start:stop][hit_rows])
                    radiance = field_radiance(field, surface_points)
                    mix = ray_alpha[hit_rows, None]
                    chunk_rgb = mix * radiance + (1.0 - mix) * bg
                    chunk_depth = ray_depth[hit_rows]
                else:
                    chunk_rgb = np.zeros((0, 3))
                    chunk_depth = np.zeros(0)
                return start, ray_alpha, hit_rows, chunk_rgb, chunk_depth

            chunk_results = self._map_chunks(
                process, range(0, num_rays, self.chunk_rays), num_items=num_rays
            )
            for start, ray_alpha, hit_rows, chunk_rgb, chunk_depth in chunk_results:
                alpha[start : start + ray_alpha.shape[0]] = ray_alpha
                if hit_rows.size:
                    rgb[start + hit_rows] = chunk_rgb
                    depth[start + hit_rows] = chunk_depth

            hit = alpha > 0.5
            buffers = {
                "rgb": np.clip(rgb, 0.0, 1.0),
                "depth": np.where(hit, depth, np.inf),
                "object_ids": np.where(hit, 0, -1),
                "hit": hit,
            }
            return [
                _assemble_result(buffers, view_slice, camera)
                for camera, view_slice in zip(batch_cameras, slices)
            ]

        return self._cached_views(cameras, scene_key, quality_key, render_batch)

    def volume_render_field(self, field, camera: Camera, **kwargs) -> RenderResult:
        """Volume-render one view of a field (see :meth:`volume_render_views`)."""
        return self.volume_render_views(field, [camera], **kwargs)[0]

    # -- baked models --------------------------------------------------------

    def _march_baked_single(
        self,
        model,
        origins: np.ndarray,
        directions: np.ndarray,
        step_scale: float,
    ) -> tuple:
        """First-hit occupancy-grid marching of one baked sub-model."""
        num_rays = origins.shape[0]
        colors = np.zeros((num_rays, 3))
        depths = np.full(num_rays, np.inf)
        hits = np.zeros(num_rays, dtype=bool)

        if model.faces.num_faces == 0:
            return colors, depths, hits

        grid = model.grid
        lo, hi = grid.bounds_min, grid.bounds_max
        voxel = float(grid.voxel_size)
        step = voxel * step_scale

        face_keys_sorted, face_order, voxel_keys_sorted = _face_keys(model)
        g = int(grid.resolution)
        grid_lo = np.ascontiguousarray(np.asarray(lo, dtype=np.float64))
        occupancy = np.ascontiguousarray(grid.occupancy)

        t_near, t_far = _ray_aabb(origins, directions, lo, hi)
        t_near = np.maximum(t_near, 0.0)
        candidates = np.flatnonzero(t_far > t_near)

        slab_steps = 32  # samples examined per vectorised marching round
        kernel_name = self.kernel

        def process(start):
            # Pure chunk function (see volume path): returns the chunk's hit
            # rows instead of writing shared buffers, so it can execute on
            # any backend.  The march itself — slab march, voxel entry, face
            # lookup — is a kernel (exact parity tier: every backend returns
            # bit-identical hits); texture sampling stays here with the
            # model object.
            kernels = get_kernels(kernel_name)
            ray_ids = candidates[start : start + self.chunk_rays]
            hit_rows, face_indices, u, v, t_entry = kernels.march_occupancy(
                origins[ray_ids],
                directions[ray_ids],
                t_near[ray_ids],
                t_far[ray_ids],
                grid_lo,
                voxel,
                step,
                g,
                occupancy,
                face_keys_sorted,
                face_order,
                voxel_keys_sorted,
                slab_steps,
            )
            if hit_rows.size == 0:
                return None
            sampled = model.texture.sample(face_indices, u, v)
            return ray_ids[hit_rows], sampled, t_entry

        chunk_results = self._map_chunks(
            process,
            range(0, candidates.size, self.chunk_rays),
            num_items=int(candidates.size),
        )
        for result in chunk_results:
            if result is None:
                continue
            global_rows, sampled, t_entry = result
            colors[global_rows] = sampled
            depths[global_rows] = t_entry
            hits[global_rows] = True
        return colors, depths, hits

    def render_baked_rays(
        self,
        multi,
        origins: np.ndarray,
        directions: np.ndarray,
        background=(1.0, 1.0, 1.0),
        step_scale: float = 0.5,
    ) -> dict:
        """Flat-ray rendering of a baked multi-model (depth compositing)."""
        num_rays = origins.shape[0]
        background = np.asarray(background, dtype=np.float64)
        best_colors = np.tile(background, (num_rays, 1))
        best_depths = np.full(num_rays, np.inf)
        best_ids = np.full(num_rays, -1, dtype=int)
        for submodel_index, submodel in enumerate(multi.submodels):
            colors, depths, hits = self._march_baked_single(
                submodel, origins, directions, step_scale=step_scale
            )
            closer = hits & (depths < best_depths)
            best_colors[closer] = colors[closer]
            best_depths[closer] = depths[closer]
            best_ids[closer] = submodel_index
        return {
            "rgb": best_colors,
            "depth": best_depths,
            "object_ids": best_ids,
            "hit": best_ids >= 0,
        }

    def render_baked_views(
        self,
        multi,
        cameras,
        background=(1.0, 1.0, 1.0),
        step_scale: float = 0.5,
        scene_key=None,
    ) -> list:
        """Render several views of a baked multi-model in one ray batch."""
        multi = _as_multi_model(multi)
        quality_key = (
            "baked",
            baked_fingerprint(multi),
            tuple(np.asarray(background, dtype=np.float64).tolist()),
            step_scale,
        )

        def render_batch(batch_cameras):
            if not batch_cameras:
                return []
            origins, directions, slices = _stack_camera_rays(batch_cameras)
            buffers = self.render_baked_rays(
                multi,
                origins,
                directions,
                background=background,
                step_scale=step_scale,
            )
            return [
                _assemble_result(buffers, view_slice, camera)
                for camera, view_slice in zip(batch_cameras, slices)
            ]

        return self._cached_views(cameras, scene_key, quality_key, render_batch)

    def render_baked(self, multi, camera: Camera, **kwargs) -> RenderResult:
        """Render one view of a baked model (see :meth:`render_baked_views`)."""
        return self.render_baked_views(multi, [camera], **kwargs)[0]

    # -- generic dispatch ----------------------------------------------------

    def render_rays(
        self, content, origins: np.ndarray, directions: np.ndarray, **kwargs
    ) -> dict:
        """Render arbitrary rays against any supported representation.

        Dispatches on the content type: baked multi/sub-models use the
        occupancy marcher, scenes (objects with ``classify``) the attributed
        sphere tracer, and everything else the field renderer.  All paths
        return the same flat ``rgb`` / ``depth`` / ``object_ids`` / ``hit``
        buffers.
        """
        origins = np.asarray(origins, dtype=np.float64)
        directions = np.asarray(directions, dtype=np.float64)
        if hasattr(content, "submodels"):
            return self.render_baked_rays(content, origins, directions, **kwargs)
        if hasattr(content, "texture") and hasattr(content, "grid"):
            from repro.baking.baked_model import BakedMultiModel

            return self.render_baked_rays(
                BakedMultiModel([content]), origins, directions, **kwargs
            )
        if hasattr(content, "classify"):
            return self.render_scene_rays(content, origins, directions, **kwargs)
        return self.render_field_rays(content, origins, directions, **kwargs)

    def render_views(self, content, cameras, **kwargs) -> list:
        """Camera-level analogue of :meth:`render_rays` (cross-view batched)."""
        if hasattr(content, "submodels") or (
            hasattr(content, "texture") and hasattr(content, "grid")
        ):
            return self.render_baked_views(content, cameras, **kwargs)
        if hasattr(content, "classify"):
            return self.render_scene_views(content, cameras, **kwargs)
        return self.render_field_views(content, cameras, **kwargs)


def _as_multi_model(multi):
    """Coerce a sub-model or list of sub-models into a multi-model."""
    if hasattr(multi, "submodels"):
        return multi
    from repro.baking.baked_model import BakedMultiModel

    if isinstance(multi, list):
        return BakedMultiModel(multi)
    return BakedMultiModel([multi])


def _assemble_result(buffers: dict, view_slice: slice, camera: Camera) -> RenderResult:
    """Cut one camera's rows out of flat ray buffers and shape them."""
    height, width = camera.height, camera.width
    return RenderResult(
        rgb=buffers["rgb"][view_slice].reshape(height, width, 3),
        depth=buffers["depth"][view_slice].reshape(height, width),
        object_ids=buffers["object_ids"][view_slice].reshape(height, width),
        hit_mask=buffers["hit"][view_slice].reshape(height, width),
    )


#: Lazily constructed engine shared by the legacy module-level wrappers.
_DEFAULT_ENGINE: "RenderEngine | None" = None

#: Bound on the shared default cache (LRU beyond this; a 128x128 result is
#: well under a megabyte, so the default cache stays a few hundred MB).
DEFAULT_CACHE_ENTRIES = 512


def default_engine() -> RenderEngine:
    """The shared engine behind the legacy module-level render functions.

    It carries a process-wide render cache, so every caller that supplies a
    ``scene_key`` — the pipeline, the baselines and the benchmark harness —
    transparently shares rendered ground truth and baked views.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = RenderEngine(
            cache=RenderCache(max_entries=DEFAULT_CACHE_ENTRIES)
        )
    return _DEFAULT_ENGINE


def default_cache() -> RenderCache:
    """The process-wide render cache carried by :func:`default_engine`."""
    return default_engine().cache


def engine_for_chunk(chunk_rays: int) -> RenderEngine:
    """The engine a legacy wrapper should use for a given chunk size.

    The shared default engine (with its cache) serves the default chunk
    size; a non-default request gets a transient uncached engine so the
    knob is honoured without polluting shared state.
    """
    if chunk_rays == DEFAULT_CHUNK_RAYS:
        return default_engine()
    return RenderEngine(chunk_rays=chunk_rays)
