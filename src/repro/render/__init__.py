"""Unified batched rendering: one engine for every representation.

:class:`RenderEngine` subsumes the three historical ray-marching paths —
the ground-truth sphere tracer, the NeRF volume renderer and the baked
occupancy-grid marcher — behind one batched, cached API.  See
:mod:`repro.render.engine` for the engine and :mod:`repro.render.cache` for
the ``(scene, camera, quality)`` render cache.
"""

from repro.render.cache import CacheStats, RenderCache, camera_cache_key
from repro.render.engine import (
    DEFAULT_CHUNK_RAYS,
    RenderEngine,
    baked_fingerprint,
    default_cache,
    default_engine,
)

__all__ = [
    "CacheStats",
    "DEFAULT_CHUNK_RAYS",
    "RenderCache",
    "RenderEngine",
    "baked_fingerprint",
    "camera_cache_key",
    "default_cache",
    "default_engine",
]
