"""Unified batched rendering: one engine for every representation.

:class:`RenderEngine` subsumes the three historical ray-marching paths —
the ground-truth sphere tracer, the NeRF volume renderer and the baked
occupancy-grid marcher — behind one batched, cached API.  See
:mod:`repro.render.engine` for the engine, :mod:`repro.render.cache` for
the ``(scene, camera, quality)`` render cache and
:mod:`repro.render.kernels` for the compiled hot-loop kernel layer the
engine dispatches to.
"""

from repro.render.cache import CacheStats, RenderCache, camera_cache_key
from repro.render.engine import (
    DEFAULT_CHUNK_RAYS,
    RenderEngine,
    baked_fingerprint,
    default_cache,
    default_engine,
)
from repro.render.kernels import (
    KernelSet,
    get_kernels,
    known_kernel_names,
    resolve_kernel_name,
    warm_up,
)

__all__ = [
    "CacheStats",
    "DEFAULT_CHUNK_RAYS",
    "KernelSet",
    "RenderCache",
    "RenderEngine",
    "baked_fingerprint",
    "camera_cache_key",
    "default_cache",
    "default_engine",
    "get_kernels",
    "known_kernel_names",
    "resolve_kernel_name",
    "warm_up",
]
