"""Object detection and mask extraction substrate.

NeRFlex's segmentation module starts from an off-the-shelf object detector
that produces per-object masks on every training image (§III-A).  Pretrained
detectors are not available offline, so two detectors with the same
interface are provided:

* :class:`OracleDetector` — reads the instance-ID buffer produced by the
  ground-truth renderer (a perfect detector, the default in experiments);
* :class:`ConnectedComponentsDetector` — a purely image-space detector
  (foreground extraction + connected components) that needs no ground-truth
  information and demonstrates the pipeline end-to-end from pixels alone.

The module also provides the crop-and-enlarge (interpolation scaling)
primitive that turns a detected object into a dedicated training image.
"""

from repro.detection.detector import (
    Detection,
    OracleDetector,
    ConnectedComponentsDetector,
)
from repro.detection.masks import mask_pixel_counts, mask_iou, merge_masks
from repro.detection.interpolation import crop_and_enlarge

__all__ = [
    "Detection",
    "OracleDetector",
    "ConnectedComponentsDetector",
    "mask_pixel_counts",
    "mask_iou",
    "merge_masks",
    "crop_and_enlarge",
]
