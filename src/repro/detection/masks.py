"""Mask utilities shared by the segmentation module and its tests."""

from __future__ import annotations

import numpy as np


def mask_pixel_counts(detections_per_view: list, instance_id: int) -> list:
    """Pixel counts of one instance across views.

    Args:
        detections_per_view: list (one entry per view) of detection lists,
            as produced by a detector.
        instance_id: the instance to collect counts for.

    Returns:
        One count per view; views where the instance was not detected
        contribute 0.
    """
    counts = []
    for detections in detections_per_view:
        count = 0
        for detection in detections:
            if detection.instance_id == instance_id:
                count = detection.pixel_count
                break
        counts.append(count)
    return counts


def mask_iou(mask_a: np.ndarray, mask_b: np.ndarray) -> float:
    """Intersection-over-union of two boolean masks (1.0 if both empty)."""
    mask_a = np.asarray(mask_a, dtype=bool)
    mask_b = np.asarray(mask_b, dtype=bool)
    if mask_a.shape != mask_b.shape:
        raise ValueError("masks must have the same shape")
    union = np.logical_or(mask_a, mask_b).sum()
    if union == 0:
        return 1.0
    intersection = np.logical_and(mask_a, mask_b).sum()
    return float(intersection) / float(union)


def merge_masks(masks: list) -> np.ndarray:
    """Union of a list of boolean masks."""
    if not masks:
        raise ValueError("merge_masks needs at least one mask")
    merged = np.zeros_like(np.asarray(masks[0], dtype=bool))
    for mask in masks:
        merged |= np.asarray(mask, dtype=bool)
    return merged
