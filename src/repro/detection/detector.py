"""Per-image object detection producing instance masks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.scenes.raytrace import RenderResult
from repro.utils.image import bbox_from_mask


@dataclass
class Detection:
    """One detected object instance in one image.

    Attributes:
        instance_id: scene instance id for oracle detections, or a negative
            synthetic id for detectors that cannot identify instances.
        mask: boolean pixel mask of the object.
        bbox: ``(row0, col0, row1, col1)`` bounding box (exclusive ends).
        pixel_count: number of mask pixels (the object's footprint, used for
            the training-coverage statistics).
    """

    instance_id: int
    mask: np.ndarray
    bbox: tuple
    pixel_count: int

    @classmethod
    def from_mask(cls, instance_id: int, mask: np.ndarray) -> "Detection":
        mask = np.asarray(mask, dtype=bool)
        return cls(
            instance_id=int(instance_id),
            mask=mask,
            bbox=bbox_from_mask(mask),
            pixel_count=int(mask.sum()),
        )


class OracleDetector:
    """Detector that reads the renderer's instance-ID buffer.

    Stands in for the neural object detector of the paper's segmentation
    module: it returns one mask per object instance visible in the view.
    """

    def detect(self, view: RenderResult, min_pixels: int = 4) -> list:
        """Detect all object instances visible in a rendered view."""
        detections = []
        ids = np.unique(view.object_ids)
        for instance_id in ids:
            if instance_id < 0:
                continue
            mask = view.object_ids == instance_id
            if mask.sum() < min_pixels:
                continue
            detections.append(Detection.from_mask(int(instance_id), mask))
        return detections


class ConnectedComponentsDetector:
    """Image-space detector: foreground extraction + connected components.

    Works from pixels alone: foreground is whatever differs from the
    background colour (or, when available, the renderer's hit mask), and
    connected foreground regions become detections.  Touching objects merge
    into one detection — the same failure mode a real detector would need a
    semantic model to resolve — which downstream modules tolerate (a merged
    region simply becomes one sub-scene).
    """

    def __init__(self, background_color=(1.0, 1.0, 1.0), tolerance: float = 0.04) -> None:
        self.background_color = np.asarray(background_color, dtype=np.float64)
        self.tolerance = float(tolerance)

    def detect(self, view: "RenderResult | np.ndarray", min_pixels: int = 16) -> list:
        """Detect foreground components in an image or rendered view."""
        image = np.asarray(getattr(view, "rgb", view), dtype=np.float64)
        difference = np.abs(image - self.background_color).max(axis=-1)
        foreground = difference > self.tolerance
        labels, num_components = ndimage.label(foreground)
        detections = []
        next_id = -1
        for component in range(1, num_components + 1):
            mask = labels == component
            if mask.sum() < min_pixels:
                continue
            detections.append(Detection.from_mask(next_id, mask))
            next_id -= 1
        return detections
