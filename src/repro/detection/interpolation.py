"""Crop-and-enlarge: the interpolation scaling step of the segmentation module.

After deciding that an object deserves its own NeRF, NeRFlex extracts the
object from every training image using its mask's outermost pixels as the
boundary and enlarges the crop back to the full training-image size with
interpolation (§III-A).  The enlarged image has the same number of pixels as
the original but dedicates all of them to the one object, lowering the
spatial frequency of the detail the dedicated network has to learn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.image import bbox_from_mask, crop_to_bbox, pad_to_square, resize_bilinear


@dataclass
class EnlargedCrop:
    """Result of cropping an object and enlarging it to full image size.

    Attributes:
        image: the enlarged RGB image (same resolution as the source image).
        mask: the enlarged object mask.
        scale_factor: linear enlargement factor (output object size divided
            by its size in the original image).  A factor of 3 means each
            original object pixel now spans ~3 pixels, i.e. the detail
            frequency the dedicated NeRF must learn dropped by ~3x.
        bbox: the source-image bounding box the crop was taken from.
    """

    image: np.ndarray
    mask: np.ndarray
    scale_factor: float
    bbox: tuple


def crop_and_enlarge(
    image: np.ndarray,
    mask: np.ndarray,
    margin: int = 2,
    background=(1.0, 1.0, 1.0),
) -> EnlargedCrop:
    """Crop an object by its mask and enlarge it to the full image size.

    Args:
        image: the source training image, ``(H, W, 3)``.
        mask: boolean object mask in the source image.
        margin: extra pixels kept around the mask's bounding box.
        background: colour used for pixels outside the object mask (the
            dedicated training image contains only the object's content).

    Raises:
        ValueError: if the mask is empty.
    """
    image = np.asarray(image, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if image.shape[:2] != mask.shape:
        raise ValueError(
            f"image {image.shape[:2]} and mask {mask.shape} resolutions differ"
        )
    background = np.asarray(background, dtype=np.float64)

    bbox = bbox_from_mask(mask, margin=margin)
    isolated = np.where(mask[..., None], image, background[None, None, :])
    crop = crop_to_bbox(isolated, bbox)
    crop_mask = crop_to_bbox(mask.astype(np.float64), bbox)

    # Keep the aspect ratio: pad the crop to a square before resizing, as the
    # training images are square.
    crop_square = pad_to_square(crop, fill=float(background.mean()))
    mask_square = pad_to_square(crop_mask, fill=0.0)

    out_h, out_w = image.shape[:2]
    enlarged = resize_bilinear(crop_square, (out_h, out_w))
    enlarged_mask = resize_bilinear(mask_square, (out_h, out_w)) > 0.5

    source_side = max(crop_square.shape[0], crop_square.shape[1])
    scale_factor = float(max(out_h, out_w)) / float(max(source_side, 1))
    return EnlargedCrop(
        image=np.clip(enlarged, 0.0, 1.0),
        mask=enlarged_mask,
        scale_factor=scale_factor,
        bbox=bbox,
    )
