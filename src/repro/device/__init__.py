"""Mobile-device simulator.

The paper deploys baked NeRF data to an iPhone 13 and a Pixel 4 and renders
it in the browser with WebGL.  Physical handsets are not available here, so
this package models the two behaviours the evaluation depends on:

* a **memory model** — each device has a data-size budget; the iPhone's
  WebGL engine refuses to load data above ~240 MB, and the Pixel keeps
  loading but loses roughly 15 FPS once data exceeds ~150 MB (§IV-A);
* a **frame-time model** — per-frame cost grows with the baked data size
  (and mildly with the number of sub-models), with a loading/warm-up phase
  at the start of a session, producing the FPS traces of Fig. 6.
"""

from repro.device.models import DeviceProfile, IPHONE_13, PIXEL_4, DEVICE_LIBRARY
from repro.device.memory import MemoryModel, LoadOutcome
from repro.device.render_sim import RenderSimulator, simulate_fps_trace

__all__ = [
    "DeviceProfile",
    "IPHONE_13",
    "PIXEL_4",
    "DEVICE_LIBRARY",
    "MemoryModel",
    "LoadOutcome",
    "RenderSimulator",
    "simulate_fps_trace",
]
