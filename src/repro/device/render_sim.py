"""On-device rendering simulation: per-frame times and FPS traces (Fig. 6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.memory import MemoryModel
from repro.device.models import DeviceProfile
from repro.metrics.fps import FPSTrace
from repro.utils.rng import make_rng


@dataclass
class RenderSimulator:
    """Simulates a rendering session of baked data on a device.

    The paper's FPS evaluation rotates the scene at a fixed speed for 2000
    frames; the trace starts with heavy fluctuation while the multi-modal
    NeRF files are loaded and parsed, then settles to a steady state whose
    level is set by the device's frame-time model.

    Args:
        device: the device profile to simulate.
        jitter_fraction: relative standard deviation of steady-state frame
            times (thermal and scheduler noise).
        seed: RNG seed for the noise (deterministic by default).
    """

    device: DeviceProfile
    jitter_fraction: float = 0.06
    seed: int = 0

    def simulate(
        self,
        size_mb: float,
        num_submodels: int = 1,
        num_frames: int = 2000,
    ) -> FPSTrace:
        """Produce an FPS trace for a deployment of the given size.

        Returns a failed trace (all-zero FPS) when the device cannot load
        the data at all — the paper's "Single NeRF fails to render on
        iPhone" case.
        """
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        memory = MemoryModel(self.device)
        outcome = memory.try_load(size_mb)
        if not outcome.loaded:
            return FPSTrace(fps=np.zeros(num_frames), failed=True)

        rng = make_rng(self.seed)
        steady_ms = self.device.frame_time_ms(size_mb, num_submodels)
        frame_ms = np.full(num_frames, steady_ms)

        # Steady-state jitter.
        frame_ms *= 1.0 + self.jitter_fraction * rng.standard_normal(num_frames)

        # Loading phase: the first frames interleave parsing/upload work with
        # rendering, producing the large fluctuations visible in Fig. 6.
        loading = min(self.device.loading_frames, num_frames)
        load_penalty = np.linspace(2.5, 0.0, loading) ** 2
        spikes = rng.uniform(0.0, 1.0, loading) < 0.25
        load_penalty += spikes * rng.uniform(1.0, 4.0, loading)
        frame_ms[:loading] *= 1.0 + load_penalty

        # Occasional stutter events (garbage collection / texture residency),
        # more frequent the further the data exceeds the device budget.
        excess_ratio = max(0.0, size_mb - self.device.memory_budget_mb) / max(
            self.device.memory_budget_mb, 1.0
        )
        stutter_prob = 0.002 + 0.02 * excess_ratio
        stutters = rng.uniform(0.0, 1.0, num_frames) < stutter_prob
        frame_ms[stutters] *= rng.uniform(2.0, 4.0, int(stutters.sum()))

        frame_ms = np.maximum(frame_ms, 1.0)
        return FPSTrace(fps=1000.0 / frame_ms, failed=False)


def simulate_fps_trace(
    device: DeviceProfile,
    size_mb: float,
    num_submodels: int = 1,
    num_frames: int = 2000,
    seed: int = 0,
) -> FPSTrace:
    """Convenience wrapper around :class:`RenderSimulator`."""
    return RenderSimulator(device=device, seed=seed).simulate(
        size_mb=size_mb, num_submodels=num_submodels, num_frames=num_frames
    )
