"""Device profiles for the two handsets used in the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceProfile:
    """Capability description of a mobile device.

    Attributes:
        name: human-readable device name.
        memory_budget_mb: the data-size limit ``H`` handed to NeRFlex's
            configuration selector (240 MB for iPhone 13, 150 MB for
            Pixel 4 in the paper).
        hard_memory_limit_mb: above this size the WebGL engine fails to load
            the data at all and rendering never starts.
        compute_score: relative rendering throughput (1.0 = iPhone 13).
        base_frame_ms: fixed per-frame cost (driver + compositing overhead).
        size_ms_per_mb: incremental per-frame cost per MB of baked data.
        excess_ms_per_mb: additional per-frame cost per MB *above* the
            memory budget (models the stutter the paper observes on the
            Pixel once data exceeds 150 MB).
        submodel_ms: per-frame cost of each additional sub-model (draw-call
            and state-switch overhead of the multi-NeRF player).
        loading_frames: length of the initial loading phase during which the
            frame rate fluctuates heavily.
    """

    name: str
    memory_budget_mb: float
    hard_memory_limit_mb: float
    compute_score: float = 1.0
    base_frame_ms: float = 8.0
    size_ms_per_mb: float = 0.09
    excess_ms_per_mb: float = 0.16
    submodel_ms: float = 0.2
    loading_frames: int = 150

    def __post_init__(self) -> None:
        if self.memory_budget_mb <= 0 or self.hard_memory_limit_mb <= 0:
            raise ValueError("memory limits must be positive")
        if self.compute_score <= 0:
            raise ValueError("compute_score must be positive")

    def frame_time_ms(self, size_mb: float, num_submodels: int = 1) -> float:
        """Steady-state per-frame time for a deployment of the given size."""
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        excess = max(0.0, size_mb - self.memory_budget_mb)
        cost = (
            self.base_frame_ms
            + self.size_ms_per_mb * size_mb
            + self.excess_ms_per_mb * excess
            + self.submodel_ms * max(num_submodels - 1, 0)
        )
        return cost / self.compute_score

    def steady_state_fps(self, size_mb: float, num_submodels: int = 1) -> float:
        """Steady-state FPS implied by :meth:`frame_time_ms` (0 if unloadable)."""
        if not self.can_load(size_mb):
            return 0.0
        return 1000.0 / self.frame_time_ms(size_mb, num_submodels)

    def can_load(self, size_mb: float) -> bool:
        """Whether the rendering engine can load data of this size at all."""
        return size_mb <= self.hard_memory_limit_mb


#: iPhone 13: 4 GB RAM; the WebGL engine fails to load baked data beyond
#: ~240 MB (§IV-A), which is therefore both the selector budget and the hard
#: loading limit.
IPHONE_13 = DeviceProfile(
    name="iPhone 13",
    memory_budget_mb=240.0,
    hard_memory_limit_mb=240.0,
    compute_score=1.0,
)

#: Pixel 4: 6 GB RAM, so larger data still loads, but the weaker GPU loses
#: roughly 15 FPS once the data exceeds ~150 MB — hence a 150 MB selector
#: budget with a much higher hard loading limit.
PIXEL_4 = DeviceProfile(
    name="Pixel 4",
    memory_budget_mb=150.0,
    hard_memory_limit_mb=450.0,
    compute_score=0.55,
)

DEVICE_LIBRARY = {"iphone13": IPHONE_13, "pixel4": PIXEL_4}
