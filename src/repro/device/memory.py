"""Memory / loading model of the on-device rendering engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.models import DeviceProfile


@dataclass
class LoadOutcome:
    """Result of attempting to load baked data on a device.

    Attributes:
        loaded: whether loading succeeded.
        size_mb: data size that was attempted.
        load_time_s: wall-clock loading time (0 when loading failed).
        reason: human-readable explanation when loading failed.
    """

    loaded: bool
    size_mb: float
    load_time_s: float = 0.0
    reason: str = ""


@dataclass
class MemoryModel:
    """Loading behaviour of a device's rendering engine.

    Args:
        device: the device profile.
        load_seconds_per_mb: parse/upload time per MB of baked data.
    """

    device: DeviceProfile
    load_seconds_per_mb: float = 0.02

    def try_load(self, size_mb: float) -> LoadOutcome:
        """Attempt to load ``size_mb`` of baked data.

        Mirrors the paper's observation that the iPhone's WebGL engine
        simply fails to load data above its limit, whereas the Pixel loads
        larger data but pays for it at render time.
        """
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        if not self.device.can_load(size_mb):
            return LoadOutcome(
                loaded=False,
                size_mb=float(size_mb),
                reason=(
                    f"{self.device.name}: baked data of {size_mb:.0f} MB exceeds the "
                    f"loadable limit of {self.device.hard_memory_limit_mb:.0f} MB"
                ),
            )
        return LoadOutcome(
            loaded=True,
            size_mb=float(size_mb),
            load_time_s=float(size_mb) * self.load_seconds_per_mb,
        )

    def within_budget(self, size_mb: float) -> bool:
        """Whether the data fits the selector budget (not just loadable)."""
        return size_mb <= self.device.memory_budget_mb
