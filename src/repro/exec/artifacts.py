"""Content-addressed store for expensive pipeline artefacts.

The staged NeRFlex pipeline produces two artefact kinds that are pure
functions of their inputs and far more expensive than a render: fitted
profile curves (:class:`repro.core.profiler.ObjectProfile`, one bake+score
sweep per sub-scene) and baked sub-models.  Neither depends on the *device*,
only on the scene content and the preparation knobs — so benchmarks that
sweep devices and selectors, and repeated ``prepare()`` calls on the same
dataset, can reuse them instead of recomputing.

Keys are content-addressed tuples assembled by the caller: a kind tag first
(``"profile"``, ``"baked"``), then every input that determines the artefact
— content fingerprints from :func:`repro.render.engine._content_identity`,
configuration knobs, seeds, size constants.  The store itself is agnostic:
it maps hashable keys to values under an optional LRU bound, thread-safely
(the thread backend may fan artefact-producing stages out concurrently).

The render cache (:mod:`repro.render.cache`) stays separate: it memoises
*images* under ``(scene, camera, quality)`` keys, while this store memoises
the *models* those images are rendered from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.lru import MISS, LockedLRU


@dataclass
class ArtifactStats:
    """Hit/miss accounting of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def reuse_count(self) -> int:
        """Number of artefacts served from the store instead of recomputed."""
        return self.hits

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


@dataclass
class ArtifactStore:
    """A thread-safe, optionally bounded map from content keys to artefacts.

    The map itself is a :class:`repro.utils.lru.LockedLRU` (shared with the
    render cache); this class layers artefact-level accounting on top —
    overall hit/miss/put statistics plus hit counts grouped by each key's
    leading kind tag (``"profile"`` / ``"baked"``), which is what the
    benchmark suite's reuse assertions read.

    Args:
        max_entries: optional LRU bound on the number of stored artefacts;
            ``None`` means unbounded (a benchmark session stores a few dozen
            profiles and baked models).
    """

    max_entries: "int | None" = None
    stats: ArtifactStats = field(default_factory=ArtifactStats)

    def __post_init__(self) -> None:
        self._lru = LockedLRU(max_entries=self.max_entries)
        self._kind_hits: dict = {}

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key) -> bool:
        return key in self._lru

    def get(self, key):
        """Stored artefact for ``key`` (``None`` on miss); updates statistics."""
        with self._lru.lock:
            value = self._lru.get(key)
            if value is MISS:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            if isinstance(key, tuple) and key:
                self._kind_hits[key[0]] = self._kind_hits.get(key[0], 0) + 1
            return value

    def put(self, key, value) -> None:
        with self._lru.lock:
            self.stats.puts += 1
            if self._lru.put(key, value):
                self.stats.evictions += 1

    def get_or_create(self, key, build_fn):
        """Return the artefact for ``key``, building and storing it on a miss.

        ``build_fn`` runs outside the lock (it may be minutes of baking);
        should two threads race on the same key, both build and the last
        write wins — wasteful but consistent, since keys are
        content-addressed and builds are deterministic.
        """
        value = self.get(key)
        if value is None:
            value = build_fn()
            self.put(key, value)
        return value

    def reuse_by_kind(self) -> dict:
        """Hit counts grouped by the key's leading kind tag."""
        with self._lru.lock:
            return dict(self._kind_hits)

    def invalidate(self, kind=None) -> int:
        """Drop every artefact (or only those whose kind tag matches)."""
        if kind is None:
            return self._lru.clear()
        return self._lru.remove_where(
            lambda key: isinstance(key, tuple) and bool(key) and key[0] == kind
        )
