"""Content-addressed store for expensive pipeline artefacts.

The staged NeRFlex pipeline produces two artefact kinds that are pure
functions of their inputs and far more expensive than a render: fitted
profile curves (:class:`repro.core.profiler.ObjectProfile`, one bake+score
sweep per sub-scene) and baked sub-models.  Neither depends on the *device*,
only on the scene content and the preparation knobs — so benchmarks that
sweep devices and selectors, and repeated ``prepare()`` calls on the same
dataset, can reuse them instead of recomputing.

Keys are content-addressed tuples assembled by the caller: a kind tag first
(``"profile"``, ``"baked"``), then every input that determines the artefact
— content fingerprints from :func:`repro.render.engine._content_identity`,
configuration knobs, seeds, size constants.  The store itself is agnostic:
it maps hashable keys to values under an optional LRU bound, thread-safely
(the thread backend may fan artefact-producing stages out concurrently).

The store is two-level.  The memory tier (a
:class:`repro.utils.lru.LockedLRU`) serves repeated lookups within one
process; an optional disk tier (:class:`repro.exec.persist.
DiskArtifactStore`, enabled by ``$REPRO_ARTIFACT_DIR`` or an explicit
directory) backs it across *invocations*: a memory miss falls through to
disk, a disk hit is promoted into memory, and every put writes through.
This is what amortises the paper's one-shot preparation cost across
benchmark runs and CI jobs — the second invocation on the same scenes
serves every profile and bake from disk and recomputes nothing.

The render cache (:mod:`repro.render.cache`) stays separate: it memoises
*images* under ``(scene, camera, quality)`` keys, while this store memoises
the *models* those images are rendered from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec.persist import DiskArtifactStore, artifact_dir_from_env
from repro.utils.lru import MISS, LockedLRU


@dataclass
class ArtifactStats:
    """Hit/miss accounting of one :class:`ArtifactStore`.

    ``hits`` counts every request served from the store (memory or disk);
    ``disk_hits`` is the subset that came off the disk tier.  ``misses``
    counts requests neither tier could serve — i.e. artefacts the caller
    then had to *recompute*.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def reuse_count(self) -> int:
        """Number of artefacts served from the store instead of recomputed."""
        return self.hits

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
        }


@dataclass
class ArtifactStore:
    """A thread-safe, optionally bounded, optionally disk-backed artefact map.

    The memory tier is a :class:`repro.utils.lru.LockedLRU` (shared with the
    render cache); this class layers artefact-level accounting on top —
    overall hit/miss/put statistics plus hit *and miss* counts grouped by
    each key's leading kind tag (``"profile"`` / ``"baked"``), which is what
    the benchmark suite's reuse and warm-store assertions read.

    Args:
        max_entries: optional LRU bound on the number of memory-resident
            artefacts; ``None`` means unbounded (a benchmark session stores
            a few dozen profiles and baked models).  The disk tier has its
            own byte bound and is unaffected.
        disk: optional :class:`~repro.exec.persist.DiskArtifactStore`
            backing tier (see :func:`create_artifact_store`).
    """

    max_entries: "int | None" = None
    stats: ArtifactStats = field(default_factory=ArtifactStats)
    disk: "DiskArtifactStore | None" = None

    def __post_init__(self) -> None:
        self._lru = LockedLRU(max_entries=self.max_entries)
        self._kind_hits: dict = {}
        self._kind_misses: dict = {}

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key) -> bool:
        if key in self._lru:
            return True
        return self.disk is not None and key in self.disk

    @staticmethod
    def _kind(key) -> "str | None":
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return None

    def get(self, key):
        """Stored artefact for ``key`` (``None`` on miss); updates statistics.

        Memory first; on a memory miss the disk tier (when configured) is
        consulted, and a disk hit is promoted into the memory tier.  Only a
        miss in *both* tiers counts as a miss — equivalently, as a
        recompute the caller now has to perform.
        """
        kind = self._kind(key)
        with self._lru.lock:
            value = self._lru.get(key)
            if value is not MISS:
                self.stats.hits += 1
                if kind is not None:
                    self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
                return value
        # Disk I/O and decoding happen outside the lock — a multi-MB texel
        # atlas must not stall every other thread's store access.  Two
        # threads racing the same key may both load it; the second promote
        # wins, which is harmless (content-addressed, deterministic).
        loaded = self.disk.get(key) if self.disk is not None else None
        with self._lru.lock:
            if loaded is not None:
                if self._lru.put(key, loaded):
                    self.stats.evictions += 1
                self.stats.hits += 1
                self.stats.disk_hits += 1
                if kind is not None:
                    self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
                return loaded
            self.stats.misses += 1
            if kind is not None:
                self._kind_misses[kind] = self._kind_misses.get(kind, 0) + 1
            return None

    def put(self, key, value, write_through: bool = True) -> None:
        """Store an artefact in the memory tier and write through to disk.

        ``write_through=False`` skips the disk write for callers that know
        the artefact is already persisted under this key — e.g. the
        object-sharded profile stage, whose cluster workers put fresh fits
        into the shared disk store themselves.
        """
        with self._lru.lock:
            self.stats.puts += 1
            if self._lru.put(key, value):
                self.stats.evictions += 1
        if write_through and self.disk is not None:
            self.disk.put(key, value)

    def get_or_create(self, key, build_fn):
        """Return the artefact for ``key``, building and storing it on a miss.

        ``build_fn`` runs outside the lock (it may be minutes of baking);
        should two threads race on the same key, both build and the last
        write wins — wasteful but consistent, since keys are
        content-addressed and builds are deterministic.
        """
        value = self.get(key)
        if value is None:
            value = build_fn()
            self.put(key, value)
        return value

    def reuse_by_kind(self) -> dict:
        """Hit counts grouped by the key's leading kind tag."""
        with self._lru.lock:
            return dict(self._kind_hits)

    def recompute_by_kind(self) -> dict:
        """Miss (= recompute) counts grouped by the key's leading kind tag.

        This is what the warm-store assertions read: a second invocation
        against a populated disk store must show zero ``"profile"`` and
        ``"baked"`` recomputes.
        """
        with self._lru.lock:
            return dict(self._kind_misses)

    def stats_summary(self) -> dict:
        """One JSON-able dict of every statistic both tiers keep."""
        summary = self.stats.as_dict()
        summary["reuse_by_kind"] = self.reuse_by_kind()
        summary["recompute_by_kind"] = self.recompute_by_kind()
        summary["memory_entries"] = len(self._lru)
        if self.disk is not None:
            summary["disk"] = self.disk.stats.as_dict()
            summary["disk"]["root"] = self.disk.root
        return summary

    def invalidate(self, kind=None) -> int:
        """Drop every artefact (or only those whose kind tag matches).

        Both tiers are cleared; the returned count is the number of memory
        entries dropped (the disk tier may hold more, e.g. from earlier
        invocations).
        """
        if kind is None:
            if self.disk is not None:
                self.disk.clear()
            return self._lru.clear()
        if self.disk is not None:
            self.disk.remove_kind(kind)
        return self._lru.remove_where(
            lambda key: isinstance(key, tuple) and bool(key) and key[0] == kind
        )


def create_artifact_store(
    max_entries: "int | None" = None,
    directory: "str | None" = None,
    max_bytes: "int | None" = None,
) -> ArtifactStore:
    """Build an artifact store, disk-backed when persistence is configured.

    Args:
        max_entries: memory-tier LRU bound (``None`` = unbounded).
        directory: on-disk cache directory.  ``None`` consults
            ``$REPRO_ARTIFACT_DIR`` and stays memory-only when it is unset —
            persistence is strictly opt-in, so default test and benchmark
            runs remain hermetic.
        max_bytes: disk-tier size bound (``None`` consults
            ``$REPRO_ARTIFACT_MAX_MB``, defaulting to 4 GiB).
    """
    directory = directory or artifact_dir_from_env()
    disk = DiskArtifactStore(directory, max_bytes=max_bytes) if directory else None
    return ArtifactStore(max_entries=max_entries, disk=disk)
