"""Execution layer: pluggable backends and the content-addressed artefact store.

See :mod:`repro.exec.backends` for the serial / thread / process execution
backends behind every bulk workload, :mod:`repro.exec.cluster` for the
shard-planned cluster backend over worker daemons, :mod:`repro.exec.
artifacts` for the two-level store that lets staged pipeline runs reuse
profile curves and baked models across devices, selectors and repeated
``prepare()`` calls, and :mod:`repro.exec.persist` for the on-disk tier
that extends that reuse across invocations (``$REPRO_ARTIFACT_DIR``).
"""

from repro.exec.artifacts import ArtifactStats, ArtifactStore, create_artifact_store
from repro.exec.backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    Backend,
    DEFAULT_BACKEND_NAME,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    fork_available,
    fresh_seed_root,
    in_worker_process,
    resolve_backend,
    shard_rng,
    shutdown_process_pools,
)
from repro.exec.cluster import (
    ClusterBackend,
    ClusterStats,
    ClusterTaskError,
    Shard,
    ShardPlanner,
    store_aware_costs,
)
from repro.exec.persist import (
    ARTIFACT_DIR_ENV_VAR,
    DiskArtifactStore,
    DiskStoreStats,
    artifact_dir_from_env,
    default_artifact_dir,
)

__all__ = [
    "ARTIFACT_DIR_ENV_VAR",
    "ArtifactStats",
    "ArtifactStore",
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "Backend",
    "ClusterBackend",
    "ClusterStats",
    "ClusterTaskError",
    "DEFAULT_BACKEND_NAME",
    "DiskArtifactStore",
    "DiskStoreStats",
    "ProcessBackend",
    "SerialBackend",
    "Shard",
    "ShardPlanner",
    "ThreadBackend",
    "artifact_dir_from_env",
    "create_artifact_store",
    "default_artifact_dir",
    "fork_available",
    "fresh_seed_root",
    "in_worker_process",
    "resolve_backend",
    "shard_rng",
    "shutdown_process_pools",
    "store_aware_costs",
]
