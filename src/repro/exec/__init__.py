"""Execution layer: pluggable backends and the content-addressed artefact store.

See :mod:`repro.exec.backends` for the serial / thread / process execution
backends behind every bulk workload, and :mod:`repro.exec.artifacts` for the
store that lets staged pipeline runs reuse profile curves and baked models
across devices, selectors and repeated ``prepare()`` calls.
"""

from repro.exec.artifacts import ArtifactStats, ArtifactStore
from repro.exec.backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    Backend,
    DEFAULT_BACKEND_NAME,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    fork_available,
    in_worker_process,
    resolve_backend,
    shard_rng,
)

__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "Backend",
    "DEFAULT_BACKEND_NAME",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "fork_available",
    "in_worker_process",
    "resolve_backend",
    "shard_rng",
]
