"""Execution layer: pluggable backends, transports and the artefact store.

See :mod:`repro.exec.backends` for the serial / thread / process execution
backends behind every bulk workload, :mod:`repro.exec.cluster` for the
shard-planned cluster backend, :mod:`repro.exec.worker` for the persistent
worker-daemon lifecycle both parallel backends share,
:mod:`repro.exec.transport` for the pluggable worker transports
(socketpair+fork and loopback TCP) and the length-prefixed wire protocol,
:mod:`repro.exec.arrayplane` for frame protocol v2's out-of-band array
plane (pickle protocol 5 segments, the ref-counted shared-memory pool),
:mod:`repro.exec.artifacts` for the two-level store that lets staged
pipeline runs reuse profile curves and baked models across devices,
selectors and repeated ``prepare()`` calls, and :mod:`repro.exec.persist`
for the on-disk tier that extends that reuse across invocations
(``$REPRO_ARTIFACT_DIR``).  :mod:`repro.exec.dag` lifts the staged
pipeline into an explicit artifact-keyed task DAG scheduled over a bounded
pool, and :mod:`repro.exec.costmodel` fits the measured per-stage cost
model its (and the shard planner's) cost hints come from.
"""

from repro.exec.arrayplane import (
    FrameProtocolError,
    MAX_FRAME_BYTES,
    PLANE_INLINE,
    PLANE_SHM,
    SHM_ENV_VAR,
    SegmentPool,
    shared_pool,
    shm_available,
)
from repro.exec.artifacts import ArtifactStats, ArtifactStore, create_artifact_store
from repro.exec.backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    Backend,
    DEFAULT_BACKEND_NAME,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    fork_available,
    fresh_seed_root,
    in_worker_process,
    known_backend_names,
    resolve_backend,
    shard_rng,
    shutdown_process_pools,
    transport_label,
)
from repro.exec.cluster import (
    ClusterBackend,
    ClusterStats,
    ClusterTaskError,
    ShardPlanner,
    store_aware_costs,
)
from repro.exec.costmodel import (
    CostSample,
    FEATURE_NAMES,
    StageCostModel,
    default_cost_model,
    fit_from_bench_dir,
    load_bench_samples,
    rank_concordance,
)
from repro.exec.dag import (
    DagNode,
    DagRunResult,
    DagScheduler,
    DagValidationError,
    TaskDag,
)
from repro.exec.persist import (
    ARTIFACT_DIR_ENV_VAR,
    DiskArtifactStore,
    DiskStoreStats,
    artifact_dir_from_env,
    default_artifact_dir,
)
from repro.exec.transport import (
    Channel,
    DEFAULT_TRANSPORT_NAME,
    ForkSocketpairTransport,
    TRANSPORT_ENV_VAR,
    TRANSPORTS,
    TcpTransport,
    Transport,
    resolve_transport,
)
from repro.exec.worker import (
    HostRunReport,
    Shard,
    WorkerHost,
    WorkerTaskError,
    shutdown_worker_hosts,
)

__all__ = [
    "ARTIFACT_DIR_ENV_VAR",
    "ArtifactStats",
    "ArtifactStore",
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "Backend",
    "Channel",
    "ClusterBackend",
    "ClusterStats",
    "ClusterTaskError",
    "CostSample",
    "DEFAULT_BACKEND_NAME",
    "DEFAULT_TRANSPORT_NAME",
    "DagNode",
    "DagRunResult",
    "DagScheduler",
    "DagValidationError",
    "FEATURE_NAMES",
    "DiskArtifactStore",
    "DiskStoreStats",
    "ForkSocketpairTransport",
    "FrameProtocolError",
    "HostRunReport",
    "MAX_FRAME_BYTES",
    "PLANE_INLINE",
    "PLANE_SHM",
    "ProcessBackend",
    "SHM_ENV_VAR",
    "SegmentPool",
    "SerialBackend",
    "Shard",
    "ShardPlanner",
    "StageCostModel",
    "TRANSPORT_ENV_VAR",
    "TRANSPORTS",
    "TaskDag",
    "TcpTransport",
    "ThreadBackend",
    "Transport",
    "WorkerHost",
    "WorkerTaskError",
    "artifact_dir_from_env",
    "create_artifact_store",
    "default_artifact_dir",
    "default_cost_model",
    "fit_from_bench_dir",
    "fork_available",
    "fresh_seed_root",
    "in_worker_process",
    "known_backend_names",
    "load_bench_samples",
    "rank_concordance",
    "resolve_backend",
    "resolve_transport",
    "shard_rng",
    "shared_pool",
    "shm_available",
    "shutdown_process_pools",
    "shutdown_worker_hosts",
    "store_aware_costs",
    "transport_label",
]
