"""Frame protocol v2: the out-of-band array plane of the worker transport.

Protocol v1 (:func:`repro.exec.transport.send_frame`) pays a full
``pickle.dumps`` copy of every ndarray payload to cross the wire, and a
second copy on receive.  For the render-chunk and bake paths the arrays
dwarf the control metadata by orders of magnitude, so v2 splits them out:
``pickle`` runs at protocol 5 with ``buffer_callback``, the control frame
carries metadata only, and each array buffer crosses as its own
**segment** —

* **inline** (kind 0): raw length-prefixed bytes on the socket.  The only
  segment kind the TCP plane uses (bytes-on-wire is the remote-ready
  path), and the fallback everywhere when shared memory is unavailable or
  the buffer is too small to be worth a segment.
* **transfer** (kind 1, worker → scheduler): the worker places the buffer
  in a fresh :class:`multiprocessing.shared_memory.SharedMemory` block and
  ships only its name; the scheduler *adopts* the block — attaches and
  immediately unlinks it, so the name never outlives the frame — and the
  unpickled arrays are zero-copy views of the mapping.
* **pooled** (kind 2, scheduler → worker): the buffer is written into a
  scheduler-owned, ref-counted :class:`SegmentPool` block; the worker
  attaches (with a small keep-alive cache, blocks are reused across
  dispatches) and reads items zero-copy.  The scheduler pins the block
  for the lifetime of the dispatch and recycles it when the shard's reply
  (or the worker's death) releases the pin.

Wire layout of one v2 frame::

    <Q control_len> <I nseg> <control bytes> nseg * segment
    segment(kind 0) = <B 0> <Q size> <raw bytes>
    segment(kind 1) = <B 1> <B namelen> <name ascii> <Q size>
    segment(kind 2) = <B 2> <B namelen> <name ascii> <Q size>

Segment lifetime contract (the part v1 never needed):

* Transfer blocks are **created by the worker, owned by the scheduler**:
  the worker closes its handle right after the send and never unlinks;
  the scheduler unlinks at adoption, so a successfully received frame can
  never leak a name.  A worker that dies *between* creating a block and
  the scheduler reading the frame leaves an orphan — every worker's
  blocks carry that worker's unique name prefix, and the host reaps the
  prefix (``/dev/shm`` enumeration) whenever the worker is retired or
  found dead.
* Pooled blocks are created, unlinked and recycled by the scheduler
  alone; workers only ever attach.  :meth:`SegmentPool.shutdown` (atexit)
  unlinks every pooled block, so a clean interpreter exit leaves zero
  residue by construction.
* Adopted mappings stay alive exactly as long as the arrays viewing them;
  :meth:`SegmentPool.reclaim` probes each with ``close()`` (which refuses
  with :class:`BufferError` while exported views exist) after every map.

Everything here is behind the typed ``REPRO_TRANSPORT_SHM`` knob
(``auto`` — v2 with shared memory where available; ``inline`` — v2 with
inline segments only; ``off`` — v1 frames everywhere) with graceful
per-buffer fallback to inline segments when block creation fails, and
graceful fallback to protocol v1 when the platform has no usable shared
memory at all.  Version negotiation lives in
:mod:`repro.exec.transport`: fork workers are told their protocol in the
spawn arguments, TCP workers advertise theirs in the connect-back hello
and the scheduler confirms in a ``welcome`` frame.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import socket
import struct

from repro.analysis.sanitize import make_lock
from repro.config import env as repro_env

#: Environment variable selecting the array plane (see module docstring).
SHM_ENV_VAR = repro_env.REPRO_TRANSPORT_SHM.name

#: Hard ceiling on any single length field read off the wire — a corrupt
#: or hostile peer must not drive an unbounded allocation before pickle
#: even sees the payload.  8 GiB: far above any real frame, far below the
#: address-space damage a forged 2**63 prefix could do.
MAX_FRAME_BYTES = 8 << 30

#: Ceiling on segments per frame (a frame with a million buffers is a
#: protocol violation, not a workload).
MAX_SEGMENTS_PER_FRAME = 1 << 20

#: Buffers below this ride inline even on the shm plane: mapping a fresh
#: block costs more than one small copy.
SHM_MIN_BYTES = 64 << 10

#: Free pooled bytes kept mapped for reuse; beyond this, released blocks
#: are unlinked instead of recycled.
POOL_KEEP_BYTES = 256 << 20

#: Pooled block sizes are rounded up to this granule so consecutive maps
#: with slightly different payloads reuse blocks instead of churning them.
_POOL_GRANULE = 64 << 10

#: Worker-side bound on cached pooled-block attachments.
_ATTACH_CACHE_MAX = 64

#: Where POSIX shared memory is visible as files (Linux).  Orphan reaping
#: and the residue assertions enumerate names here; on platforms without
#: it, reaping degrades to a no-op (and ``shm_available()`` is False).
SHM_DIR = "/dev/shm"

_V2_HEADER = struct.Struct("<QI")
_SEG_KIND = struct.Struct("<B")
_SEG_SIZE = struct.Struct("<Q")
_SEG_NAMELEN = struct.Struct("<B")

_KIND_INLINE = 0
_KIND_TRANSFER = 1
_KIND_POOLED = 2


class FrameProtocolError(ConnectionError):
    """A malformed or protocol-violating frame (oversized length prefix,
    unknown segment kind, a named block that no longer exists).

    Subclasses :class:`ConnectionError` so every existing death-handling
    path — ``except (EOFError, OSError)`` on both sides of the wire —
    treats a poisoned stream exactly like a closed one: the daemon is
    retired and its in-flight shard re-enqueued.
    """


def _sanity_check_length(length: int, what: str) -> int:
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            f"{what} of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "frame cap (corrupt stream or hostile peer)"
        )
    return length


# ---------------------------------------------------------------------------
# Shared-memory primitives
# ---------------------------------------------------------------------------

_SHM_PROBED: "bool | None" = None


def _shared_memory_module():
    from multiprocessing import shared_memory

    return shared_memory


def _untrack(shm) -> None:
    """Detach ``shm`` from multiprocessing's resource tracker.

    The tracker would unlink every registered block when *any* process of
    the tree exits — but our blocks have explicit owners (the scheduler's
    pool registry plus prefix reaping), and a worker's exit must never
    unlink a block the scheduler still maps.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker not running
        pass


def _create_block(name: "str | None", size: int):
    shared_memory = _shared_memory_module()
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    _untrack(shm)
    return shm


def _attach_block(name: str):
    # This Python registers with the resource tracker on *attach* as well
    # as create, so attaches must untrack too — otherwise the tracker
    # would warn (or unlink a reused pooled block) at interpreter exit.
    shared_memory = _shared_memory_module()
    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    return shm


def shm_available() -> bool:
    """Whether this platform supports the shared-memory plane (probed once).

    Requires both a working ``SharedMemory`` create and the ``/dev/shm``
    mount — orphan reaping and the residue assertions enumerate names
    there, and a plane whose leaks were invisible would be worse than the
    inline fallback.
    """
    global _SHM_PROBED
    if _SHM_PROBED is None:
        if not os.path.isdir(SHM_DIR):
            _SHM_PROBED = False
        else:
            try:
                probe = _create_block(None, 1)
                name = probe.name
                probe.close()
                _unlink_name(name)
                _SHM_PROBED = True
            except Exception:
                _SHM_PROBED = False
    return _SHM_PROBED


def list_shm_names(prefix: str) -> "list[str]":
    """Linked shared-memory names under ``prefix`` (the residue probe)."""
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(prefix))


#: Every name this module mints starts with this, so tests can assert
#: zero residue across the whole plane with one enumeration.
NAME_ROOT = "reproap"

_PREFIX_SEQ = itertools.count()

#: Pooled-block name sequence, shared by every pool in the process: names
#: encode only ``pid + seq``, so a per-instance counter would let a test's
#: private pool collide with the shared pool on the same name.
_POOL_NAME_SEQ = itertools.count()


def next_worker_prefix() -> str:
    """A process-unique name prefix for one worker's transfer blocks."""
    return f"{NAME_ROOT}{os.getpid()}w{next(_PREFIX_SEQ)}x"


# ---------------------------------------------------------------------------
# The scheduler-side segment pool
# ---------------------------------------------------------------------------


class _PooledBlock:
    __slots__ = ("shm", "capacity", "refs")

    def __init__(self, shm, capacity: int) -> None:
        self.shm = shm
        self.capacity = capacity
        self.refs = 0


class SegmentPool:
    """The scheduler's registry of shared-memory blocks: ref-counted
    pooled blocks for outbound dispatches, adopted transfer blocks from
    inbound results, and the orphan-reaping bookkeeping for both.

    One instance per scheduler process (see :func:`shared_pool`); fork
    children that inherit it get a fresh, empty pool instead — a worker
    must never unlink blocks the scheduler still owns.
    """

    def __init__(self) -> None:
        self._owner_pid = os.getpid()
        self._lock = make_lock("arrayplane.SegmentPool")
        #: name -> _PooledBlock, every pooled block still linked.
        self._pooled: dict = {}
        #: (capacity, name) of pooled blocks with zero refs, reusable.
        self._free: list = []
        self._free_bytes = 0
        #: name -> SharedMemory of adopted (already-unlinked) transfer
        #: blocks whose mappings may still back live result arrays.
        self._adopted: dict = {}
        self.created = 0
        self.reused = 0
        self.released = 0
        self.adopted = 0
        self.reclaimed = 0
        self.reaped = 0

    # -- pooled blocks (scheduler -> worker) -------------------------------

    def allocate(self, nbytes: int) -> "tuple[str, memoryview]":
        """A pooled block of at least ``nbytes``, pinned (refs = 1).

        Reuses the smallest fitting free block, else creates one (sizes
        rounded up to the pool granule so near-miss payloads still hit).
        Raises ``OSError`` when shared memory cannot be created — callers
        fall back to an inline segment.
        """
        needed = max(int(nbytes), 1)
        with self._lock:
            fit_at = -1
            for position, (capacity, _) in enumerate(self._free):
                if capacity >= needed and (
                    fit_at < 0 or capacity < self._free[fit_at][0]
                ):
                    fit_at = position
            if fit_at >= 0:
                capacity, name = self._free.pop(fit_at)
                self._free_bytes -= capacity
                block = self._pooled[name]
                block.refs = 1
                self.reused += 1
                return name, block.shm.buf[:needed]
        # Creation happens outside the lock (it is a syscall, and an
        # ENOSPC must not wedge concurrent releases); registration after.
        capacity = -(-needed // _POOL_GRANULE) * _POOL_GRANULE
        name = f"{NAME_ROOT}{self._owner_pid}p{next(_POOL_NAME_SEQ)}"
        shm = _create_block(name, capacity)
        block = _PooledBlock(shm, capacity)
        block.refs = 1
        with self._lock:
            self._pooled[name] = block
            self.created += 1
        return name, shm.buf[:needed]

    def pin(self, name: str) -> None:
        """Add one reference to a busy pooled block (speculative sends)."""
        with self._lock:
            self._pooled[name].refs += 1

    def release(self, name: str) -> None:
        """Drop one reference; at zero the block returns to the free list
        (or is unlinked beyond the keep bound).  Unknown names are
        ignored — a pin may be released twice when a dispatch both errors
        and surfaces a death event."""
        unlink = None
        with self._lock:
            block = self._pooled.get(name)
            if block is None or block.refs <= 0:
                return
            block.refs -= 1
            if block.refs:
                return
            self.released += 1
            if self._free_bytes + block.capacity <= POOL_KEEP_BYTES:
                self._free.append((block.capacity, name))
                self._free_bytes += block.capacity
            else:
                del self._pooled[name]
                unlink = block.shm
        if unlink is not None:
            _destroy_block(unlink)

    # -- adopted blocks (worker -> scheduler) ------------------------------

    def adopt(self, name: str, size: int) -> memoryview:
        """Attach a worker's transfer block and immediately unlink it.

        The name is gone from ``/dev/shm`` before this returns — the
        mapping (and the result arrays viewing it) live on until
        :meth:`reclaim` can close the handle.
        """
        try:
            shm = _attach_block(name)
        except (OSError, ValueError) as error:
            raise FrameProtocolError(
                f"transfer segment {name!r} vanished before adoption "
                "(worker died mid-frame?)"
            ) from error
        _unlink_name(name)
        with self._lock:
            self._adopted[name] = shm
            self.adopted += 1
        return shm.buf[:size]

    def reclaim(self) -> int:
        """Close adopted mappings no longer backing any live array.

        ``SharedMemory.close`` refuses with :class:`BufferError` while
        exported views exist, which makes it an exact liveness probe; the
        blocks are already unlinked, so this frees memory, never names.
        """
        with self._lock:
            candidates = list(self._adopted.items())
        freed = 0
        for name, shm in candidates:
            try:
                shm.close()
            except BufferError:
                continue
            freed += 1
            with self._lock:
                self._adopted.pop(name, None)
                self.reclaimed += 1
        return freed

    # -- orphan reaping and shutdown ---------------------------------------

    def reap_prefix(self, prefix: str) -> int:
        """Unlink every linked block under ``prefix`` (a dead worker's
        transfer namespace).  Blocks already adopted were unlinked at
        adoption, so whatever the enumeration still finds is an orphan —
        created by the worker but never received."""
        reaped = 0
        for name in list_shm_names(prefix):
            if _unlink_name(name):
                reaped += 1
        if reaped:
            with self._lock:
                self.reaped += reaped
        return reaped

    def shutdown(self) -> None:
        """Unlink every pooled block and close every reclaimable adopted
        mapping (idempotent; atexit).  No-op in fork children."""
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            pooled = list(self._pooled.values())
            self._pooled.clear()
            self._free.clear()
            self._free_bytes = 0
        for block in pooled:
            _destroy_block(block.shm)
        self.reclaim()
        # Adopted mappings still backing live arrays cannot close; defuse
        # them so nothing raises from finalizers at interpreter exit (the
        # names are long unlinked — this frees descriptors, not memory).
        with self._lock:
            leftover = list(self._adopted.values())
            self._adopted.clear()
        for shm in leftover:
            _quiet_close(shm)

    # -- introspection ------------------------------------------------------

    def pooled_names(self) -> "list[str]":
        with self._lock:
            return sorted(self._pooled)

    def stats(self) -> dict:
        with self._lock:
            return {
                "created": self.created,
                "reused": self.reused,
                "released": self.released,
                "adopted": self.adopted,
                "reclaimed": self.reclaimed,
                "reaped": self.reaped,
                "pooled": len(self._pooled),
                "free": len(self._free),
                "adopted_live": len(self._adopted),
            }

    def refs(self, name: str) -> int:
        with self._lock:
            block = self._pooled.get(name)
            return 0 if block is None else block.refs


def _quiet_close(shm) -> bool:
    """Close ``shm`` when nothing views it; otherwise *defuse* it.

    ``SharedMemory.close`` refuses with :class:`BufferError` while
    exported views exist, and its ``__del__`` does not catch that — so an
    unclosable handle dropped at interpreter exit prints an
    ignored-exception traceback.  Defusing closes the file descriptor and
    drops our references to the buffer and mapping: the mapping then
    lives exactly as long as the arrays viewing it (they hold it via the
    exported memoryview chain) and finalization has nothing left to
    raise about.  Returns whether a real close happened.
    """
    try:
        shm.close()
        return True
    except BufferError:
        shm._buf = None
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            shm._fd = -1
        return False


def _destroy_block(shm) -> None:
    # Raw unlink, not shm.unlink(): the block was untracked at creation,
    # and a tracked unlink would send the resource tracker a spurious
    # second UNREGISTER for it.
    _unlink_name(shm.name)
    _quiet_close(shm)


def _unlink_name(name: str) -> bool:
    try:
        os.unlink(os.path.join(SHM_DIR, name))
        return True
    except OSError:
        return False


_SHARED_POOL: "SegmentPool | None" = None


def shared_pool() -> SegmentPool:
    """The scheduler process's pool (fresh in fork children — an
    inherited pool's blocks belong to the parent)."""
    global _SHARED_POOL
    if _SHARED_POOL is None or _SHARED_POOL._owner_pid != os.getpid():
        _SHARED_POOL = SegmentPool()
    return _SHARED_POOL


def release_segments(names) -> None:
    """Release one dispatch's pooled pins (host-side bookkeeping hook)."""
    pool = shared_pool()
    for name in names:
        pool.release(name)


def reclaim_segments() -> int:
    """Probe-close adopted mappings whose arrays have been collected."""
    return shared_pool().reclaim()


def reap_worker_segments(prefix: "str | None") -> int:
    """Reap a retired/dead worker's orphaned transfer blocks by prefix."""
    if not prefix:
        return 0
    return shared_pool().reap_prefix(prefix)


def _shutdown_shared_pool() -> None:
    if _SHARED_POOL is not None:
        _SHARED_POOL.shutdown()


atexit.register(_shutdown_shared_pool)


# ---------------------------------------------------------------------------
# The worker-side segment writer and attach cache
# ---------------------------------------------------------------------------


class SegmentWriter:
    """Creates one worker's transfer blocks, under its unique prefix.

    The worker closes its handle right after the frame is sent (the
    scheduler owns the block from adoption on), so the writer holds no
    long-lived state beyond the name sequence.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._seq = itertools.count()

    def create(self, nbytes: int):
        name = f"{self.prefix}s{next(self._seq)}"
        return name, _create_block(name, max(int(nbytes), 1))


class _AttachCache:
    """Worker-side keep-alive cache of pooled-block attachments.

    Pooled blocks are recycled across dispatches, so re-attaching by name
    on every frame would waste a map+unmap per segment; entries are
    evicted oldest-first when closable (``close()`` refuses while item
    arrays still view the mapping — those entries simply stay)."""

    def __init__(self) -> None:
        self._blocks: dict = {}

    def view(self, name: str, size: int) -> memoryview:
        shm = self._blocks.get(name)
        if shm is None:
            try:
                shm = _attach_block(name)
            except (OSError, ValueError) as error:
                raise FrameProtocolError(
                    f"pooled segment {name!r} is not attachable "
                    "(scheduler recycled it early?)"
                ) from error
            self._evict()
            self._blocks[name] = shm
        return shm.buf[:size]

    def _evict(self) -> None:
        while len(self._blocks) >= _ATTACH_CACHE_MAX:
            evicted = False
            for name in list(self._blocks):
                shm = self._blocks[name]
                try:
                    shm.close()
                except BufferError:
                    continue
                del self._blocks[name]
                evicted = True
                break
            if not evicted:
                return  # every entry still backs a live array; keep all

    def close(self) -> None:
        for shm in self._blocks.values():
            _quiet_close(shm)  # defused when item arrays are still alive
        self._blocks.clear()


# ---------------------------------------------------------------------------
# The v2 codec
# ---------------------------------------------------------------------------


def _recv_exact(conn: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = conn.recv(min(count, 1 << 20))
        if not chunk:
            raise EOFError("worker connection closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_exact_into(conn: socket.socket, view: memoryview) -> None:
    while view.nbytes:
        received = conn.recv_into(view, min(view.nbytes, 1 << 20))
        if not received:
            raise EOFError("worker connection closed")
        view = view[received:]


def _sendall_parts(conn: socket.socket, parts: list) -> None:
    """One ``sendall`` per large buffer, small parts coalesced."""
    small = bytearray()
    for part in parts:
        view = memoryview(part)
        if view.nbytes < SHM_MIN_BYTES:
            small += view
            continue
        if small:
            conn.sendall(small)
            small = bytearray()
        conn.sendall(view)
    if small:
        conn.sendall(small)


class ArrayPlaneCodec:
    """Sends and receives v2 frames on one connection.

    Args:
        role: ``"scheduler"`` or ``"worker"`` — decides which shm segment
            kind this side emits (pooled vs transfer) and accepts.
        use_shm: whether large buffers ride shared memory at all (the
            ``inline`` plane sets this False; TCP always does).
        pool: the scheduler's :class:`SegmentPool` (scheduler role only).
        writer: this worker's :class:`SegmentWriter` (worker role only).
    """

    version = 2

    def __init__(self, role: str, use_shm: bool, pool=None, writer=None) -> None:
        self.role = role
        self.use_shm = bool(use_shm)
        self.pool = pool
        self.writer = writer
        self._attached = _AttachCache() if role == "worker" else None
        self._pins: list = []

    # -- send ---------------------------------------------------------------

    def send(self, conn: socket.socket, message: tuple) -> None:
        # Pickle first: a PicklingError must surface before any bytes are
        # written (v1's torn-frame guarantee), and segment blocks are only
        # allocated once the control frame is known good.
        buffers: list = []
        control = pickle.dumps(
            message, protocol=5, buffer_callback=buffers.append
        )
        if len(buffers) > MAX_SEGMENTS_PER_FRAME:
            raise ValueError(
                f"frame with {len(buffers)} out-of-band buffers exceeds the "
                f"{MAX_SEGMENTS_PER_FRAME}-segment cap"
            )
        parts: list = [_V2_HEADER.pack(len(control), len(buffers)), control]
        pins: list = []
        transfers: list = []
        try:
            for buffer in buffers:
                raw = buffer.raw()
                placed = False
                if self.use_shm and raw.nbytes >= SHM_MIN_BYTES:
                    placed = self._place_shm(raw, parts, pins, transfers)
                if not placed:
                    parts.append(
                        _SEG_KIND.pack(_KIND_INLINE) + _SEG_SIZE.pack(raw.nbytes)
                    )
                    parts.append(raw)
            _sendall_parts(conn, parts)
        except BaseException:
            # Nothing of this frame must outlive a failed send: pooled
            # pins go back to the pool, unreceived transfer blocks are
            # unlinked (the peer never learned their names).
            for name in pins:
                self.pool.release(name)
            for shm in transfers:
                _destroy_block(shm)
            raise
        for shm in transfers:
            shm.close()  # the receiver owns the block from adoption on
        self._pins.extend(pins)

    def _place_shm(self, raw: memoryview, parts, pins, transfers) -> bool:
        """Stage one buffer as a shm segment; False → caller inlines it."""
        try:
            if self.role == "scheduler":
                name, view = self.pool.allocate(raw.nbytes)
                pins.append(name)
                kind = _KIND_POOLED
            else:
                name, shm = self.writer.create(raw.nbytes)
                transfers.append(shm)
                view = shm.buf[: raw.nbytes]
                kind = _KIND_TRANSFER
        except OSError:
            return False  # /dev/shm full or gone: degrade to inline
        view[:] = raw
        encoded = name.encode("ascii")
        parts.append(
            _SEG_KIND.pack(kind)
            + _SEG_NAMELEN.pack(len(encoded))
            + encoded
            + _SEG_SIZE.pack(raw.nbytes)
        )
        return True

    def take_pins(self) -> list:
        """Pooled names pinned by sends since the last take (host-side
        bookkeeping: released when the dispatch's reply or death event
        retires the shard)."""
        pins, self._pins = self._pins, []
        return pins

    # -- receive ------------------------------------------------------------

    def recv(self, conn: socket.socket) -> tuple:
        control_len, nseg = _V2_HEADER.unpack(
            _recv_exact(conn, _V2_HEADER.size)
        )
        _sanity_check_length(control_len, "v2 control frame")
        if nseg > MAX_SEGMENTS_PER_FRAME:
            raise FrameProtocolError(
                f"v2 frame names {nseg} segments (cap "
                f"{MAX_SEGMENTS_PER_FRAME}; corrupt stream or hostile peer)"
            )
        control = _recv_exact(conn, control_len)
        buffers = []
        for _ in range(nseg):
            (kind,) = _SEG_KIND.unpack(_recv_exact(conn, _SEG_KIND.size))
            if kind == _KIND_INLINE:
                (size,) = _SEG_SIZE.unpack(_recv_exact(conn, _SEG_SIZE.size))
                _sanity_check_length(size, "inline segment")
                block = bytearray(size)
                _recv_exact_into(conn, memoryview(block))
                buffers.append(block)
                continue
            if kind not in (_KIND_TRANSFER, _KIND_POOLED):
                raise FrameProtocolError(f"unknown v2 segment kind {kind}")
            (namelen,) = _SEG_NAMELEN.unpack(
                _recv_exact(conn, _SEG_NAMELEN.size)
            )
            name = _recv_exact(conn, namelen).decode("ascii")
            (size,) = _SEG_SIZE.unpack(_recv_exact(conn, _SEG_SIZE.size))
            _sanity_check_length(size, "shm segment")
            if kind == _KIND_TRANSFER:
                if self.role != "scheduler":
                    raise FrameProtocolError(
                        "transfer segment sent to a worker"
                    )
                buffers.append(self.pool.adopt(name, size))
            else:
                if self.role != "worker":
                    raise FrameProtocolError(
                        "pooled segment sent to the scheduler"
                    )
                buffers.append(self._attached.view(name, size))
        return pickle.loads(control, buffers=buffers)

    def close(self) -> None:
        if self._attached is not None:
            self._attached.close()


# ---------------------------------------------------------------------------
# Knob resolution and codec construction
# ---------------------------------------------------------------------------

#: Planes a v2 connection can negotiate.
PLANE_SHM = "shm"
PLANE_INLINE = "inline"

_OFF_SPELLINGS = frozenset({"off", "0", "false", "v1"})


def plane_knob() -> str:
    """The ``REPRO_TRANSPORT_SHM`` setting, normalised to
    ``auto`` / ``inline`` / ``off``."""
    raw = str(repro_env.REPRO_TRANSPORT_SHM.get()).strip().lower()
    if raw in _OFF_SPELLINGS:
        return "off"
    if raw == PLANE_INLINE:
        return PLANE_INLINE
    return "auto"


def frame_protocol_version() -> int:
    """The frame protocol this scheduler offers (1 when the knob is off)."""
    return 1 if plane_knob() == "off" else 2


def default_plane(transport_name: str) -> str:
    """The v2 plane a transport negotiates by default: shared memory for
    same-host fork workers (when available and not knobbed to inline),
    raw bytes-on-wire for TCP (the remote-ready path)."""
    if (
        transport_name == "fork"
        and plane_knob() == "auto"
        and shm_available()
    ):
        return PLANE_SHM
    return PLANE_INLINE


def scheduler_codec(version: int, plane: "str | None") -> "ArrayPlaneCodec | None":
    """The scheduler side of one negotiated connection (None = v1)."""
    if version < 2:
        return None
    return ArrayPlaneCodec(
        "scheduler", use_shm=plane == PLANE_SHM, pool=shared_pool()
    )


def worker_codec(
    version: int, plane: "str | None", prefix: "str | None"
) -> "ArrayPlaneCodec | None":
    """The worker side of one negotiated connection (None = v1)."""
    if version < 2:
        return None
    use_shm = plane == PLANE_SHM and prefix is not None
    writer = SegmentWriter(prefix) if use_shm else None
    return ArrayPlaneCodec("worker", use_shm=use_shm, writer=writer)
