"""Cluster-style sharded scene evaluation behind the execution layer.

The paper's decomposition of a scene into independently profiled,
independently baked objects makes every heavy stage embarrassingly
shardable: profile fits shard by object, bake geometry by sub-model, deploy
marching by ray chunk.  This module is the *scheduling policy* half of the
cluster execution story — the worker lifecycle (persistent daemons,
transports, death recovery) lives in :mod:`repro.exec.worker` and
:mod:`repro.exec.transport`, shared with the process backend:

* :class:`ShardPlanner` — partitions a stage's work items into
  deterministic, cost-weighted shards (longest-processing-time greedy over
  caller-supplied cost hints, oversharded a few shards per worker so the
  scheduler can balance stragglers dynamically).
* :class:`ClusterBackend` — a :class:`~repro.exec.backends.Backend` that
  executes those shards on the worker daemons of a
  :class:`~repro.exec.worker.WorkerHost`.  Daemons speak the
  length-prefixed frame protocol over a pluggable transport — a local
  socketpair by default, loopback TCP under ``REPRO_TRANSPORT=tcp`` — so
  the scheduler/worker split is exactly the one a multi-machine deployment
  needs.

Scheduling properties:

* **Deterministic results.**  Shards are pure functions of disjoint item
  subsets and results are reassembled by item index, so the output is
  bit-identical to :class:`~repro.exec.backends.SerialBackend` for any
  worker count, any shard plan and any transport.  Randomised tasks must
  draw from :func:`~repro.exec.backends.shard_rng` keyed by the *item*
  index, which makes the draw shard-count-invariant by construction.
* **Persistent daemons.**  Workers are spawned on the first map and
  **reused across maps** through the host's callable-token registry:
  consecutive maps with the same callable respawn nothing (asserted in
  ``tests/test_exec_cluster.py``), and a changed callable respawns only
  when the transport cannot ship it by pickle.
* **Store-aware placement.**  Workers share the on-disk
  :class:`~repro.exec.persist.DiskArtifactStore` (a path, so sharing across
  processes is free).  When the caller supplies per-item artifact keys,
  :func:`store_aware_costs` discounts items whose artefact is already on
  disk — a shard of store hits is a cheap shard, and the planner packs it
  accordingly instead of letting it occupy a worker that could be computing.
* **Straggler work-stealing.**  Dispatch is pull-based: a worker that
  finishes a shard immediately takes the heaviest remaining one.  When the
  queue drains while shards are still in flight, idle workers *steal*
  straggler shards by speculatively re-executing them — but only shards
  that have been running at least twice the **median** completed-shard
  duration (the MapReduce backup-task heuristic), and at most one
  duplicate per shard, so an oversubscribed host is not flooded with
  redundant work.  The baseline excludes shards the planner marked as
  store hits: their near-zero load-from-disk durations say nothing about
  how long cold compute should take, and averaging them in is exactly
  what used to trigger spurious duplicates of perfectly healthy cold
  shards.  When the map's costs came from a fitted
  :class:`~repro.exec.costmodel.StageCostModel`, each shard's predicted
  seconds additionally floor its steal age — a shard predicted to be slow
  is not a straggler for merely being slow.  First completion wins;
  duplicates are harmless because shards are pure and deterministic.
* **Retry on worker death.**  A worker that dies mid-shard (killed, OOMed,
  crashed) is detected by its connection closing; its in-flight shard is
  re-queued at the front and a replacement worker is spawned, up to a
  respawn budget.  A task *error* (the callable raising) is different: it
  is reported over the protocol and re-raised in the caller as
  :class:`ClusterTaskError`.

Per-shard worker seconds are reported through the existing
:class:`~repro.utils.timing.StageTimer` channels (``timer.add_worker``),
summing only first-accepted completions so speculative duplicates do not
inflate the stage attribution.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import time
from dataclasses import dataclass
from statistics import median

from repro.exec.backends import (
    BACKENDS,
    Backend,
    SerialBackend,
    in_worker_process,
)
from repro.exec.costmodel import StageCostModel, default_cost_model
from repro.exec.persist import DiskArtifactStore, artifact_dir_from_env
from repro.exec.worker import Shard, WorkerHost, WorkerTaskError

#: A task callable raised inside a cluster worker (remote traceback
#: attached).  The same error type the worker host raises for every
#: daemon-backed backend.
ClusterTaskError = WorkerTaskError

# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


class ShardPlanner:
    """Deterministic, cost-weighted partitioning of stage work into shards.

    Args:
        shards_per_worker: oversharding factor — more shards than workers
            lets the pull-based scheduler absorb cost-estimate error and
            worker speed variance without idling anyone.
        min_items_per_shard: floor on shard granularity, for workloads whose
            per-item dispatch overhead would otherwise dominate.

    ``plan`` is a pure function of ``(num_items, workers, costs)``: items
    are sorted by descending cost (index as the tie-break) and greedily
    assigned to the currently lightest shard (longest-processing-time
    rule, lowest shard index as the tie-break).  Two schedulers planning
    the same stage therefore derive the same shards — which is what lets a
    future multi-scheduler deployment reason about placement without a
    coordination channel.
    """

    def __init__(self, shards_per_worker: int = 3, min_items_per_shard: int = 1) -> None:
        self.shards_per_worker = max(int(shards_per_worker), 1)
        self.min_items_per_shard = max(int(min_items_per_shard), 1)

    def plan(self, num_items: int, workers: int, costs=None) -> list:
        if num_items <= 0:
            return []
        workers = max(int(workers), 1)
        num_shards = min(
            max(num_items // self.min_items_per_shard, 1),
            workers * self.shards_per_worker,
            num_items,
        )
        if costs is None:
            weights = [1.0] * num_items
        else:
            weights = [max(float(cost), 0.0) for cost in costs]
            if len(weights) != num_items:
                raise ValueError("costs must have one entry per item")

        order = sorted(range(num_items), key=lambda i: (-weights[i], i))
        heap = [(0.0, bin_index) for bin_index in range(num_shards)]
        heapq.heapify(heap)
        bins: list = [[] for _ in range(num_shards)]
        for item in order:
            load, bin_index = heapq.heappop(heap)
            bins[bin_index].append(item)
            heapq.heappush(heap, (load + weights[item], bin_index))

        shards = []
        for indices in bins:
            if not indices:
                continue
            ordered = tuple(sorted(indices))
            shards.append(
                Shard(
                    index=len(shards),
                    item_indices=ordered,
                    cost=float(sum(weights[i] for i in ordered)),
                )
            )
        return shards


def store_aware_costs(
    keys,
    store: "DiskArtifactStore | None",
    base_costs=None,
    hit_discount: float = 0.05,
    model: "StageCostModel | None" = None,
    stage: "str | None" = None,
    features=None,
) -> list:
    """Cost hints that make already-persisted artefacts cheap shards.

    Args:
        keys: one content-addressed store key (or ``None``) per item.
        store: the shared on-disk store the workers will consult; ``None``
            leaves the base costs untouched.
        base_costs: optional caller cost hints (defaults to uniform 1.0).
        hit_discount: multiplier applied to an item whose artefact is
            already on disk — the worker will load it instead of computing.
        model: optional fitted :class:`~repro.exec.costmodel.StageCostModel`;
            when it is fitted for ``stage`` and ``features`` supplies one
            feature mapping per item, its predicted seconds replace
            ``base_costs`` as the pre-discount costs (the static hints stay
            the fallback for unfitted stages).
        features: one cost-model feature mapping per item (see
            :data:`~repro.exec.costmodel.FEATURE_NAMES`).
    """
    if (
        model is not None
        and stage is not None
        and features is not None
        and model.is_fitted(stage)
    ):
        base_costs = model.predict_costs(stage, features, fallbacks=base_costs)
    costs = []
    for position, key in enumerate(keys):
        cost = 1.0 if base_costs is None else max(float(base_costs[position]), 0.0)
        if store is not None and key is not None and key in store:
            cost *= float(hit_discount)
        costs.append(cost)
    return costs


@dataclass
class ClusterStats:
    """Observable counters of one :class:`ClusterBackend`."""

    maps: int = 0
    serial_fallbacks: int = 0
    workers_spawned: int = 0
    #: Live daemons reused from the persistent fleet at map start, summed
    #: over maps — the per-map fork overhead the token registry eliminates.
    workers_reused: int = 0
    #: Maps served entirely by reused daemons (zero spawns).
    maps_reusing_daemons: int = 0
    #: Task tokens installed on the host (first map = 1; +1 per callable
    #: change; a re-registration without respawn still counts).
    task_registrations: int = 0
    shards_planned: int = 0
    shards_dispatched: int = 0
    speculative_dispatches: int = 0
    worker_deaths: int = 0
    shards_requeued: int = 0
    store_cheap_items: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# The cluster backend
# ---------------------------------------------------------------------------


class ClusterBackend(Backend):
    """Sharded execution over the worker host's persistent daemons.

    Implements the ordered-map :class:`~repro.exec.backends.Backend`
    contract — ``map(fn, items)`` returns ``[fn(item) for item in items]``
    bit-identically to the serial reference — while executing shard-wise on
    ``workers`` daemons.  The backend itself is a pure scheduler: shard
    planning (:class:`ShardPlanner`), store-aware cost hints and the
    straggler-steal policy live here; spawning, reuse, death recovery and
    transport live in the shared :class:`~repro.exec.worker.WorkerHost`.
    See the module docstring for the scheduling properties.

    Args:
        workers: worker daemon count (``None`` = host CPU count).
        planner: shard planner (a default :class:`ShardPlanner` if omitted).
        store: shared :class:`~repro.exec.persist.DiskArtifactStore` used
            for store-aware cost hints and consulted by store-integrated
            tasks; ``None`` builds one from ``$REPRO_ARTIFACT_DIR`` when
            that is set (matching the pipeline's own persistence opt-in).
        max_respawns: per-map budget of replacement workers after deaths;
            ``None`` scales with the worker count.
        speculate: enable speculative re-execution of straggler shards.
        transport: worker transport (name or instance); ``None`` consults
            ``REPRO_TRANSPORT`` and defaults to socketpair+fork.
        cost_model: measured :class:`~repro.exec.costmodel.StageCostModel`
            consulted when a map carries ``cost_stage``/``cost_features``
            hints; ``None`` builds the environment-configured default
            (fitted from ``$REPRO_COST_DIR`` when set, otherwise unfitted
            so every plan falls back to the caller's static hints).

    Falls back to the serial loop exactly like the process backend: single
    worker, single item, platforms where the transport cannot launch
    workers, or when called from inside a worker daemon.
    """

    name = "cluster"
    accepts_transport = True
    #: Callers may pass ``costs=`` / ``cost_keys=`` hints to :meth:`map`.
    supports_cost_hints = True
    #: Pipeline stages should shard whole objects through this backend (the
    #: profile stage fans out per object rather than per sample config).
    shards_objects = True

    def __init__(
        self,
        workers: "int | None" = None,
        planner: "ShardPlanner | None" = None,
        store: "DiskArtifactStore | None" = None,
        max_respawns: "int | None" = None,
        speculate: bool = True,
        transport=None,
        cost_model: "StageCostModel | None" = None,
    ) -> None:
        default = os.cpu_count() or 1
        self.workers = max(int(workers) if workers is not None else default, 1)
        self.planner = planner or ShardPlanner()
        if store is None:
            directory = artifact_dir_from_env()
            store = DiskArtifactStore(directory) if directory else None
        self.store = store
        self.speculate = bool(speculate)
        self.cost_model = cost_model if cost_model is not None else default_cost_model()
        #: Per-shard ``(shard_index, wall seconds)`` of the most recent
        #: map's first-accepted completions — the measured durations a
        #: caller can fold back into cost-model trajectories.
        self.last_accepted_durations: list = []
        self.host = WorkerHost(
            transport=transport, workers=self.workers, max_respawns=max_respawns
        )
        self.max_respawns = self.host.max_respawns
        self.stats = ClusterStats()

    @property
    def transport(self):
        """The worker transport the backend's host speaks."""
        return self.host.transport

    def shutdown(self) -> None:
        """Reap the persistent daemons (idempotent, thread-safe)."""
        self.host.shutdown()

    def describe(self) -> str:
        return f"{self.name}({self.workers},{self.transport.name})"

    # -- the steal policy ----------------------------------------------------

    @staticmethod
    def _steal_candidate(
        view,
        worker_id: int,
        cheap_shards: frozenset = frozenset(),
        predicted_seconds: "dict | None" = None,
    ):
        """Backup-task heuristic: steal only a shard whose single active
        attempt has outlived twice the *median* completed duration, and
        never run more than one duplicate.

        The baseline median excludes ``cheap_shards`` (shards the planner
        marked as store hits): a shard served from disk completes in
        near-zero time, and folding those durations into the baseline — as
        the original mean-of-everything did — collapses the threshold and
        duplicates perfectly healthy cold shards.  The median (not the
        mean) keeps the remaining baseline robust to the occasional
        outlier completion.  ``predicted_seconds`` (per shard index, from
        a fitted cost model) floors each candidate's steal age at twice
        its own prediction, so work *predicted* slow is not treated as
        straggling for running exactly as long as predicted.  Without any
        comparable completed shard there is no baseline, so nothing is
        stolen yet."""
        durations = [
            seconds
            for shard_index, seconds in view.completed_durations
            if shard_index not in cheap_shards
        ]
        if not durations:
            return None
        threshold = max(2.0 * median(durations), 0.05)
        now = time.perf_counter()
        best = None
        best_age = 0.0
        for index, running in view.in_flight.items():
            if index in view.completed or len(running) != 1:
                continue
            if worker_id in running:
                continue
            (runner,) = running
            age = now - view.dispatch_started.get((index, runner), now)
            floor = threshold
            if predicted_seconds is not None:
                floor = max(floor, 2.0 * float(predicted_seconds.get(index, 0.0)))
            if age >= floor and age > best_age:
                best, best_age = view.shard_by_index[index], age
        return best

    # -- the map -------------------------------------------------------------

    def map(
        self,
        fn,
        items,
        timer=None,
        stage=None,
        costs=None,
        cost_keys=None,
        cost_stage=None,
        cost_features=None,
    ) -> list:
        items = list(items)
        if (
            self.workers <= 1
            or len(items) <= 1
            or not self.host.available()
            or in_worker_process()
        ):
            self.stats.serial_fallbacks += 1
            return SerialBackend().map(fn, items, timer=timer, stage=stage)
        model_costs = (
            cost_stage is not None
            and cost_features is not None
            and len(cost_features) == len(items)
            and self.cost_model.is_fitted(cost_stage)
        )
        if model_costs:
            costs = self.cost_model.predict_costs(
                cost_stage, cost_features, fallbacks=costs
            )
        cheap_positions = frozenset()
        if cost_keys is not None:
            before = costs
            costs = store_aware_costs(cost_keys, self.store, base_costs=costs)
            if self.store is not None:
                cheap_positions = frozenset(
                    position
                    for position, cost in enumerate(costs)
                    if cost < (1.0 if before is None else float(before[position]))
                )
                self.stats.store_cheap_items += len(cheap_positions)
        shards = self.planner.plan(len(items), self.workers, costs)
        self.stats.shards_planned += len(shards)
        # Shards made entirely of store hits are excluded from the steal
        # baseline, and model-predicted shard seconds floor steal ages —
        # see :meth:`_steal_candidate`.
        cheap_shards = frozenset(
            shard.index
            for shard in shards
            if shard.item_indices
            and all(position in cheap_positions for position in shard.item_indices)
        )
        predicted_seconds = (
            {shard.index: shard.cost for shard in shards} if model_costs else None
        )
        steal = None
        if self.speculate:
            def steal(view, worker_id, *,
                      _cheap=cheap_shards, _predicted=predicted_seconds):
                return ClusterBackend._steal_candidate(
                    view, worker_id,
                    cheap_shards=_cheap, predicted_seconds=_predicted,
                )
        results, report = self.host.run(
            fn,
            items,
            shards,
            steal=steal,
        )
        self.last_accepted_durations = list(report.accepted_durations)
        self.stats.maps += 1
        self.stats.workers_spawned += report.spawned
        self.stats.workers_reused += report.reused_workers
        if report.reused_workers and not report.spawned:
            self.stats.maps_reusing_daemons += 1
        if report.task_registered:
            self.stats.task_registrations += 1
        self.stats.shards_dispatched += report.dispatched
        self.stats.speculative_dispatches += report.speculative
        self.stats.worker_deaths += report.deaths
        self.stats.shards_requeued += report.requeued
        if timer is not None and stage is not None:
            timer.add_worker(stage, report.accepted_seconds)
        return results


BACKENDS[ClusterBackend.name] = ClusterBackend
