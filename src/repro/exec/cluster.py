"""Cluster-style sharded scene evaluation behind the execution layer.

The paper's decomposition of a scene into independently profiled,
independently baked objects makes every heavy stage embarrassingly
shardable: profile fits shard by object, bake geometry by sub-model, deploy
marching by ray chunk.  This module supplies the two pieces that turn the
single-host fork pool of :class:`~repro.exec.backends.ProcessBackend` into
a cluster-shaped execution story:

* :class:`ShardPlanner` — partitions a stage's work items into
  deterministic, cost-weighted shards (longest-processing-time greedy over
  caller-supplied cost hints, oversharded a few shards per worker so the
  scheduler can balance stragglers dynamically).
* :class:`ClusterBackend` — a :class:`~repro.exec.backends.Backend` that
  executes those shards on a set of worker daemons.  Workers are spawned
  subprocesses that speak a small length-prefixed message protocol over a
  socket pair, so the scheduler/worker split is exactly the one a
  multi-machine deployment needs — only the transport (a local socketpair
  and a fork) is single-host today.

Scheduling properties:

* **Deterministic results.**  Shards are pure functions of disjoint item
  subsets and results are reassembled by item index, so the output is
  bit-identical to :class:`~repro.exec.backends.SerialBackend` for any
  worker count and any shard plan.  Randomised tasks must draw from
  :func:`~repro.exec.backends.shard_rng` keyed by the *item* index, which
  makes the draw shard-count-invariant by construction.
* **Store-aware placement.**  Workers share the on-disk
  :class:`~repro.exec.persist.DiskArtifactStore` (a path, so sharing across
  processes is free).  When the caller supplies per-item artifact keys,
  :func:`store_aware_costs` discounts items whose artefact is already on
  disk — a shard of store hits is a cheap shard, and the planner packs it
  accordingly instead of letting it occupy a worker that could be computing.
* **Straggler work-stealing.**  Dispatch is pull-based: a worker that
  finishes a shard immediately takes the heaviest remaining one.  When the
  queue drains while shards are still in flight, idle workers *steal*
  straggler shards by speculatively re-executing them — but only shards
  that have been running at least twice the average completed-shard
  duration (the MapReduce backup-task heuristic), and at most one
  duplicate per shard, so an oversubscribed host is not flooded with
  redundant work.  First completion wins; duplicates are harmless because
  shards are pure and deterministic.
* **Retry on worker death.**  A worker that dies mid-shard (killed, OOMed,
  crashed) is detected by its connection closing; its in-flight shard is
  re-queued at the front and a replacement worker is forked, up to a
  respawn budget.  A task *error* (the callable raising) is different: it
  is reported over the protocol and re-raised in the caller.

Per-shard worker seconds are reported through the existing
:class:`~repro.utils.timing.StageTimer` channels (``timer.add_worker``),
summing only first-accepted completions so speculative duplicates do not
inflate the stage attribution.

Workers are forked per ``map`` call (single-item and single-worker maps
fall back inline, so small render maps never pay a fork).  Keeping daemons
alive across maps — the fork pool's token registry applied to this
protocol — is the known next optimisation; see ROADMAP.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import multiprocessing
import os
import pickle
import selectors
import socket
import struct
import time
import traceback
from collections import deque
from dataclasses import dataclass

from repro.exec.backends import (
    BACKENDS,
    Backend,
    SerialBackend,
    _FORK_LOCK,
    fork_available,
    in_worker_process,
)
from repro.exec.persist import DiskArtifactStore, artifact_dir_from_env

# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: a subset of item indices and its cost estimate."""

    index: int
    item_indices: tuple
    cost: float


class ShardPlanner:
    """Deterministic, cost-weighted partitioning of stage work into shards.

    Args:
        shards_per_worker: oversharding factor — more shards than workers
            lets the pull-based scheduler absorb cost-estimate error and
            worker speed variance without idling anyone.
        min_items_per_shard: floor on shard granularity, for workloads whose
            per-item dispatch overhead would otherwise dominate.

    ``plan`` is a pure function of ``(num_items, workers, costs)``: items
    are sorted by descending cost (index as the tie-break) and greedily
    assigned to the currently lightest shard (longest-processing-time
    rule, lowest shard index as the tie-break).  Two schedulers planning
    the same stage therefore derive the same shards — which is what lets a
    future multi-scheduler deployment reason about placement without a
    coordination channel.
    """

    def __init__(self, shards_per_worker: int = 3, min_items_per_shard: int = 1) -> None:
        self.shards_per_worker = max(int(shards_per_worker), 1)
        self.min_items_per_shard = max(int(min_items_per_shard), 1)

    def plan(self, num_items: int, workers: int, costs=None) -> list:
        if num_items <= 0:
            return []
        workers = max(int(workers), 1)
        num_shards = min(
            max(num_items // self.min_items_per_shard, 1),
            workers * self.shards_per_worker,
            num_items,
        )
        if costs is None:
            weights = [1.0] * num_items
        else:
            weights = [max(float(cost), 0.0) for cost in costs]
            if len(weights) != num_items:
                raise ValueError("costs must have one entry per item")

        order = sorted(range(num_items), key=lambda i: (-weights[i], i))
        heap = [(0.0, bin_index) for bin_index in range(num_shards)]
        heapq.heapify(heap)
        bins: list = [[] for _ in range(num_shards)]
        for item in order:
            load, bin_index = heapq.heappop(heap)
            bins[bin_index].append(item)
            heapq.heappush(heap, (load + weights[item], bin_index))

        shards = []
        for indices in bins:
            if not indices:
                continue
            ordered = tuple(sorted(indices))
            shards.append(
                Shard(
                    index=len(shards),
                    item_indices=ordered,
                    cost=float(sum(weights[i] for i in ordered)),
                )
            )
        return shards


def store_aware_costs(
    keys, store: "DiskArtifactStore | None", base_costs=None, hit_discount: float = 0.05
) -> list:
    """Cost hints that make already-persisted artefacts cheap shards.

    Args:
        keys: one content-addressed store key (or ``None``) per item.
        store: the shared on-disk store the workers will consult; ``None``
            leaves the base costs untouched.
        base_costs: optional caller cost model (defaults to uniform 1.0).
        hit_discount: multiplier applied to an item whose artefact is
            already on disk — the worker will load it instead of computing.
    """
    costs = []
    for position, key in enumerate(keys):
        cost = 1.0 if base_costs is None else max(float(base_costs[position]), 0.0)
        if store is not None and key is not None and key in store:
            cost *= float(hit_discount)
        costs.append(cost)
    return costs


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------
#
# Messages are pickled tuples behind an 8-byte little-endian length prefix.
# Scheduler -> worker:   ("shard", shard_index, item_indices) | ("stop",)
# Worker -> scheduler:   ("done", shard_index, elapsed, results)
#                      | ("fail", shard_index, traceback_text)
#
# The callable and the item list never cross the wire: workers inherit them
# by fork memory image (closures over scenes, SDF lambdas and lazy textures
# all work), and a shard dispatch names only item *indices*.  Results are
# pickled — the same contract as the fork pool.

_FRAME_HEADER = struct.Struct("<Q")


def _send_message(conn: socket.socket, message: tuple) -> None:
    # Pickle first: a PicklingError must surface before any bytes are
    # written, so a failed send never leaves a torn frame on the stream.
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    conn.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_exact(conn: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = conn.recv(min(count, 1 << 20))
        if not chunk:
            raise EOFError("cluster connection closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_message(conn: socket.socket) -> tuple:
    (length,) = _FRAME_HEADER.unpack(_recv_exact(conn, _FRAME_HEADER.size))
    return pickle.loads(_recv_exact(conn, length))


#: Task state inherited by forked cluster workers.  Assigned (and cleared)
#: under ``backends._FORK_LOCK`` for the whole map, so a replacement worker
#: forked mid-map after a death still inherits this map's task.
_CLUSTER_FN = None
_CLUSTER_ITEMS: "list | None" = None


def _worker_main(conn: socket.socket) -> None:
    """Daemon loop of one cluster worker: execute shards until told to stop."""
    try:
        while True:
            try:
                message = _recv_message(conn)
            except (EOFError, OSError):
                return  # scheduler went away
            if message[0] == "stop":
                return
            _, shard_index, item_indices = message
            start = time.perf_counter()
            try:
                results = [_CLUSTER_FN(_CLUSTER_ITEMS[i]) for i in item_indices]
                elapsed = time.perf_counter() - start
                reply = ("done", shard_index, elapsed, results)
            except BaseException:
                reply = ("fail", shard_index, traceback.format_exc())
            try:
                _send_message(conn, reply)
            except Exception:
                # Unpicklable results: report the failure instead of dying
                # silently (the fallback message is always picklable).
                try:
                    _send_message(conn, ("fail", shard_index, traceback.format_exc()))
                except Exception:
                    return
    finally:
        conn.close()


class ClusterTaskError(RuntimeError):
    """A task callable raised inside a cluster worker (remote traceback attached)."""


class _WorkerHandle:
    """Scheduler-side bookkeeping for one live worker daemon."""

    __slots__ = ("worker_id", "process", "conn", "shard")

    def __init__(self, worker_id: int, process, conn: socket.socket) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.shard: "Shard | None" = None


@dataclass
class ClusterStats:
    """Observable counters of one :class:`ClusterBackend`."""

    maps: int = 0
    serial_fallbacks: int = 0
    workers_spawned: int = 0
    shards_planned: int = 0
    shards_dispatched: int = 0
    speculative_dispatches: int = 0
    worker_deaths: int = 0
    shards_requeued: int = 0
    store_cheap_items: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# The cluster backend
# ---------------------------------------------------------------------------


class ClusterBackend(Backend):
    """Sharded execution over worker daemons speaking the frame protocol.

    Implements the ordered-map :class:`~repro.exec.backends.Backend`
    contract — ``map(fn, items)`` returns ``[fn(item) for item in items]``
    bit-identically to the serial reference — while executing shard-wise on
    ``workers`` forked daemons.  See the module docstring for the
    scheduling properties (determinism, store-aware placement, straggler
    stealing, death retry).

    Args:
        workers: worker daemon count (``None`` = host CPU count).
        planner: shard planner (a default :class:`ShardPlanner` if omitted).
        store: shared :class:`~repro.exec.persist.DiskArtifactStore` used
            for store-aware cost hints and consulted by store-integrated
            tasks; ``None`` builds one from ``$REPRO_ARTIFACT_DIR`` when
            that is set (matching the pipeline's own persistence opt-in).
        max_respawns: extra workers the scheduler may fork to replace dead
            ones before giving up; ``None`` scales with the worker count.
        speculate: enable speculative re-execution of straggler shards.

    Falls back to the serial loop exactly like the fork pool: single
    worker, single item, fork-less platforms, or when called from inside a
    worker process (daemons must not fork).
    """

    name = "cluster"
    #: Callers may pass ``costs=`` / ``cost_keys=`` hints to :meth:`map`.
    supports_cost_hints = True
    #: Pipeline stages should shard whole objects through this backend (the
    #: profile stage fans out per object rather than per sample config).
    shards_objects = True

    def __init__(
        self,
        workers: "int | None" = None,
        planner: "ShardPlanner | None" = None,
        store: "DiskArtifactStore | None" = None,
        max_respawns: "int | None" = None,
        speculate: bool = True,
    ) -> None:
        default = os.cpu_count() or 1
        self.workers = max(int(workers) if workers is not None else default, 1)
        self.planner = planner or ShardPlanner()
        if store is None:
            directory = artifact_dir_from_env()
            store = DiskArtifactStore(directory) if directory else None
        self.store = store
        self.max_respawns = (
            2 * self.workers + 2 if max_respawns is None else max(int(max_respawns), 0)
        )
        self.speculate = bool(speculate)
        self.stats = ClusterStats()

    def map(
        self,
        fn,
        items,
        timer=None,
        stage=None,
        costs=None,
        cost_keys=None,
    ) -> list:
        items = list(items)
        if (
            self.workers <= 1
            or len(items) <= 1
            or not fork_available()
            or in_worker_process()
        ):
            self.stats.serial_fallbacks += 1
            return SerialBackend().map(fn, items, timer=timer, stage=stage)
        if cost_keys is not None:
            before = costs
            costs = store_aware_costs(cost_keys, self.store, base_costs=costs)
            if self.store is not None:
                self.stats.store_cheap_items += sum(
                    1
                    for position, cost in enumerate(costs)
                    if cost < (1.0 if before is None else float(before[position]))
                )
        global _CLUSTER_FN, _CLUSTER_ITEMS
        # One lock for every fork in the execution layer: the inherited
        # globals must stay stable for the whole map (replacement workers
        # forked after a death must still see this map's task).
        with _FORK_LOCK:
            _CLUSTER_FN, _CLUSTER_ITEMS = fn, items
            try:
                shards = self.planner.plan(len(items), self.workers, costs)
                self.stats.shards_planned += len(shards)
                results, worker_seconds = self._run_cluster(len(items), shards)
            finally:
                _CLUSTER_FN, _CLUSTER_ITEMS = None, None
        self.stats.maps += 1
        if timer is not None and stage is not None:
            timer.add_worker(stage, worker_seconds)
        return results

    # -- the scheduler -------------------------------------------------------

    def _run_cluster(self, num_items: int, shards: list) -> tuple:
        """Execute planned shards on worker daemons; return ordered results."""
        context = multiprocessing.get_context("fork")
        dispatch_order = sorted(shards, key=lambda shard: (-shard.cost, shard.index))
        pending = deque(dispatch_order)
        completed: dict = {}
        in_flight: dict = {shard.index: set() for shard in shards}
        shard_by_index = {shard.index: shard for shard in shards}
        workers: dict = {}
        worker_ids = itertools.count()
        respawn_budget = self.max_respawns
        selector = selectors.DefaultSelector()
        accepted_seconds = 0.0
        failure: "ClusterTaskError | None" = None
        dispatch_started: dict = {}  # (shard index, worker id) -> perf_counter
        completed_durations: list = []  # wall seconds of accepted completions

        def spawn_worker() -> _WorkerHandle:
            parent_conn, child_conn = socket.socketpair()
            process = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            handle = _WorkerHandle(next(worker_ids), process, parent_conn)
            workers[handle.worker_id] = handle
            selector.register(parent_conn, selectors.EVENT_READ, handle)
            self.stats.workers_spawned += 1
            return handle

        def steal_candidate(handle: _WorkerHandle) -> "Shard | None":
            # Backup-task heuristic: steal only a shard whose single active
            # attempt has outlived twice the average completed duration, and
            # never run more than one duplicate.  Without completed shards
            # there is no baseline, so nothing is stolen yet.
            if not completed_durations:
                return None
            threshold = max(
                2.0 * (sum(completed_durations) / len(completed_durations)), 0.05
            )
            now = time.perf_counter()
            best = None
            best_age = threshold
            for index, running in in_flight.items():
                if index in completed or len(running) != 1:
                    continue
                if handle.worker_id in running:
                    continue
                (runner,) = running
                age = now - dispatch_started.get((index, runner), now)
                if age >= best_age:
                    best, best_age = shard_by_index[index], age
            return best

        def dispatch(handle: _WorkerHandle) -> None:
            shard = None
            speculative = False
            if pending:
                shard = pending.popleft()
            elif self.speculate:
                shard = steal_candidate(handle)
                speculative = shard is not None
            if shard is None:
                handle.shard = None
                return
            handle.shard = shard
            in_flight[shard.index].add(handle.worker_id)
            dispatch_started[(shard.index, handle.worker_id)] = time.perf_counter()
            try:
                _send_message(handle.conn, ("shard", shard.index, shard.item_indices))
            except OSError:
                # The worker died while idle (its EOF may still be queued in
                # the selector); requeue the shard and repair the pool
                # instead of crashing the map.
                handle_worker_death(handle)
                return
            self.stats.shards_dispatched += 1
            if speculative:
                self.stats.speculative_dispatches += 1

        def retire(handle: _WorkerHandle, requeue: bool) -> None:
            if handle.worker_id not in workers:
                return  # already retired (e.g. send failure then EOF event)
            selector.unregister(handle.conn)
            handle.conn.close()
            workers.pop(handle.worker_id, None)
            shard = handle.shard
            if shard is None:
                return
            in_flight[shard.index].discard(handle.worker_id)
            dispatch_started.pop((shard.index, handle.worker_id), None)
            if (
                requeue
                and shard.index not in completed
                and not in_flight[shard.index]
                and shard not in pending
            ):
                pending.appendleft(shard)  # lost work runs next
                self.stats.shards_requeued += 1

        def feed_idle_workers() -> None:
            for handle in list(workers.values()):
                if not pending:
                    break
                if handle.shard is None:
                    dispatch(handle)

        def handle_worker_death(handle: _WorkerHandle) -> None:
            # Shared by the EOF path and the dispatch send-failure path:
            # requeue the lost shard, fork a replacement within budget (so
            # the pool holds its configured width instead of shrinking for
            # the rest of the map), and put any idle workers back to work.
            nonlocal respawn_budget
            if handle.worker_id not in workers:
                return  # both paths fired for the same death
            self.stats.worker_deaths += 1
            retire(handle, requeue=True)
            handle.process.join(timeout=0.5)
            if len(completed) < len(shards) and respawn_budget > 0:
                respawn_budget -= 1
                dispatch(spawn_worker())
            feed_idle_workers()

        try:
            for _ in range(min(self.workers, len(shards))):
                dispatch(spawn_worker())

            while len(completed) < len(shards) and failure is None:
                while not workers:
                    if respawn_budget <= 0:
                        raise RuntimeError(
                            "cluster backend: all workers died and the respawn "
                            f"budget ({self.max_respawns}) is exhausted"
                        )
                    respawn_budget -= 1
                    dispatch(spawn_worker())
                idle = [
                    handle for handle in workers.values() if handle.shard is None
                ]
                events = selector.select(timeout=0.05 if idle else 5.0)
                if not events:
                    # Idle workers re-check the steal threshold as in-flight
                    # shards age into stragglers.
                    for handle in idle:
                        dispatch(handle)
                    continue
                for key, _ in events:
                    handle = key.data
                    if handle.worker_id not in workers:
                        continue  # retired earlier in this same event batch
                    try:
                        message = _recv_message(handle.conn)
                    except (EOFError, OSError):
                        # Worker death (killed, crashed, OOMed): requeue its
                        # shard and fork a replacement within budget.
                        handle_worker_death(handle)
                        continue
                    kind = message[0]
                    if kind == "done":
                        _, shard_index, elapsed, results = message
                        in_flight[shard_index].discard(handle.worker_id)
                        started = dispatch_started.pop(
                            (shard_index, handle.worker_id), None
                        )
                        if shard_index not in completed:
                            completed[shard_index] = results
                            accepted_seconds += float(elapsed)
                            if started is not None:
                                completed_durations.append(
                                    time.perf_counter() - started
                                )
                        handle.shard = None
                        dispatch(handle)
                    elif kind == "fail":
                        _, shard_index, trace = message
                        in_flight[shard_index].discard(handle.worker_id)
                        dispatch_started.pop(
                            (shard_index, handle.worker_id), None
                        )
                        if shard_index in completed or in_flight[shard_index]:
                            # A duplicated attempt failed (e.g. memory
                            # pressure from running the shard twice) while
                            # the shard was already delivered — or still has
                            # a live sibling attempt that may deliver it.
                            # Not (yet) a map failure.
                            handle.shard = None
                            dispatch(handle)
                            continue
                        failure = ClusterTaskError(
                            "task failed in cluster worker:\n" + trace
                        )
                        break
                    else:  # pragma: no cover - protocol violation
                        failure = ClusterTaskError(
                            f"unexpected cluster message {message[0]!r}"
                        )
                        break
            if failure is not None:
                raise failure
        finally:
            for handle in list(workers.values()):
                try:
                    _send_message(handle.conn, ("stop",))
                except OSError:
                    pass
                handle.conn.close()
            selector.close()
            for handle in list(workers.values()):
                handle.process.join(timeout=0.2)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)

        ordered = [None] * num_items
        for shard in shards:
            shard_results = completed[shard.index]
            for item_index, value in zip(shard.item_indices, shard_results):
                ordered[item_index] = value
        return ordered, accepted_seconds


BACKENDS[ClusterBackend.name] = ClusterBackend
