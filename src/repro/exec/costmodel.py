"""A measured per-stage cost model for shard planning and stealing.

The :class:`~repro.exec.cluster.ShardPlanner` and the pipeline's stage
hints have so far planned from *static* proxies — ``g^3`` voxel work for a
bake, sample counts for a profile fit.  Those proxies rank small workloads
correctly but drift as soon as a stage's constant factors dominate (store
round-trips, texture assembly, simulator traces).  Meanwhile every
benchmark session already emits a ``BENCH_<suite>.json`` trajectory with
measured per-stage wall clocks; this module closes the loop by fitting a
small deterministic regression over those trajectories:

* :class:`CostSample` — one measured row: a stage name, a feature mapping
  (object count, candidate count, ``g^3``, chunk rays) and the observed
  seconds.
* :class:`StageCostModel` — per-stage ridge least squares over the
  canonical :data:`FEATURE_NAMES` columns, solved by normal equations
  (``numpy.linalg.solve`` on a symmetric system — no iterative solver, no
  tolerance knobs, so the same samples always produce the same
  coefficients).  :meth:`~StageCostModel.predict` falls back to the
  caller's static hint for any stage without fitted history — the model
  *refines* planning, it never gates it.
* :func:`load_bench_samples` / :func:`fit_from_bench_dir` — read the
  ``metrics.pipeline.stage_samples`` rows out of accumulated
  ``BENCH_*.json`` files (sorted by filename, so fitting order — and hence
  the fit — is invocation-order-independent).
* :func:`rank_concordance` — the pairwise rank-agreement score the test
  tier uses to assert that fitted predictions order held-out rows at least
  as well as the static hints they replace.

Predictions are *seconds*, so they are directly comparable with the
measured shard durations the worker host reports
(:class:`~repro.exec.worker.HostRunReport.accepted_durations`) and can
floor the straggler-steal age threshold (see
:meth:`repro.exec.cluster.ClusterBackend._steal_candidate`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.config import env as repro_env

#: Canonical feature columns, in design-matrix order.  Every sample may
#: supply any subset; missing features are zero (an absent workload axis,
#: not missing data).
FEATURE_NAMES = ("objects", "candidates", "g_cubed", "rays")

#: Ridge weight of the normal equations — just enough to keep rank-deficient
#: trajectories (e.g. every sample from one scene size) solvable without
#: visibly biasing a well-conditioned fit.
_RIDGE = 1e-6

#: Floor on predictions: a fitted plane can dip below zero outside its
#: training range, and a non-positive cost would corrupt LPT planning.
_MIN_PREDICTION = 1e-6


@dataclass(frozen=True)
class CostSample:
    """One measured trajectory row: ``stage`` took ``seconds`` on a workload
    described by ``features`` (a mapping over :data:`FEATURE_NAMES`)."""

    stage: str
    features: tuple
    seconds: float

    @classmethod
    def make(cls, stage: str, features: dict, seconds: float) -> "CostSample":
        """Build a sample from a feature mapping (canonical column order)."""
        row = tuple(
            float(features.get(name, 0.0)) for name in FEATURE_NAMES
        )
        return cls(stage=str(stage), features=row, seconds=float(seconds))

    def as_dict(self) -> dict:
        """The trajectory-file rendering of this sample."""
        return {
            "stage": self.stage,
            "features": {
                name: value
                for name, value in zip(FEATURE_NAMES, self.features)
                if value != 0.0
            },
            "seconds": self.seconds,
        }


@dataclass
class StageCostModel:
    """Per-stage linear seconds model with static-hint fallback.

    ``coefficients`` maps a stage name to the fitted weight vector
    ``(intercept, *FEATURE_NAMES)``.  An unfitted stage predicts the
    caller-supplied fallback, so wiring the model into a planner is always
    safe: with no history the plan is exactly the static-hint plan.
    """

    coefficients: dict = field(default_factory=dict)

    def is_fitted(self, stage: str) -> bool:
        return stage in self.coefficients

    @property
    def stages(self) -> list:
        """Fitted stage names, sorted (deterministic presentation order)."""
        return sorted(self.coefficients)

    def fit(self, samples) -> "StageCostModel":
        """Fit one ridge least-squares plane per stage; returns ``self``.

        Stages are fitted independently from their own samples; a stage
        with fewer samples than coefficients still solves (the ridge term
        regularises the normal equations) but extrapolates accordingly.
        Column scaling by each feature's maximum magnitude keeps ``g^3``
        (thousands) and object counts (single digits) on comparable
        footing, and is undone when the coefficients are stored, so
        :meth:`predict` works on raw features.
        """
        by_stage: dict = {}
        for sample in samples:
            by_stage.setdefault(sample.stage, []).append(sample)
        coefficients: dict = {}
        width = 1 + len(FEATURE_NAMES)
        for stage in sorted(by_stage):
            rows = by_stage[stage]
            design = np.ones((len(rows), width), dtype=np.float64)
            target = np.empty(len(rows), dtype=np.float64)
            for position, sample in enumerate(rows):
                design[position, 1:] = sample.features
                target[position] = sample.seconds
            scale = np.maximum(np.max(np.abs(design), axis=0), 1.0)
            scaled = design / scale
            gram = scaled.T @ scaled + _RIDGE * np.eye(width)
            weights = np.linalg.solve(gram, scaled.T @ target)
            coefficients[stage] = tuple(float(w) for w in weights / scale)
        self.coefficients = coefficients
        return self

    def predict(self, stage: str, features: dict, fallback: float = 1.0) -> float:
        """Predicted seconds of ``stage`` on ``features``; the fallback (a
        static hint) when the stage has no fitted history."""
        weights = self.coefficients.get(stage)
        if weights is None:
            return float(fallback)
        total = weights[0]
        for position, name in enumerate(FEATURE_NAMES):
            total += weights[1 + position] * float(features.get(name, 0.0))
        return max(float(total), _MIN_PREDICTION)

    def predict_costs(self, stage: str, feature_rows, fallbacks=None) -> list:
        """Vector form of :meth:`predict` for one map's items."""
        costs = []
        for position, features in enumerate(feature_rows):
            fallback = 1.0 if fallbacks is None else float(fallbacks[position])
            costs.append(self.predict(stage, features, fallback=fallback))
        return costs

    def state_tuple(self) -> tuple:
        """Canonical fitted state, for determinism assertions."""
        return tuple(
            (stage, self.coefficients[stage]) for stage in sorted(self.coefficients)
        )


def rank_concordance(predicted, actual) -> float:
    """Fraction of strictly ordered ``actual`` pairs that ``predicted``
    orders the same way (a Kendall-style concordance in ``[0, 1]``).

    This is the planner-relevant score: LPT packing consumes only the
    *ordering* of the costs, so a cost model earns its keep exactly when it
    ranks workloads better than the static hints did.
    """
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual must have one entry per row")
    pairs = 0
    concordant = 0
    for i in range(len(actual)):
        for j in range(i + 1, len(actual)):
            if actual[i] == actual[j]:
                continue
            pairs += 1
            if (predicted[i] - predicted[j]) * (actual[i] - actual[j]) > 0:
                concordant += 1
    return concordant / pairs if pairs else 1.0


# ---------------------------------------------------------------------------
# Trajectory ingestion (BENCH_<suite>.json)
# ---------------------------------------------------------------------------


def load_bench_samples(payload: dict) -> list:
    """Extract :class:`CostSample` rows from one trajectory payload.

    The benchmarks conftest publishes measured stage rows under
    ``metrics.pipeline.stage_samples``; payloads without that channel (the
    kernel or figure suites) contribute nothing.  Malformed rows are
    skipped rather than fatal — trajectories are advisory history, and one
    corrupt archive must not break planning.
    """
    metrics = payload.get("metrics") or {}
    pipeline = metrics.get("pipeline") or {}
    samples = []
    for row in pipeline.get("stage_samples") or []:
        try:
            samples.append(
                CostSample.make(
                    row["stage"], dict(row.get("features") or {}), row["seconds"]
                )
            )
        except (KeyError, TypeError, ValueError):
            continue
    return samples


def fit_from_bench_dir(directory: str) -> StageCostModel:
    """Fit a model from every ``BENCH_*.json`` under ``directory``.

    Files are read in sorted filename order and unreadable or non-JSON
    files are skipped, so the fit is a deterministic function of the
    directory's readable trajectory contents.  Returns an unfitted (pure
    fallback) model when the directory holds no usable samples.
    """
    samples: list = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            samples.extend(load_bench_samples(payload))
    model = StageCostModel()
    if samples:
        model.fit(samples)
    return model


def default_cost_model() -> StageCostModel:
    """The environment-configured model: fitted from ``$REPRO_COST_DIR``'s
    accumulated trajectories when that is set, otherwise unfitted (every
    prediction falls back to the caller's static hint)."""
    directory = repro_env.REPRO_COST_DIR.get()
    if directory:
        return fit_from_bench_dir(directory)
    return StageCostModel()
