"""Pluggable worker transports: how a scheduler reaches its worker daemons.

The execution layer's parallel backends (:class:`~repro.exec.backends.
ProcessBackend` and :class:`~repro.exec.cluster.ClusterBackend`) both run
work on long-lived worker daemons.  This module owns the two pieces of that
story that are independent of *scheduling*:

* the **wire protocol** — pickled tuples behind an 8-byte little-endian
  length prefix (:func:`send_frame` / :func:`recv_frame`), and the daemon
  loop (:func:`worker_loop`) that serves it; and
* the **transport** — how a worker daemon is launched and connected.

Two transports ship today, selectable via the ``REPRO_TRANSPORT``
environment variable or :func:`resolve_transport`:

* :class:`ForkSocketpairTransport` (``"fork"``, the default) — the worker
  is forked and speaks the protocol over a :func:`socket.socketpair`.  The
  task callable travels by **fork memory image** (closures over scenes,
  SDF lambdas and lazy textures all work), registered under a token in
  :data:`_IMAGE_TASKS` immediately before the fork.
* :class:`TcpTransport` (``"tcp"``) — the worker is spawned as a
  subprocess that connects *back* to the scheduler over loopback TCP and
  authenticates with a one-shot handshake secret.  Every frame crosses a
  real TCP stream, so the scheduler/worker split is exactly the shape a
  multi-machine deployment needs: pointing this transport's launcher at a
  remote host is a deployment change, not a protocol change.  The task
  callable is **shipped by pickle** under its registry token whenever it
  pickles (the remote-ready path — a new callable reaches a live daemon
  without a respawn); callables that cannot pickle (closures) fall back to
  fork-image inheritance, which works on loopback because the workers are
  still forked locally — a true remote deployment would require picklable
  tasks.

Both transports serve the same daemon loop and the same frame protocol, so
the :class:`~repro.exec.worker.WorkerHost` above them is transport-blind —
which is what keeps the two parallel backends bit-identical to the serial
reference under either transport (pinned in ``tests/test_exec_cluster.py``).

Protocol frames (all pickled tuples):

=======================  =================================================
scheduler -> worker      meaning
=======================  =================================================
``("task", t, bytes)``   register callable ``pickle.loads(bytes)`` under
                         token ``t`` (pickle-shipped tasks only)
``("shard", t, s,        run shard ``s`` of task ``t`` over ``pairs`` —
`` pairs)``              a list of ``(item_index, item)`` tuples
``("shard_image", t,     run shard ``s`` of task ``t`` over the item
`` s, indices)``         *indices* into the fork-inherited
                         :data:`_IMAGE_ITEMS` registry
``("stop",)``            exit the daemon loop
=======================  =================================================

=======================  =================================================
worker -> scheduler      meaning
=======================  =================================================
``("hello", secret)``    TCP connect-back handshake
``("done", s, elapsed,   shard ``s`` finished; per-item results in item
`` results)``            order; ``elapsed`` task seconds
``("fail", s, trace,     shard ``s`` raised; formatted traceback attached,
`` exc_bytes)``          plus the pickled exception when it pickles (so the
                         scheduler can re-raise the original type)
=======================  =================================================
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import traceback
import weakref

from repro.config import env as repro_env

#: Environment variable selecting the worker transport by name.
TRANSPORT_ENV_VAR = repro_env.REPRO_TRANSPORT.name

#: Transport used when neither the caller nor the environment picks one —
#: the socketpair+fork behaviour the backends have always had.  Declared in
#: :mod:`repro.config.env`, the registry every environment read goes through.
DEFAULT_TRANSPORT_NAME = repro_env.REPRO_TRANSPORT.default

#: One lock for every fork (and every mutation of the fork-inherited task
#: registries) in the execution layer: the registries must stay stable for a
#: whole map, because a replacement worker forked mid-map after a death must
#: still inherit that map's task.  Shared by every backend and transport.
LIFECYCLE_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def in_worker_process() -> bool:
    """Whether the current process is a worker daemon (workers must not fork)."""
    process = multiprocessing.current_process()
    return bool(process.daemon) or process.name != "MainProcess"


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------

_FRAME_HEADER = struct.Struct("<Q")


def send_frame(conn: socket.socket, message: tuple) -> None:
    """Write one length-prefixed pickled message to ``conn``."""
    # Pickle first: a PicklingError must surface before any bytes are
    # written, so a failed send never leaves a torn frame on the stream.
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    conn.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_exact(conn: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = conn.recv(min(count, 1 << 20))
        if not chunk:
            raise EOFError("worker connection closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(conn: socket.socket) -> tuple:
    """Read one length-prefixed pickled message from ``conn``."""
    (length,) = _FRAME_HEADER.unpack(_recv_exact(conn, _FRAME_HEADER.size))
    return pickle.loads(_recv_exact(conn, length))


# ---------------------------------------------------------------------------
# Fork-image task registries and the daemon loop
# ---------------------------------------------------------------------------

#: Task callables that travel by fork memory image, keyed by task token.
#: Entries are added (under :data:`LIFECYCLE_LOCK`) immediately before
#: workers are forked — so the workers inherit them — and removed only when
#: the token is retired, so a replacement worker forked at any later point
#: of the token's lifetime still finds its task.
_IMAGE_TASKS: dict = {}

#: Item lists of one-shot maps whose items do not pickle, keyed by task
#: token; inherited by fork exactly like :data:`_IMAGE_TASKS`.  Shards of
#: such maps name item *indices* (``"shard_image"`` frames) instead of
#: carrying the items across the wire.
_IMAGE_ITEMS: dict = {}

#: Parent-side sockets a forked worker must not keep open (the scheduler
#: ends of other workers' connections, and the TCP listener — a child
#: holding the listener would keep the port alive after the parent closes
#: it).  Closed at the top of every worker entry point.
_PARENT_SOCKETS: "weakref.WeakSet" = weakref.WeakSet()


def _close_inherited_parent_sockets() -> None:
    for sock in list(_PARENT_SOCKETS):
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _BrokenTask:
    """Placeholder for a task registration that failed to unpickle."""

    def __init__(self, trace: str) -> None:
        self.trace = trace

    def __call__(self, item):
        raise RuntimeError(f"task failed to unpickle in worker:\n{self.trace}")


def worker_loop(conn: socket.socket) -> None:
    """Daemon loop of one worker: serve registrations and shards until told
    to stop (or the scheduler goes away)."""
    shipped_tasks: dict = {}
    try:
        while True:
            try:
                message = recv_frame(conn)
            except (EOFError, OSError):
                return  # scheduler went away
            kind = message[0]
            if kind == "stop":
                return
            if kind == "task":
                _, token, payload = message
                # Only the newest registration can still receive shards
                # (the host ships a task before that token's first shard,
                # frames are FIFO), so older entries are dead weight — a
                # long-lived daemon must not accumulate every callable it
                # ever served.
                shipped_tasks.clear()
                try:
                    shipped_tasks[token] = pickle.loads(payload)
                except BaseException:
                    # Surface the failure when (not before) a shard of this
                    # task runs; registration itself has no reply frame.
                    shipped_tasks[token] = _BrokenTask(traceback.format_exc())
                continue
            _, token, shard_index, payload = message
            start = time.perf_counter()
            try:
                fn = shipped_tasks.get(token)
                if fn is None:
                    fn = _IMAGE_TASKS[token]
                if kind == "shard_image":
                    items = _IMAGE_ITEMS[token]
                    results = [fn(items[index]) for index in payload]
                else:
                    results = [fn(item) for _, item in payload]
                elapsed = time.perf_counter() - start
                reply = ("done", shard_index, elapsed, results)
            except BaseException as error:
                trace = traceback.format_exc()
                try:
                    # Ship the exception itself when it pickles, so the
                    # scheduler can re-raise the original type (the serial
                    # backend's semantics); the traceback text always gets
                    # through regardless.
                    exc_bytes = pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    exc_bytes = None
                reply = ("fail", shard_index, trace, exc_bytes)
            try:
                send_frame(conn, reply)
            except Exception:
                # Unpicklable results: report the failure instead of dying
                # silently (the fallback message is always picklable).
                try:
                    send_frame(
                        conn, ("fail", shard_index, traceback.format_exc(), None)
                    )
                except Exception:
                    return
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class Transport:
    """How worker daemons are launched and connected.

    A transport owns connection establishment only; the daemon loop, the
    frame protocol and the task registries are shared.  Implementations
    provide :meth:`spawn_worker`, returning a ``(process, conn)`` pair whose
    ``conn`` speaks the frame protocol.
    """

    name = "base"

    #: Whether a *new* callable can be delivered to an already-running
    #: daemon (shipped by pickle under its token).  Transports without this
    #: must respawn daemons when the callable changes — the callable can
    #: only travel by fork memory image.
    ships_callable = False

    def available(self) -> bool:
        """Whether this transport can launch workers on this platform."""
        return fork_available()

    def spawn_worker(self) -> tuple:
        """Launch one worker daemon; return ``(process, conn)``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any transport-level resources (listeners)."""

    def describe(self) -> str:
        return self.name


def _fork_worker_entry(conn: socket.socket) -> None:
    """Entry point of one socketpair worker: drop the scheduler-side
    sockets the fork copied (other workers' connections, any TCP listener
    — a held peer FD would mask their EOFs), then serve."""
    _close_inherited_parent_sockets()
    worker_loop(conn)


class ForkSocketpairTransport(Transport):
    """Today's behaviour: fork the worker, talk over a socketpair.

    The worker inherits the scheduler's memory image, so the task callable
    (and, for one-shot maps, the items) never cross the wire — they are
    looked up in the fork-inherited registries by token.
    """

    name = "fork"
    ships_callable = False

    def spawn_worker(self) -> tuple:
        parent_conn, child_conn = socket.socketpair()
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_fork_worker_entry, args=(child_conn,), daemon=True
        )
        # Register the scheduler side *before* forking: the child inherits a
        # duplicate of it, and unless the entry point closes that dup, the
        # worker's own socketpair could never deliver the scheduler-died
        # EOF (the dup would hold the pair open from inside the worker).
        _PARENT_SOCKETS.add(parent_conn)
        process.start()
        child_conn.close()
        return process, parent_conn


def _tcp_worker_entry(host: str, port: int, secret: bytes) -> None:
    """Entry point of one TCP worker: connect back, authenticate, serve."""
    _close_inherited_parent_sockets()
    conn = socket.create_connection((host, port), timeout=30.0)
    conn.settimeout(None)
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - exotic platforms
        pass
    send_frame(conn, ("hello", secret))
    worker_loop(conn)


class TcpTransport(Transport):
    """Loopback-TCP workers: the wire protocol over a real network socket.

    The scheduler listens on an ephemeral loopback port; each worker is
    spawned as a subprocess that connects back and authenticates with a
    one-shot secret.  All frames — task registrations, shard dispatches,
    results — cross the TCP stream, so this transport exercises exactly the
    protocol surface a multi-machine deployment would use; only the
    launcher (a local fork of this process) is single-host.  Callables are
    shipped by pickle under their token whenever they pickle, letting a
    live daemon pick up a new task without a respawn; unpicklable closures
    fall back to fork-image inheritance (loopback-only by construction).

    Args:
        host: interface to listen on (loopback by default; a multi-machine
            launcher would bind a routable address and start workers with
            the advertised endpoint).
        connect_timeout: seconds to wait for a spawned worker's
            connect-back handshake before declaring the spawn failed.
    """

    name = "tcp"
    ships_callable = True

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 30.0) -> None:
        self.host = host
        self.connect_timeout = float(connect_timeout)
        self._listener: "socket.socket | None" = None

    def _ensure_listener(self) -> socket.socket:
        if self._listener is None:
            self._listener = socket.create_server((self.host, 0))
            _PARENT_SOCKETS.add(self._listener)
        return self._listener

    @property
    def port(self) -> "int | None":
        """The listener's bound port (``None`` before the first spawn)."""
        return None if self._listener is None else self._listener.getsockname()[1]

    def spawn_worker(self) -> tuple:
        listener = self._ensure_listener()
        port = listener.getsockname()[1]
        # repro-analysis: allow=REP-D105 handshake secret — authenticates the connect-back socket, never flows into any artefact or RNG stream
        secret = os.urandom(16)
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_tcp_worker_entry, args=(self.host, port, secret), daemon=True
        )
        process.start()
        deadline = time.monotonic() + self.connect_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                break
            listener.settimeout(max(remaining, 0.05))
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            try:
                conn.settimeout(self.connect_timeout)
                hello = recv_frame(conn)
            except (EOFError, OSError):
                conn.close()
                continue
            if hello == ("hello", secret):
                conn.settimeout(None)
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover - exotic platforms
                    pass
                _PARENT_SOCKETS.add(conn)
                return process, conn
            # A stale or foreign connection: drop it and keep waiting for
            # the worker that knows this spawn's secret.
            conn.close()
        process.terminate()
        process.join(timeout=2.0)
        raise RuntimeError(
            f"tcp worker did not connect back within {self.connect_timeout:.0f}s"
        )

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def describe(self) -> str:
        port = self.port
        return f"tcp({self.host}:{port})" if port else f"tcp({self.host})"


#: Registry of selectable transports, keyed by the names accepted from the
#: ``REPRO_TRANSPORT`` environment variable and :func:`resolve_transport`.
TRANSPORTS = {
    ForkSocketpairTransport.name: ForkSocketpairTransport,
    TcpTransport.name: TcpTransport,
}


def resolve_transport(transport=None) -> Transport:
    """Resolve a transport instance from a name, an instance, or the environment.

    Args:
        transport: a :class:`Transport` instance (returned unchanged), a
            transport name from :data:`TRANSPORTS`, or ``None`` to consult
            the ``REPRO_TRANSPORT`` environment variable and fall back to
            the behaviour-preserving default (``"fork"``).
    """
    if isinstance(transport, Transport):
        return transport
    name = transport
    if name is None:
        name = repro_env.REPRO_TRANSPORT.get()
    name = str(name).strip().lower()
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown worker transport {name!r}; valid transports: "
            f"{', '.join(sorted(TRANSPORTS))} (select via the "
            f"{TRANSPORT_ENV_VAR} environment variable or a transport= argument)"
        )
    return TRANSPORTS[name]()
