"""Pluggable worker transports: how a scheduler reaches its worker daemons.

The execution layer's parallel backends (:class:`~repro.exec.backends.
ProcessBackend` and :class:`~repro.exec.cluster.ClusterBackend`) both run
work on long-lived worker daemons.  This module owns the two pieces of that
story that are independent of *scheduling*:

* the **wire protocol** — pickled tuples behind an 8-byte little-endian
  length prefix (:func:`send_frame` / :func:`recv_frame`, protocol v1),
  the out-of-band array plane of protocol v2
  (:mod:`repro.exec.arrayplane`, negotiated per connection and wrapped
  with the socket in a :class:`Channel`), and the daemon loop
  (:func:`worker_loop`) that serves both; and
* the **transport** — how a worker daemon is launched and connected.

Two transports ship today, selectable via the ``REPRO_TRANSPORT``
environment variable or :func:`resolve_transport`:

* :class:`ForkSocketpairTransport` (``"fork"``, the default) — the worker
  is forked and speaks the protocol over a :func:`socket.socketpair`.  The
  task callable travels by **fork memory image** (closures over scenes,
  SDF lambdas and lazy textures all work), registered under a token in
  :data:`_IMAGE_TASKS` immediately before the fork.
* :class:`TcpTransport` (``"tcp"``) — the worker is spawned as a
  subprocess that connects *back* to the scheduler over loopback TCP and
  authenticates with a one-shot handshake secret.  Every frame crosses a
  real TCP stream, so the scheduler/worker split is exactly the shape a
  multi-machine deployment needs: pointing this transport's launcher at a
  remote host is a deployment change, not a protocol change.  The task
  callable is **shipped by pickle** under its registry token whenever it
  pickles (the remote-ready path — a new callable reaches a live daemon
  without a respawn); callables that cannot pickle (closures) fall back to
  fork-image inheritance, which works on loopback because the workers are
  still forked locally — a true remote deployment would require picklable
  tasks.

Both transports serve the same daemon loop and the same frame protocol, so
the :class:`~repro.exec.worker.WorkerHost` above them is transport-blind —
which is what keeps the two parallel backends bit-identical to the serial
reference under either transport (pinned in ``tests/test_exec_cluster.py``).

Protocol frames (all pickled tuples):

=======================  =================================================
scheduler -> worker      meaning
=======================  =================================================
``("task", t, bytes)``   register callable ``pickle.loads(bytes)`` under
                         token ``t`` (pickle-shipped tasks only)
``("shard", t, s,        run shard ``s`` of task ``t`` over ``pairs`` —
`` pairs)``              a list of ``(item_index, item)`` tuples
``("shard_image", t,     run shard ``s`` of task ``t`` over the item
`` s, indices)``         *indices* into the fork-inherited
                         :data:`_IMAGE_ITEMS` registry
``("stop",)``            exit the daemon loop
=======================  =================================================

=======================  =================================================
worker -> scheduler      meaning
=======================  =================================================
``("hello", secret)``    TCP connect-back handshake (a v1 worker)
``("hello", secret,      TCP connect-back handshake advertising frame
`` version)``            protocol ``version``; the scheduler replies with
                         a ``welcome`` frame
``("done", s, elapsed,   shard ``s`` finished; per-item results in item
`` results)``            order; ``elapsed`` task seconds
``("fail", s, trace,     shard ``s`` raised; formatted traceback attached,
`` exc_bytes)``          plus the pickled exception when it pickles (so the
                         scheduler can re-raise the original type)
=======================  =================================================

Version negotiation (frame protocol v2, the array plane): fork workers
are told their ``(version, plane, prefix)`` in the spawn arguments — the
scheduler picks both sides of a socketpair, so there is nothing to
discover.  TCP workers advertise their protocol as a third ``hello``
element; v1 workers send the classic 2-tuple and the scheduler speaks v1
back — the interop contract — while v2-capable hellos get a
``("welcome", version, plane, prefix)`` frame (always v1-framed) naming
the negotiated protocol, which may still be 1 when ``REPRO_TRANSPORT_SHM``
is off.  Every frame after the handshake uses the negotiated codec.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import traceback
import weakref

from repro.config import env as repro_env
from repro.exec import arrayplane
from repro.exec.arrayplane import MAX_FRAME_BYTES, FrameProtocolError

#: Environment variable selecting the worker transport by name.
TRANSPORT_ENV_VAR = repro_env.REPRO_TRANSPORT.name

#: Transport used when neither the caller nor the environment picks one —
#: the socketpair+fork behaviour the backends have always had.  Declared in
#: :mod:`repro.config.env`, the registry every environment read goes through.
DEFAULT_TRANSPORT_NAME = repro_env.REPRO_TRANSPORT.default

#: One lock for every fork (and every mutation of the fork-inherited task
#: registries) in the execution layer: the registries must stay stable for a
#: whole map, because a replacement worker forked mid-map after a death must
#: still inherit that map's task.  Shared by every backend and transport.
LIFECYCLE_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def in_worker_process() -> bool:
    """Whether the current process is a worker daemon (workers must not fork)."""
    process = multiprocessing.current_process()
    return bool(process.daemon) or process.name != "MainProcess"


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------

_FRAME_HEADER = struct.Struct("<Q")


def send_frame(conn: socket.socket, message: tuple) -> None:
    """Write one length-prefixed pickled message to ``conn``."""
    # Pickle first: a PicklingError must surface before any bytes are
    # written, so a failed send never leaves a torn frame on the stream.
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    conn.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_exact(conn: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = conn.recv(min(count, 1 << 20))
        if not chunk:
            raise EOFError("worker connection closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(conn: socket.socket) -> tuple:
    """Read one length-prefixed pickled message from ``conn``.

    The length prefix is sanity-capped at
    :data:`~repro.exec.arrayplane.MAX_FRAME_BYTES` before any allocation:
    a corrupt or hostile peer forging an 8-byte prefix must poison only
    its own connection (:class:`FrameProtocolError` is a
    :class:`ConnectionError`, so every caller's death handling applies),
    not drive a near-2**64-byte allocation.
    """
    (length,) = _FRAME_HEADER.unpack(_recv_exact(conn, _FRAME_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            f"frame length prefix of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap (corrupt stream or hostile peer)"
        )
    return pickle.loads(_recv_exact(conn, length))


class Channel:
    """One scheduler<->worker connection: a socket plus its negotiated
    frame codec.

    ``codec=None`` speaks protocol v1 (:func:`send_frame` /
    :func:`recv_frame`); a v2 :class:`~repro.exec.arrayplane.
    ArrayPlaneCodec` splits ndarray buffers out of the control frame.
    ``worker_prefix`` is the peer worker's transfer-segment namespace
    (shm plane only) — the host reaps it when the worker is retired or
    found dead.
    """

    __slots__ = ("sock", "codec", "worker_prefix")

    def __init__(self, sock, codec=None, worker_prefix=None) -> None:
        self.sock = sock
        self.codec = codec
        self.worker_prefix = worker_prefix

    @property
    def version(self) -> int:
        return 1 if self.codec is None else self.codec.version

    def send(self, message: tuple) -> None:
        if self.codec is None:
            send_frame(self.sock, message)
        else:
            self.codec.send(self.sock, message)

    def recv(self) -> tuple:
        if self.codec is None:
            return recv_frame(self.sock)
        return self.codec.recv(self.sock)

    def take_pins(self) -> list:
        """Pooled segment names pinned by sends since the last call."""
        return [] if self.codec is None else self.codec.take_pins()

    def fileno(self) -> int:
        return self.sock.fileno()

    def close(self) -> None:
        if self.codec is not None:
            self.codec.close()
        self.sock.close()


# ---------------------------------------------------------------------------
# Fork-image task registries and the daemon loop
# ---------------------------------------------------------------------------

#: Task callables that travel by fork memory image, keyed by task token.
#: Entries are added (under :data:`LIFECYCLE_LOCK`) immediately before
#: workers are forked — so the workers inherit them — and removed only when
#: the token is retired, so a replacement worker forked at any later point
#: of the token's lifetime still finds its task.
_IMAGE_TASKS: dict = {}

#: Item lists of one-shot maps whose items do not pickle, keyed by task
#: token; inherited by fork exactly like :data:`_IMAGE_TASKS`.  Shards of
#: such maps name item *indices* (``"shard_image"`` frames) instead of
#: carrying the items across the wire.
_IMAGE_ITEMS: dict = {}

#: Parent-side sockets a forked worker must not keep open (the scheduler
#: ends of other workers' connections, and the TCP listener — a child
#: holding the listener would keep the port alive after the parent closes
#: it).  Closed at the top of every worker entry point.
_PARENT_SOCKETS: "weakref.WeakSet" = weakref.WeakSet()


def _close_inherited_parent_sockets() -> None:
    for sock in list(_PARENT_SOCKETS):
        try:
            sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _BrokenTask:
    """Placeholder for a task registration that failed to unpickle."""

    def __init__(self, trace: str) -> None:
        self.trace = trace

    def __call__(self, item):
        raise RuntimeError(f"task failed to unpickle in worker:\n{self.trace}")


def worker_loop(channel: Channel) -> None:
    """Daemon loop of one worker: serve registrations and shards until told
    to stop (or the scheduler goes away)."""
    shipped_tasks: dict = {}
    try:
        while True:
            try:
                message = channel.recv()
            except (EOFError, OSError):
                return  # scheduler went away
            kind = message[0]
            if kind == "stop":
                return
            if kind == "task":
                _, token, payload = message
                # Only the newest registration can still receive shards
                # (the host ships a task before that token's first shard,
                # frames are FIFO), so older entries are dead weight — a
                # long-lived daemon must not accumulate every callable it
                # ever served.
                shipped_tasks.clear()
                try:
                    shipped_tasks[token] = pickle.loads(payload)
                except BaseException:
                    # Surface the failure when (not before) a shard of this
                    # task runs; registration itself has no reply frame.
                    shipped_tasks[token] = _BrokenTask(traceback.format_exc())
                continue
            _, token, shard_index, payload = message
            start = time.perf_counter()
            try:
                fn = shipped_tasks.get(token)
                if fn is None:
                    fn = _IMAGE_TASKS[token]
                if kind == "shard_image":
                    items = _IMAGE_ITEMS[token]
                    results = [fn(items[index]) for index in payload]
                else:
                    results = [fn(item) for _, item in payload]
                elapsed = time.perf_counter() - start
                reply = ("done", shard_index, elapsed, results)
            except BaseException as error:
                trace = traceback.format_exc()
                try:
                    # Ship the exception itself when it pickles, so the
                    # scheduler can re-raise the original type (the serial
                    # backend's semantics); the traceback text always gets
                    # through regardless.
                    exc_bytes = pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    exc_bytes = None
                reply = ("fail", shard_index, trace, exc_bytes)
            try:
                channel.send(reply)
            except Exception:
                # Unpicklable results: report the failure instead of dying
                # silently (the fallback message is always picklable).
                try:
                    channel.send(
                        ("fail", shard_index, traceback.format_exc(), None)
                    )
                except Exception:
                    return
    finally:
        channel.close()


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class Transport:
    """How worker daemons are launched and connected.

    A transport owns connection establishment (including frame-protocol
    negotiation) only; the daemon loop, the frame codecs and the task
    registries are shared.  Implementations provide :meth:`spawn_worker`,
    returning a ``(process, channel)`` pair whose :class:`Channel` speaks
    the negotiated frame protocol.

    ``protocol`` forces a frame protocol version (1 or 2) instead of
    consulting ``REPRO_TRANSPORT_SHM``, and ``plane`` forces the v2
    segment plane (``"shm"`` / ``"inline"``) — the parity matrix pins
    {v1, v2} × {fork, tcp} through these.
    """

    name = "base"

    def __init__(self, protocol: "int | None" = None, plane: "str | None" = None) -> None:
        self.protocol = protocol
        self.plane = plane

    def negotiated(self) -> "tuple[int, str | None]":
        """The ``(version, plane)`` this scheduler offers new workers."""
        version = (
            int(self.protocol)
            if self.protocol is not None
            else arrayplane.frame_protocol_version()
        )
        if version < 2:
            return 1, None
        return 2, self.plane or arrayplane.default_plane(self.name)

    #: Whether a *new* callable can be delivered to an already-running
    #: daemon (shipped by pickle under its token).  Transports without this
    #: must respawn daemons when the callable changes — the callable can
    #: only travel by fork memory image.
    ships_callable = False

    def available(self) -> bool:
        """Whether this transport can launch workers on this platform."""
        return fork_available()

    def spawn_worker(self) -> tuple:
        """Launch one worker daemon; return ``(process, conn)``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any transport-level resources (listeners)."""

    def describe(self) -> str:
        version, plane = self.negotiated()
        return self.name if version < 2 else f"{self.name}+{plane}"


def _fork_worker_entry(
    conn: socket.socket,
    version: int = 1,
    plane: "str | None" = None,
    prefix: "str | None" = None,
) -> None:
    """Entry point of one socketpair worker: drop the scheduler-side
    sockets the fork copied (other workers' connections, any TCP listener
    — a held peer FD would mask their EOFs), then serve with the codec the
    scheduler chose (no discovery needed — same spawn, both sides)."""
    _close_inherited_parent_sockets()
    worker_loop(Channel(conn, arrayplane.worker_codec(version, plane, prefix)))


class ForkSocketpairTransport(Transport):
    """Today's behaviour: fork the worker, talk over a socketpair.

    The worker inherits the scheduler's memory image, so the task callable
    (and, for one-shot maps, the items) never cross the wire — they are
    looked up in the fork-inherited registries by token.  Under frame
    protocol v2 this transport negotiates the shared-memory plane (both
    ends are on this host by construction); results then cross as
    zero-copy segment views instead of pickled byte payloads.
    """

    name = "fork"
    ships_callable = False

    def spawn_worker(self) -> tuple:
        version, plane = self.negotiated()
        prefix = (
            arrayplane.next_worker_prefix()
            if plane == arrayplane.PLANE_SHM
            else None
        )
        parent_conn, child_conn = socket.socketpair()
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_fork_worker_entry,
            args=(child_conn, version, plane, prefix),
            daemon=True,
        )
        # Register the scheduler side *before* forking: the child inherits a
        # duplicate of it, and unless the entry point closes that dup, the
        # worker's own socketpair could never deliver the scheduler-died
        # EOF (the dup would hold the pair open from inside the worker).
        _PARENT_SOCKETS.add(parent_conn)
        process.start()
        child_conn.close()
        return process, Channel(
            parent_conn,
            arrayplane.scheduler_codec(version, plane),
            worker_prefix=prefix,
        )


def _tcp_worker_entry(
    host: str, port: int, secret: bytes, advertise: int = 1
) -> None:
    """Entry point of one TCP worker: connect back, authenticate,
    negotiate the frame protocol, serve.

    A worker advertising v1 sends the classic 2-tuple hello and speaks v1
    unconditionally (no welcome frame is ever sent to it — exactly the
    wire behaviour of a pre-v2 daemon, which is how the interop matrix
    exercises "old worker, new scheduler").  A v2-capable worker adds its
    version to the hello and adopts whatever the welcome frame names —
    possibly still v1 when the scheduler's knob is off.
    """
    _close_inherited_parent_sockets()
    conn = socket.create_connection((host, port), timeout=30.0)
    conn.settimeout(None)
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - exotic platforms
        pass
    codec = None
    if advertise >= 2:
        send_frame(conn, ("hello", secret, 2))
        _, version, plane, prefix = recv_frame(conn)
        codec = arrayplane.worker_codec(version, plane, prefix)
    else:
        send_frame(conn, ("hello", secret))
    worker_loop(Channel(conn, codec))


class TcpTransport(Transport):
    """Loopback-TCP workers: the wire protocol over a real network socket.

    The scheduler listens on an ephemeral loopback port; each worker is
    spawned as a subprocess that connects back and authenticates with a
    one-shot secret.  All frames — task registrations, shard dispatches,
    results — cross the TCP stream, so this transport exercises exactly the
    protocol surface a multi-machine deployment would use; only the
    launcher (a local fork of this process) is single-host.  Callables are
    shipped by pickle under their token whenever they pickle, letting a
    live daemon pick up a new task without a respawn; unpicklable closures
    fall back to fork-image inheritance (loopback-only by construction).

    Under frame protocol v2 the negotiated plane is always ``inline`` —
    raw length-prefixed segments on the stream, never shared memory,
    because the TCP stream is the remote-ready path and a remote worker
    has no common ``/dev/shm``.  (That still beats v1: array bytes are
    sent straight from the buffer instead of being copied through a
    pickled payload first.)

    Args:
        host: interface to listen on (loopback by default; a multi-machine
            launcher would bind a routable address and start workers with
            the advertised endpoint).
        connect_timeout: seconds to wait for a spawned worker's
            connect-back handshake before declaring the spawn failed.
        protocol / plane: see :class:`Transport`.
        worker_protocol: the version spawned workers *advertise* (defaults
            to the scheduler's own) — spawning v1-advertising workers
            under a v2 scheduler is how the interop tests mix versions on
            one live fleet.
    """

    name = "tcp"
    ships_callable = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        connect_timeout: float = 30.0,
        protocol: "int | None" = None,
        plane: "str | None" = None,
        worker_protocol: "int | None" = None,
    ) -> None:
        super().__init__(protocol=protocol, plane=plane)
        self.host = host
        self.connect_timeout = float(connect_timeout)
        self.worker_protocol = worker_protocol
        self._listener: "socket.socket | None" = None

    def negotiated(self) -> "tuple[int, str | None]":
        version, plane = super().negotiated()
        if version >= 2:
            plane = arrayplane.PLANE_INLINE  # no shared /dev/shm over TCP
        return version, plane

    def _ensure_listener(self) -> socket.socket:
        if self._listener is None:
            self._listener = socket.create_server((self.host, 0))
            _PARENT_SOCKETS.add(self._listener)
        return self._listener

    @property
    def port(self) -> "int | None":
        """The listener's bound port (``None`` before the first spawn)."""
        return None if self._listener is None else self._listener.getsockname()[1]

    def spawn_worker(self) -> tuple:
        listener = self._ensure_listener()
        port = listener.getsockname()[1]
        # repro-analysis: allow=REP-D105 handshake secret — authenticates the connect-back socket, never flows into any artefact or RNG stream
        secret = os.urandom(16)
        version, plane = self.negotiated()
        advertise = (
            version if self.worker_protocol is None else int(self.worker_protocol)
        )
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_tcp_worker_entry,
            args=(self.host, port, secret, advertise),
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + self.connect_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                break
            listener.settimeout(max(remaining, 0.05))
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            try:
                conn.settimeout(self.connect_timeout)
                hello = recv_frame(conn)
            except (EOFError, OSError):
                conn.close()
                continue
            authenticated = (
                isinstance(hello, tuple)
                and len(hello) in (2, 3)
                and hello[0] == "hello"
                and hello[1] == secret
            )
            if authenticated:
                conn.settimeout(None)
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover - exotic platforms
                    pass
                codec = None
                if len(hello) == 3:
                    # The worker negotiates: meet at the lower version.
                    # A 2-tuple hello is a v1 worker and gets no welcome
                    # frame (it would misread one as a task message).
                    agreed = min(int(hello[2]), version)
                    if agreed >= 2:
                        send_frame(conn, ("welcome", 2, plane, None))
                        codec = arrayplane.scheduler_codec(2, plane)
                    else:
                        send_frame(conn, ("welcome", 1, None, None))
                _PARENT_SOCKETS.add(conn)
                return process, Channel(conn, codec)
            # A stale or foreign connection: drop it and keep waiting for
            # the worker that knows this spawn's secret.
            conn.close()
        process.terminate()
        process.join(timeout=2.0)
        raise RuntimeError(
            f"tcp worker did not connect back within {self.connect_timeout:.0f}s"
        )

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def describe(self) -> str:
        port = self.port
        label = f"tcp({self.host}:{port})" if port else f"tcp({self.host})"
        version, plane = self.negotiated()
        return label if version < 2 else f"{label}+{plane}"


#: Registry of selectable transports, keyed by the names accepted from the
#: ``REPRO_TRANSPORT`` environment variable and :func:`resolve_transport`.
TRANSPORTS = {
    ForkSocketpairTransport.name: ForkSocketpairTransport,
    TcpTransport.name: TcpTransport,
}


def resolve_transport(transport=None) -> Transport:
    """Resolve a transport instance from a name, an instance, or the environment.

    Args:
        transport: a :class:`Transport` instance (returned unchanged), a
            transport name from :data:`TRANSPORTS`, or ``None`` to consult
            the ``REPRO_TRANSPORT`` environment variable and fall back to
            the behaviour-preserving default (``"fork"``).
    """
    if isinstance(transport, Transport):
        return transport
    name = transport
    if name is None:
        name = repro_env.REPRO_TRANSPORT.get()
    name = str(name).strip().lower()
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown worker transport {name!r}; valid transports: "
            f"{', '.join(sorted(TRANSPORTS))} (select via the "
            f"{TRANSPORT_ENV_VAR} environment variable or a transport= argument)"
        )
    return TRANSPORTS[name]()
