"""The shared worker-daemon lifecycle behind both parallel backends.

Before this module existed, :class:`~repro.exec.backends.ProcessBackend`
(a persistent fork pool) and :class:`~repro.exec.cluster.ClusterBackend`
(per-map forked daemons over a socket protocol) each owned their own copy
of the same lifecycle: spawn workers, detect deaths, re-enqueue lost work,
respawn within a budget, shut down cleanly.  :class:`WorkerHost` is that
lifecycle, written once, over a pluggable
:class:`~repro.exec.transport.Transport`:

* **Persistent daemons with a callable-token registry.**  The first map
  registers its callable under a fresh token and spawns daemons;
  consecutive maps with the *same* callable reuse the live daemons — zero
  respawns, items cross the wire pickled (the fork pool's token-registry
  trick applied to the frame protocol).  A map with a *different* callable
  re-registers: transports that can ship callables by pickle deliver the
  new task to the live daemons over the wire; fork-image transports
  dispose the fleet and fork a fresh one (the callable can only travel by
  memory image).
* **One-shot maps for unpicklable items.**  Items that cannot cross a task
  queue ride the fork memory image instead — dedicated daemons are forked
  for that map alone (inheriting callable *and* items by image) and reaped
  at its end, while the persistent fleet stays intact for the next
  reusable map.  Exactly the fork pool's one-shot path.
* **Death detection and lost-shard re-enqueue.**  A daemon that dies
  mid-shard (killed, OOMed, crashed) is detected by its connection
  closing; its in-flight shard is re-queued at the front, a replacement is
  spawned within a per-map respawn budget, and chronic death surfaces as a
  ``RuntimeError`` instead of an infinite respawn loop.  Daemons found
  dead *between* maps (e.g. SIGKILLed while idle) are pruned and replaced
  transparently at the next map's start.
* **Pull-based dispatch with a pluggable steal policy.**  Work is handed
  to whichever daemon is idle; when the queue drains, an optional
  ``steal`` hook (the cluster backend's straggler heuristic) may pick an
  in-flight shard to duplicate.  First completion wins; shards are pure,
  so duplicates are harmless.
* **Bounded idle fleets and clean shutdown.**  Hosts with live daemons are
  tracked in an LRU bounded at :data:`_MAX_LIVE_FLEETS` (each idle daemon
  pins a copy-on-write image of the parent); beyond it, the
  least-recently-used host's fleet is disposed.  ``atexit`` reaps
  everything at interpreter exit.

Scheduling *policy* — how items become cost-weighted shards, store-aware
placement, when to steal — stays in the backends; the host only owns the
mechanics every backend needs.  Results are reassembled by item index, so
any backend over any transport stays bit-identical to the serial loop.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import selectors
import time
import weakref
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.sanitize import map_boundary
from repro.exec import arrayplane
from repro.exec.transport import (
    LIFECYCLE_LOCK,
    _IMAGE_ITEMS,
    _IMAGE_TASKS,
    resolve_transport,
)

#: Task-token source shared by every host (tokens are process-global because
#: the fork-image registries they key are).
_TASK_TOKENS = itertools.count()

#: Live hosts, for interpreter-exit cleanup.
_LIVE_HOSTS: "weakref.WeakSet" = weakref.WeakSet()

#: Bound on hosts with live (idle) daemon fleets across all backend
#: instances.  Pipelines, engines and baselines each resolve their own
#: backend; without a bound, every instance's last fleet would idle until
#: interpreter exit, each daemon pinning a copy-on-write image of the
#: parent.  Fleets are disposed least-recently-used beyond this.
_MAX_LIVE_FLEETS = 2

#: Hosts owning live fleets, oldest first (weakrefs; callers hold
#: :data:`~repro.exec.transport.LIFECYCLE_LOCK`).
_FLEET_OWNERS: list = []


def _note_fleet_owner(host) -> None:
    """Mark ``host``'s fleet most-recently-used; dispose idle fleets beyond
    the global bound.  Caller holds the lifecycle lock, so no disposed
    fleet can have a map in flight."""
    _FLEET_OWNERS[:] = [
        ref
        for ref in _FLEET_OWNERS
        if ref() is not None and ref() is not host and ref()._daemons
    ]
    _FLEET_OWNERS.append(weakref.ref(host))
    while len(_FLEET_OWNERS) > _MAX_LIVE_FLEETS:
        oldest = _FLEET_OWNERS.pop(0)()
        if oldest is not None:
            oldest._dispose_fleet()


def shutdown_worker_hosts() -> None:
    """Shut down every live :class:`WorkerHost` (atexit hook)."""
    for host in list(_LIVE_HOSTS):
        host.shutdown()


atexit.register(shutdown_worker_hosts)


def _reap_fleet_at_gc(daemons: dict, token_box: list, transport) -> None:
    """Reap a host's daemons when the host is garbage-collected without an
    explicit :meth:`WorkerHost.shutdown` (module-level so
    :func:`weakref.finalize` can run it without referencing the host).

    Runs without the lifecycle lock — a finalizer can fire mid-map of an
    unrelated host on the same thread, and taking the lock there would
    deadlock.  That is safe: this host is unreachable, so nothing else
    touches its daemons, and the registry pop is atomic under the GIL.
    """
    for daemon in list(daemons.values()):
        try:
            daemon.conn.send(("stop",))
        except OSError:
            pass
        try:
            daemon.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        daemon.process.join(timeout=0.2)
        if daemon.process.is_alive():
            daemon.process.terminate()
            daemon.process.join(timeout=2.0)
        arrayplane.reap_worker_segments(daemon.conn.worker_prefix)
    daemons.clear()
    token = token_box[0]
    token_box[0] = None
    if token is not None:
        _IMAGE_TASKS.pop(token, None)
    try:
        transport.close()
    except OSError:  # pragma: no cover - listener already closed
        pass


def _discard_buffer(buffer) -> None:
    """``buffer_callback`` of the picklability probe: drop the bytes."""


class WorkerTaskError(RuntimeError):
    """A task callable raised inside a worker daemon (remote traceback attached)."""


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: a subset of item indices and its cost estimate."""

    index: int
    item_indices: tuple
    cost: float


class _Daemon:
    """Host-side bookkeeping for one live worker daemon."""

    __slots__ = ("worker_id", "process", "conn", "shard", "shipped_tokens")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.shard: "Shard | None" = None
        #: Tokens whose callable was delivered to this daemon by pickle.
        self.shipped_tokens: set = set()


@dataclass
class HostRunReport:
    """Observability of one :meth:`WorkerHost.run` call."""

    #: Daemons spawned during this run (0 on a fully reused map).
    spawned: int = 0
    #: Live daemons reused from the persistent fleet at run start.
    reused_workers: int = 0
    #: Shard dispatches (speculative duplicates included).
    dispatched: int = 0
    #: Speculative (steal) dispatches among them.
    speculative: int = 0
    #: Worker deaths detected during the run (idle pruning included).
    deaths: int = 0
    #: Lost shards re-enqueued after a death.
    requeued: int = 0
    #: Whether this run installed a new task token (callable changed).
    task_registered: bool = False
    #: Whether the items rode the fork image (one-shot daemons).
    one_shot: bool = False
    #: Summed task seconds of first-accepted shard completions.
    accepted_seconds: float = 0.0
    #: Per-shard wall seconds of first-accepted completions, as
    #: ``(shard_index, seconds)`` in completion order — the measured-cost
    #: feedback channel a cost model can fit against its predictions.
    accepted_durations: list = field(default_factory=list)


@dataclass
class SchedulerView:
    """Live dispatch state handed to a steal policy (read-only by contract).

    ``completed_durations`` holds ``(shard_index, wall seconds)`` per
    first-accepted completion, so a policy can weigh (or exclude) specific
    shards — e.g. store-hit shards whose near-zero durations would
    otherwise corrupt a straggler baseline."""

    shard_by_index: dict
    completed: dict
    in_flight: dict
    dispatch_started: dict
    completed_durations: list


class WorkerHost:
    """Owns worker daemons over a transport; executes shard plans on them.

    Args:
        transport: a :class:`~repro.exec.transport.Transport` instance, a
            transport name, or ``None`` to consult ``REPRO_TRANSPORT``
            (default ``"fork"``).
        workers: maximum daemons kept live (``None`` = host CPU count).
        max_respawns: per-map budget of replacement daemons after deaths;
            ``None`` scales with the worker count.

    The host is intentionally policy-free: callers hand it a list of
    :class:`Shard` plans (the cluster backend's planner output, or the
    degenerate one-shard-per-item plan of the process backend) and an
    optional steal hook.  See the module docstring for the lifecycle
    contract.
    """

    def __init__(
        self,
        transport=None,
        workers: "int | None" = None,
        max_respawns: "int | None" = None,
    ) -> None:
        default = os.cpu_count() or 1
        self.workers = max(int(workers) if workers is not None else default, 1)
        self.transport = resolve_transport(transport)
        self.max_respawns = (
            2 * self.workers + 2 if max_respawns is None else max(int(max_respawns), 0)
        )
        self._daemons: dict = {}
        self._worker_ids = itertools.count()
        self._task_fn = None
        self._task_token: "int | None" = None
        self._task_mode: "str | None" = None  # "pickle" | "image"
        self._task_payload: "bytes | None" = None
        #: Daemons ever spawned (persistent fleet + one-shot + respawns).
        self.spawn_count = 0
        #: Times a new task token was installed (first map = 1; +1 per
        #: callable change; one-shot maps never bump it).
        self.task_generations = 0
        #: Worker deaths ever detected (mid-map and between maps).
        self.worker_deaths = 0
        #: Maps served by the persistent fleet without spawning anything.
        self.reused_maps = 0
        #: Maps executed on daemons (one-shot included).
        self.maps = 0
        #: Current persistent task token, mirrored in a mutable box so the
        #: GC finalizer (which must not reference the host) can retire it.
        self._token_box: list = [None]
        _LIVE_HOSTS.add(self)
        # A host dropped without shutdown() must not orphan its daemons:
        # the finalizer reaps the fleet (and the image-task registration)
        # at garbage collection, like the old fork pool's finalize did.
        self._finalizer = weakref.finalize(
            self, _reap_fleet_at_gc, self._daemons, self._token_box, self.transport
        )

    # -- availability --------------------------------------------------------

    def available(self) -> bool:
        """Whether the transport can launch workers on this platform."""
        return self.transport.available()

    def alive_workers(self) -> int:
        """Live daemons in the persistent fleet (health-checked)."""
        return sum(
            1 for daemon in self._daemons.values() if daemon.process.is_alive()
        )

    def describe(self) -> str:
        return f"{self.transport.describe()}×{self.workers}"

    # -- task registration ---------------------------------------------------

    def _ensure_task(self, fn, report: HostRunReport) -> None:
        """Install ``fn`` as the fleet's task, reusing daemons when possible.

        Caller holds the lifecycle lock.  Same callable → nothing to do
        (the reuse path).  New callable → new token; transports that ship
        callables deliver it to live daemons over the wire (no respawn),
        fork-image transports dispose the fleet so the next spawn inherits
        the new registration.
        """
        if self._task_fn is fn and self._task_token is not None:
            return
        report.task_registered = True
        self.task_generations += 1
        payload = None
        if self.transport.ships_callable:
            try:
                payload = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                payload = None  # closures fall back to fork-image travel
        token = next(_TASK_TOKENS)
        if payload is None:
            # The callable can only travel by fork memory image: dispose the
            # fleet, register under the new token, and let the spawns below
            # inherit it.
            self._dispose_fleet()
            self._retire_task()
            _IMAGE_TASKS[token] = fn
            self._task_mode = "image"
        else:
            # Remote-ready path: live daemons pick the new callable up over
            # the wire (delivered lazily, per daemon, at first dispatch).
            self._retire_task()
            self._task_mode = "pickle"
        self._task_fn = fn
        self._task_token = token
        self._token_box[0] = token
        self._task_payload = payload

    def _retire_task(self) -> None:
        if self._task_token is not None:
            _IMAGE_TASKS.pop(self._task_token, None)
        self._task_token = None
        self._token_box[0] = None
        self._task_fn = None
        self._task_mode = None
        self._task_payload = None

    # -- fleet management ----------------------------------------------------

    def _spawn_daemon(self, report: "HostRunReport | None" = None) -> _Daemon:
        process, conn = self.transport.spawn_worker()
        daemon = _Daemon(next(self._worker_ids), process, conn)
        self.spawn_count += 1
        if report is not None:
            report.spawned += 1
        return daemon

    def _prune_dead_daemons(self, report: HostRunReport) -> None:
        """Drop fleet daemons that died between maps (e.g. SIGKILLed idle)."""
        for worker_id, daemon in list(self._daemons.items()):
            if daemon.process.is_alive():
                continue
            self.worker_deaths += 1
            report.deaths += 1
            try:
                daemon.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            daemon.process.join(timeout=0.5)
            arrayplane.reap_worker_segments(daemon.conn.worker_prefix)
            del self._daemons[worker_id]

    def _dispose_daemon(self, daemon: _Daemon) -> None:
        try:
            daemon.conn.send(("stop",))
        except OSError:
            pass
        try:
            daemon.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        daemon.process.join(timeout=0.2)
        if daemon.process.is_alive():
            daemon.process.terminate()
            daemon.process.join(timeout=2.0)
        # Whatever transfer blocks the worker created but never delivered
        # are orphans now that the process is gone; reap its namespace.
        arrayplane.reap_worker_segments(daemon.conn.worker_prefix)

    def _dispose_fleet(self) -> None:
        """Tear the persistent fleet down (task registration kept)."""
        daemons = list(self._daemons.values())
        self._daemons.clear()
        for daemon in daemons:
            self._dispose_daemon(daemon)

    def shutdown(self) -> None:
        """Reap every daemon and retire the task (idempotent, thread-safe)."""
        with LIFECYCLE_LOCK:
            self._dispose_fleet()
            self._retire_task()
            self.transport.close()

    # -- the run loop --------------------------------------------------------

    def run(self, fn, items, shards: list, steal=None, raise_original: bool = False) -> tuple:
        """Execute planned shards of ``map(fn, items)`` on worker daemons.

        Args:
            fn: the task callable (``fn(item) -> result``; must be pure).
            items: the full ordered item list the shards index into.
            shards: :class:`Shard` plan covering every item exactly once.
            steal: optional ``steal(view, worker_id) -> Shard | None`` hook
                consulted for idle workers once the queue drains (see
                :class:`SchedulerView`).
            raise_original: re-raise a failing task's *original* exception
                (when it pickled out of the worker) with the
                :class:`WorkerTaskError` carrying the remote traceback
                chained as its cause — the serial backend's semantics,
                requested by the process backend so ``except KeyError:``
                style callers behave identically across backends.  The
                default raises :class:`WorkerTaskError` itself.

        Returns:
            ``(ordered_results, report)`` where ``ordered_results`` is
            ``[fn(item) for item in items]`` and ``report`` is the run's
            :class:`HostRunReport` (accepted worker seconds included).

        Raises:
            WorkerTaskError: the callable raised inside a daemon (or, with
                ``raise_original``, the original exception re-raised).
            RuntimeError: daemons kept dying beyond the respawn budget.
        """
        items = list(items)
        report = HostRunReport()
        if not shards:
            return [], report
        try:
            items_payload_ok = True
            # Picklability probe only — out-of-band buffers are discarded
            # unread, so array-heavy item lists are classified without
            # materialising a copy of their payload bytes (the dispatch
            # path re-pickles per shard with the negotiated codec anyway).
            pickle.dumps(
                items,
                protocol=pickle.HIGHEST_PROTOCOL,
                buffer_callback=_discard_buffer,
            )
        except Exception:
            items_payload_ok = False
        # Serialise whole maps end to end: the fork-inherited registries
        # must stay stable while any daemon can be (re)spawned, and a
        # persistent fleet must never run two maps at once.  Parallelism
        # comes from the daemons inside one map, not from overlapping maps.
        # map_boundary: the sanitizer flags callers that arrive here holding
        # an instrumented lock (the map blocks on daemons; no-op when off).
        with map_boundary(f"WorkerHost.run:{self.transport.name}"), LIFECYCLE_LOCK:
            self.maps += 1
            if items_payload_ok:
                self._ensure_task(fn, report)
                self._prune_dead_daemons(report)
                token = self._task_token
                reused = len(self._daemons)
                report.reused_workers = reused
                try:
                    results = self._run_shards(
                        items, shards, token, self._daemons, report, steal,
                        one_shot=False, raise_original=raise_original,
                    )
                except BaseException:
                    # The fleet may be in an arbitrary state (half-dead,
                    # torn frames); dispose it so the next map starts clean.
                    self._dispose_fleet()
                    raise
                if reused and not report.spawned:
                    self.reused_maps += 1
                _note_fleet_owner(self)
                return results, report
            # One-shot map: items ride the fork image under a dedicated
            # token; ephemeral daemons are reaped at the end of the map and
            # the persistent fleet (if any) stays intact for the next
            # reusable map.
            report.one_shot = True
            token = next(_TASK_TOKENS)
            _IMAGE_TASKS[token] = fn
            _IMAGE_ITEMS[token] = items
            try:
                return (
                    self._run_shards(
                        items, shards, token, {}, report, steal,
                        one_shot=True, raise_original=raise_original,
                    ),
                    report,
                )
            finally:
                _IMAGE_TASKS.pop(token, None)
                _IMAGE_ITEMS.pop(token, None)

    def _run_shards(
        self,
        items: list,
        shards: list,
        token: int,
        daemons: dict,
        report: HostRunReport,
        steal,
        one_shot: bool,
        raise_original: bool = False,
    ) -> list:
        """The event loop: dispatch, collect, survive deaths.  Caller holds
        the lifecycle lock and has registered the task under ``token``."""
        dispatch_order = sorted(shards, key=lambda shard: (-shard.cost, shard.index))
        pending = deque(dispatch_order)
        completed: dict = {}
        in_flight: dict = {shard.index: set() for shard in shards}
        shard_by_index = {shard.index: shard for shard in shards}
        respawn_budget = self.max_respawns
        selector = selectors.DefaultSelector()
        failure: "BaseException | None" = None
        dispatch_started: dict = {}  # (shard index, worker id) -> perf_counter
        completed_durations: list = []  # (shard index, wall seconds) accepted
        # (shard index, worker id) -> pooled segment names pinned for that
        # dispatch (v2 shm plane only).  A pin lives exactly as long as
        # the dispatch: released when its reply arrives, its worker dies,
        # or the map ends — only then may the pool recycle the block, so a
        # worker still chewing a speculative duplicate can never see its
        # items overwritten by a later dispatch.
        dispatch_pins: dict = {}
        view = SchedulerView(
            shard_by_index=shard_by_index,
            completed=completed,
            in_flight=in_flight,
            dispatch_started=dispatch_started,
            completed_durations=completed_durations,
        )

        def spawn() -> _Daemon:
            daemon = self._spawn_daemon(report)
            daemons[daemon.worker_id] = daemon
            selector.register(daemon.conn, selectors.EVENT_READ, daemon)
            return daemon

        def shard_frame(shard: Shard) -> tuple:
            if one_shot:
                return ("shard_image", token, shard.index, shard.item_indices)
            pairs = [(index, items[index]) for index in shard.item_indices]
            return ("shard", token, shard.index, pairs)

        def dispatch(daemon: _Daemon) -> None:
            shard = None
            speculative = False
            if pending:
                shard = pending.popleft()
            elif steal is not None:
                shard = steal(view, daemon.worker_id)
                speculative = shard is not None
            if shard is None:
                daemon.shard = None
                return
            daemon.shard = shard
            in_flight[shard.index].add(daemon.worker_id)
            dispatch_started[(shard.index, daemon.worker_id)] = time.perf_counter()
            try:
                if (
                    self._task_mode == "pickle"
                    and not one_shot
                    and token not in daemon.shipped_tokens
                ):
                    daemon.conn.send(("task", token, self._task_payload))
                    # Only the newest token can still be dispatched to this
                    # daemon (and the daemon likewise dropped older
                    # callables on receipt), so the set never grows.
                    daemon.shipped_tokens = {token}
                daemon.conn.send(shard_frame(shard))
            except OSError:
                # The daemon died while idle (its EOF may still be queued in
                # the selector); requeue the shard and repair the fleet
                # instead of crashing the map.  A failed send released its
                # own pooled pins inside the codec.
                on_death(daemon)
                return
            pins = daemon.conn.take_pins()
            if pins:
                dispatch_pins[(shard.index, daemon.worker_id)] = pins
            report.dispatched += 1
            if speculative:
                report.speculative += 1

        def release_pins(key) -> None:
            names = dispatch_pins.pop(key, None)
            if names:
                arrayplane.release_segments(names)

        def retire(daemon: _Daemon, requeue: bool) -> None:
            if daemon.worker_id not in daemons:
                return  # already retired (e.g. send failure then EOF event)
            selector.unregister(daemon.conn)
            daemon.conn.close()
            daemons.pop(daemon.worker_id, None)
            shard = daemon.shard
            if shard is None:
                return
            in_flight[shard.index].discard(daemon.worker_id)
            dispatch_started.pop((shard.index, daemon.worker_id), None)
            release_pins((shard.index, daemon.worker_id))
            if (
                requeue
                and shard.index not in completed
                and not in_flight[shard.index]
                and shard not in pending
            ):
                pending.appendleft(shard)  # lost work runs next
                report.requeued += 1

        def feed_idle() -> None:
            for daemon in list(daemons.values()):
                if not pending:
                    break
                if daemon.shard is None:
                    dispatch(daemon)

        def on_death(daemon: _Daemon) -> None:
            # Shared by the EOF path and the dispatch send-failure path:
            # requeue the lost shard, spawn a replacement within budget (so
            # the fleet holds its configured width instead of shrinking for
            # the rest of the map), and put any idle daemons back to work.
            nonlocal respawn_budget
            if daemon.worker_id not in daemons:
                return  # both paths fired for the same death
            self.worker_deaths += 1
            report.deaths += 1
            retire(daemon, requeue=True)
            daemon.process.join(timeout=0.5)
            # A worker SIGKILLed mid-shard may have created transfer
            # blocks it never got to name in a frame; its prefix is dead
            # with it, so everything still linked there is an orphan.
            arrayplane.reap_worker_segments(daemon.conn.worker_prefix)
            if len(completed) < len(shards) and respawn_budget > 0:
                respawn_budget -= 1
                dispatch(spawn())
            feed_idle()

        try:
            # Reused fleet daemons re-register with this run's selector;
            # then top the fleet up to the plan's useful width.
            for daemon in daemons.values():
                daemon.shard = None
                selector.register(daemon.conn, selectors.EVENT_READ, daemon)
            wanted = min(self.workers, len(shards))
            while len(daemons) < wanted:
                spawn()
            for daemon in list(daemons.values()):
                dispatch(daemon)

            while len(completed) < len(shards) and failure is None:
                while not daemons:
                    if respawn_budget <= 0:
                        raise RuntimeError(
                            "worker host: all daemons died and the respawn "
                            f"budget ({self.max_respawns}) is exhausted"
                        )
                    respawn_budget -= 1
                    dispatch(spawn())
                idle = [
                    daemon for daemon in daemons.values() if daemon.shard is None
                ]
                events = selector.select(timeout=0.05 if idle else 5.0)
                if not events:
                    # Idle daemons re-check the steal policy as in-flight
                    # shards age into stragglers.
                    for daemon in idle:
                        dispatch(daemon)
                    continue
                for key, _ in events:
                    daemon = key.data
                    if daemon.worker_id not in daemons:
                        continue  # retired earlier in this same event batch
                    try:
                        message = daemon.conn.recv()
                    except (EOFError, OSError):
                        # Daemon death (killed, crashed, OOMed) or a
                        # poisoned stream (FrameProtocolError): requeue its
                        # shard and spawn a replacement within budget.
                        on_death(daemon)
                        continue
                    kind = message[0]
                    if kind == "done":
                        _, shard_index, elapsed, shard_results = message
                        in_flight[shard_index].discard(daemon.worker_id)
                        release_pins((shard_index, daemon.worker_id))
                        started = dispatch_started.pop(
                            (shard_index, daemon.worker_id), None
                        )
                        if shard_index not in completed:
                            completed[shard_index] = shard_results
                            report.accepted_seconds += float(elapsed)
                            if started is not None:
                                duration = time.perf_counter() - started
                                completed_durations.append(
                                    (shard_index, duration)
                                )
                                report.accepted_durations.append(
                                    (shard_index, duration)
                                )
                        daemon.shard = None
                        dispatch(daemon)
                    elif kind == "fail":
                        _, shard_index, trace, exc_bytes = message
                        in_flight[shard_index].discard(daemon.worker_id)
                        release_pins((shard_index, daemon.worker_id))
                        dispatch_started.pop((shard_index, daemon.worker_id), None)
                        if shard_index in completed or in_flight[shard_index]:
                            # A duplicated attempt failed (e.g. memory
                            # pressure from running the shard twice) while
                            # the shard was already delivered — or still has
                            # a live sibling attempt that may deliver it.
                            # Not (yet) a map failure.
                            daemon.shard = None
                            dispatch(daemon)
                            continue
                        failure = WorkerTaskError(
                            "task failed in worker daemon:\n" + trace
                        )
                        if raise_original and exc_bytes is not None:
                            try:
                                original = pickle.loads(exc_bytes)
                            except Exception:
                                pass  # keep the WorkerTaskError
                            else:
                                # Serial-backend semantics: the caller's
                                # `except <OriginalType>:` must fire; the
                                # remote traceback rides along as the cause.
                                original.__cause__ = failure
                                failure = original
                        break
                    else:  # pragma: no cover - protocol violation
                        failure = WorkerTaskError(
                            f"unexpected worker message {message[0]!r}"
                        )
                        break
            if failure is not None:
                raise failure
        finally:
            # Daemons still chewing a speculative duplicate whose shard was
            # already accepted cannot be reused — their late reply would be
            # misread as belonging to the next map — so they are reaped
            # along with every one-shot daemon; idle persistent daemons
            # stay in the fleet for the next map.
            for daemon in list(daemons.values()):
                selector.unregister(daemon.conn)
                if one_shot or daemon.shard is not None:
                    daemons.pop(daemon.worker_id, None)
                    self._dispose_daemon(daemon)
            selector.close()
            # Every pin not already released by a reply or a death belongs
            # to a dispatch this map abandoned; the pool may recycle those
            # blocks now.  Then probe-close adopted result mappings whose
            # arrays have since been garbage-collected.
            for key in list(dispatch_pins):
                release_pins(key)
            arrayplane.reclaim_segments()

        ordered = [None] * len(items)
        for shard in shards:
            shard_results = completed[shard.index]
            for item_index, value in zip(shard.item_indices, shard_results):
                ordered[item_index] = value
        return ordered
