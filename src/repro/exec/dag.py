"""Stage-DAG execution: artifact-keyed task graphs over a bounded pool.

The staged pipeline (``segment -> profile -> select -> bake -> deploy``)
runs strictly sequentially per scene, so on a multi-scene corpus every
stage of scene B waits for the *whole* of scene A even though the scenes
share nothing.  This module lifts that chain into an explicit task DAG:

* :class:`DagNode` — one ``stage x scene`` unit of work.  A node declares
  the named artifacts it consumes (``inputs``) and produces (``outputs``)
  and carries a pure ``body`` that maps the input artifacts to the output
  artifacts.  Edges are never declared directly: node A precedes node B
  exactly when one of A's outputs is one of B's inputs, so the dependency
  structure is readable off the artifact names and cannot drift from the
  data flow.
* :class:`TaskDag` — the validated graph: unique node names, a unique
  producer per artifact, every input satisfied (by a producer or a seed
  artifact), no cycles.  :meth:`~TaskDag.topological_order` is the
  deterministic schedule — ready nodes are ordered by ``(-cost, name)``,
  so the heaviest available work dispatches first (the LPT instinct of
  :class:`~repro.exec.cluster.ShardPlanner`, applied across stages).
* :class:`DagScheduler` — executes a graph on a bounded thread pool.
  Bodies are pure per scene and the heavy numerics inside them release
  the GIL (numpy) or fan out through an execution backend, so independent
  scenes genuinely overlap; per-scene stage order is preserved by the
  artifact edges alone.  ``workers <= 1`` degenerates to running the
  deterministic topological order inline — the reference the threaded
  path is pinned against.

Determinism: a node body must be a pure function of its declared inputs
(timer side effects excepted — wall clocks are observability, not golden
output), and every artifact has exactly one producer, so the final
artifact mapping is independent of completion order and of ``workers``.
The golden DAG-parity tier (``tests/test_pipeline_dag.py``) pins the full
pipeline's reports bit-identical across worker counts against the
sequential path.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro.analysis.sanitize import task_span


class DagValidationError(ValueError):
    """The graph violates the node/edge contract (duplicate producer,
    unsatisfied input, cycle, duplicate node name)."""


@dataclass(frozen=True)
class DagNode:
    """One stage-of-one-scene task in a :class:`TaskDag`.

    Args:
        name: unique node name; the convention is ``"<stage>:<scene>"``.
        stage: pipeline stage label (timer channel and cost-model key).
        scene: scene/dataset label the node belongs to.
        body: pure callable ``body(inputs: dict) -> outputs``; receives a
            mapping of the node's declared input artifacts and returns
            either a mapping holding exactly the declared outputs or — for
            single-output nodes — the bare output value.
        inputs: artifact names this node consumes.
        outputs: artifact names this node produces (globally unique).
        cost: relative (or cost-model-predicted, in seconds) weight used
            to prioritise ready nodes; heavier first.
    """

    name: str
    stage: str
    scene: str
    body: "callable"
    inputs: tuple = ()
    outputs: tuple = ()
    cost: float = 1.0


@dataclass
class DagRunResult:
    """Everything one :meth:`DagScheduler.run` produced.

    ``artifacts`` is the golden part (seed artifacts plus every node
    output); ``node_seconds`` and ``completed_order`` are observability —
    wall clocks and completion order vary run to run and must never feed a
    golden artefact.
    """

    artifacts: dict = field(default_factory=dict)
    node_seconds: dict = field(default_factory=dict)
    completed_order: list = field(default_factory=list)


class TaskDag:
    """A validated artifact-keyed task graph."""

    def __init__(self, nodes=()) -> None:
        self._nodes: dict = {}
        self._producer: dict = {}  # artifact name -> node name
        for node in nodes:
            self.add(node)

    def add(self, node: DagNode) -> DagNode:
        """Add one node, enforcing unique names and unique producers."""
        if node.name in self._nodes:
            raise DagValidationError(f"duplicate node name {node.name!r}")
        for artifact in node.outputs:
            owner = self._producer.get(artifact)
            if owner is not None:
                raise DagValidationError(
                    f"artifact {artifact!r} produced by both {owner!r} and "
                    f"{node.name!r}; every artifact has exactly one producer"
                )
        self._nodes[node.name] = node
        for artifact in node.outputs:
            self._producer[artifact] = node.name
        return node

    @property
    def nodes(self) -> list:
        """The nodes, in insertion order."""
        return list(self._nodes.values())

    def node(self, name: str) -> DagNode:
        return self._nodes[name]

    def dependencies(self, seed_artifacts=()) -> dict:
        """Node name -> sorted producer node names, validating coverage.

        ``seed_artifacts`` are inputs supplied by the caller at run time
        (no producing node required).
        """
        seeds = frozenset(seed_artifacts)
        dependencies: dict = {}
        for node in self._nodes.values():
            producers = []
            for artifact in node.inputs:
                owner = self._producer.get(artifact)
                if owner is not None:
                    producers.append(owner)
                elif artifact not in seeds:
                    raise DagValidationError(
                        f"node {node.name!r} consumes {artifact!r}, which no "
                        "node produces and the caller did not seed"
                    )
            dependencies[node.name] = sorted(set(producers))
        return dependencies

    def topological_order(self, seed_artifacts=()) -> list:
        """The deterministic schedule: a topological order in which ready
        nodes dispatch heaviest-first, ``(-cost, name)`` as the priority.

        Raises :class:`DagValidationError` on cycles or unsatisfied
        inputs; the cycle message names the nodes left blocked.
        """
        dependencies = self.dependencies(seed_artifacts)
        dependents: dict = {name: [] for name in self._nodes}
        indegree: dict = {}
        for name, producers in dependencies.items():
            indegree[name] = len(producers)
            for producer in producers:
                dependents[producer].append(name)
        ready = [
            (-node.cost, node.name)
            for node in self._nodes.values()
            if indegree[node.name] == 0
        ]
        heapq.heapify(ready)
        order: list = []
        while ready:
            _, name = heapq.heappop(ready)
            order.append(self._nodes[name])
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    heapq.heappush(
                        ready, (-self._nodes[dependent].cost, dependent)
                    )
        if len(order) != len(self._nodes):
            blocked = sorted(
                name for name, degree in indegree.items() if degree > 0
            )
            raise DagValidationError(f"cycle among nodes {blocked!r}")
        return order


def _execute_node(node: DagNode, artifacts: dict) -> tuple:
    """Run one node body; return ``(outputs dict, elapsed seconds)``."""
    inputs = {name: artifacts[name] for name in node.inputs}
    started = time.perf_counter()
    # task_span: the concurrency sanitizer counts this body as in flight
    # (a no-op context manager unless REPRO_SANITIZE is set).
    with task_span():
        produced = node.body(inputs)
    elapsed = time.perf_counter() - started
    expected = tuple(node.outputs)
    if isinstance(produced, dict) and sorted(produced) == sorted(expected):
        outputs = dict(produced)
    elif len(expected) == 1:
        outputs = {expected[0]: produced}
    else:
        raise DagValidationError(
            f"node {node.name!r} must return a mapping holding exactly its "
            f"declared outputs {expected!r}"
        )
    return outputs, elapsed


class DagScheduler:
    """Executes a :class:`TaskDag` on at most ``workers`` threads.

    Thread-level parallelism is the right tier here: node bodies spend
    their time in GIL-releasing numpy kernels or hand work to an execution
    backend, and the artifacts they exchange are plain in-process objects
    (scene datasets and baked bundles do not all pickle, so a process tier
    would force the fork-image one-shot path on every node).  All
    scheduler state is local to :meth:`run`; worker threads only execute
    node bodies and return their outputs, so no shared structure is
    mutated concurrently.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(int(workers), 1)

    def run(self, dag: TaskDag, artifacts=None) -> DagRunResult:
        """Execute every node; returns the final artifact mapping plus
        per-node wall clocks.  ``artifacts`` seeds caller-supplied inputs."""
        result = DagRunResult(artifacts=dict(artifacts or {}))
        order = dag.topological_order(result.artifacts)
        if self.workers <= 1 or len(order) <= 1:
            for node in order:
                outputs, elapsed = _execute_node(node, result.artifacts)
                result.artifacts.update(outputs)
                result.node_seconds[node.name] = elapsed
                result.completed_order.append(node.name)
            return result

        dependencies = dag.dependencies(result.artifacts)
        dependents: dict = {name: [] for name in dependencies}
        indegree: dict = {}
        for name, producers in dependencies.items():
            indegree[name] = len(producers)
            for producer in producers:
                dependents[producer].append(name)
        ready = [
            (-dag.node(name).cost, name)
            for name, degree in indegree.items()
            if degree == 0
        ]
        heapq.heapify(ready)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            in_flight: dict = {}
            while ready or in_flight:
                # Keep at most ``workers`` bodies in flight so the ready
                # heap keeps reprioritising as costs unlock, instead of
                # committing the whole frontier to the executor queue.
                while ready and len(in_flight) < self.workers:
                    _, name = heapq.heappop(ready)
                    node = dag.node(name)
                    future = pool.submit(
                        _execute_node, node, dict(result.artifacts)
                    )
                    in_flight[future] = name
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    name = in_flight.pop(future)
                    outputs, elapsed = future.result()
                    result.artifacts.update(outputs)
                    result.node_seconds[name] = elapsed
                    result.completed_order.append(name)
                    for dependent in dependents[name]:
                        indegree[dependent] -= 1
                        if indegree[dependent] == 0:
                            heapq.heappush(
                                ready, (-dag.node(dependent).cost, dependent)
                            )
        return result
