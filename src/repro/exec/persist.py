"""Persistent, content-addressed on-disk tier of the artifact store.

The paper's headline economics are that NeRFlex's expensive preparation —
the profiling sweeps and the per-object bakes — is a one-shot cost that
amortises across deployments.  The in-memory
:class:`~repro.exec.artifacts.ArtifactStore` realises that within one
process; this module extends it across *invocations*: fitted profile curves
and baked sub-models are serialised to a cache directory
(``$REPRO_ARTIFACT_DIR``, or ``~/.cache/repro`` by default), so a second
benchmark run, CI job or example invocation on the same scenes skips the
profile and bake stages entirely.

Design constraints, in decreasing order of importance:

* **Bit-identity.**  A reloaded artefact must be indistinguishable from the
  freshly computed one everywhere the library can observe it: profile
  predictions, selector decisions, baked sizes and rendered images must all
  match exactly.  Serialisation is therefore explicit and lossless — float64
  arrays for every numeric field, never a textual round-trip.  The one
  deliberate representation change is that a :class:`~repro.baking.texture.
  LazyTexture` (whose radiance closure cannot leave the process) is
  materialised into its texel array on save; lazy lookup quantises to texel
  centres, so sampling the stored atlas is bit-identical by construction.
* **Key stability across processes.**  Disk filenames are SHA-256 digests
  of a canonical, ``hash()``-free encoding of the content-addressed key
  tuples the pipeline already builds, so two processes (or two CI runs)
  derive the same filename for the same inputs.
* **Robustness.**  Files carry a magic + format-version header and a
  payload checksum; a version mismatch, truncation or corruption is treated
  as a miss (and the file is discarded), never an error.  Writes go through
  a same-directory temp file and :func:`os.replace`, so a crashed or
  concurrent writer can leave at worst a stale temp file, never a torn
  artefact.
* **Bounded size.**  The store evicts least-recently-used files (by access
  time, refreshed on every hit) once the directory exceeds ``max_bytes``.

``FORMAT_VERSION`` doubles as the *algorithm epoch*: the content-addressed
keys capture every input to an artefact but not the code that computes it,
so any change to baking/profiling semantics must bump the version to
invalidate stale caches (CI couples its cache key to the same constant).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import struct
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.config import env as repro_env

#: Environment variable naming the on-disk artifact directory.  When unset,
#: callers that *opt in* to persistence (e.g. ``create_artifact_store``
#: with ``directory="auto"``) fall back to :func:`default_artifact_dir`.
ARTIFACT_DIR_ENV_VAR = repro_env.REPRO_ARTIFACT_DIR.name

#: Environment variable bounding the on-disk store size, in megabytes.
ARTIFACT_MAX_MB_ENV_VAR = repro_env.REPRO_ARTIFACT_MAX_MB.name

#: Default on-disk bound: generous for a benchmark suite (a full figure
#: session stores well under 1 GB of profiles and baked models).  Declared
#: (with the MiB parser) in :mod:`repro.config.env`.
DEFAULT_MAX_BYTES = repro_env.REPRO_ARTIFACT_MAX_MB.default

#: File magic: identifies repro artefact containers.
MAGIC = b"REPROART"

#: Container/algorithm version.  Bump on any change to the serialised
#: layout *or* to the semantics of profiling/baking (see module docstring).
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sIQ32s")  # magic, version, payload length, sha256


# ---------------------------------------------------------------------------
# Canonical keys
# ---------------------------------------------------------------------------


def canonical_key(key) -> str:
    """A deterministic, process-independent string encoding of a store key.

    Keys are the content-addressed tuples assembled by the pipeline: nests
    of strings, booleans, ints, floats, ``None`` and frozen dataclasses
    (:class:`~repro.baking.baked_model.SizeConstants`).  Every leaf is
    tagged with its type so ``1``, ``1.0``, ``True`` and ``"1"`` cannot
    collide, and floats use ``repr`` (shortest round-trip, stable across
    platforms and processes).  Raises ``TypeError`` for values outside this
    vocabulary — such keys are memory-only.
    """
    out: list = []
    _canonicalize(key, out)
    return "".join(out)


def _canonicalize(value, out: list) -> None:
    if value is None:
        out.append("N;")
    elif value is True:
        out.append("T;")
    elif value is False:
        out.append("F;")
    elif isinstance(value, str):
        out.append(f"s{len(value.encode('utf-8'))}:{value};")
    elif isinstance(value, (int, np.integer)):
        out.append(f"i{int(value)};")
    elif isinstance(value, (float, np.floating)):
        out.append(f"f{float(value)!r};")
    elif isinstance(value, (tuple, list)):
        out.append("(")
        for item in value:
            _canonicalize(item, out)
        out.append(");")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(f"d{type(value).__name__}(")
        for f in dataclasses.fields(value):
            _canonicalize(f.name, out)
            _canonicalize(getattr(value, f.name), out)
        out.append(");")
    else:
        raise TypeError(
            f"cannot canonicalise {type(value).__name__!r} for a persistent "
            "artifact key"
        )


def key_digest(key) -> str:
    """SHA-256 hex digest of the canonical key encoding."""
    return hashlib.sha256(canonical_key(key).encode("utf-8")).hexdigest()


def key_filename(key) -> str:
    """Disk filename for a store key: ``<kind>-<digest>.art``.

    The leading kind tag is kept human-readable so a cache directory can be
    inspected (and selectively cleared) by eye.
    """
    kind = key[0] if isinstance(key, tuple) and key and isinstance(key[0], str) else "artifact"
    safe_kind = "".join(c if c.isalnum() else "-" for c in kind)[:24]
    return f"{safe_kind}-{key_digest(key)}.art"


# ---------------------------------------------------------------------------
# Artefact codecs
# ---------------------------------------------------------------------------
#
# Artefacts are encoded as (meta, arrays): a JSON-able metadata dict plus a
# name -> ndarray mapping.  No pickle anywhere — the payload is a plain
# ``np.savez`` archive (loaded with ``allow_pickle=False``) with the JSON
# metadata stored under the reserved ``__meta__`` entry, so a corrupt or
# malicious cache file can at worst fail to parse.


def _encode_profile(profile) -> tuple:
    measurements = list(profile.measurements.items())
    meta = {
        "artifact": "profile",
        "name": profile.name,
        "detail_weight": float(profile.detail_weight),
        "granularities": [int(g) for g in profile.config_space.granularities],
        "patch_sizes": [int(p) for p in profile.config_space.patch_sizes],
        "quality_model": {
            "qmax": float(profile.quality_model.qmax),
            "k": float(profile.quality_model.k),
            "a": float(profile.quality_model.a),
            "b": float(profile.quality_model.b),
        },
        "size_model": {
            "s0": float(profile.size_model.s0),
            "s1": float(profile.size_model.s1),
            "s2": float(profile.size_model.s2),
            "s3": float(profile.size_model.s3),
        },
    }
    arrays = {
        "measured_g": np.array(
            [config.granularity for config, _ in measurements], dtype=np.int64
        ),
        "measured_p": np.array(
            [config.patch_size for config, _ in measurements], dtype=np.int64
        ),
        "measured_quality": np.array(
            [quality for _, (quality, _) in measurements], dtype=np.float64
        ),
        "measured_size_mb": np.array(
            [size for _, (_, size) in measurements], dtype=np.float64
        ),
    }
    return meta, arrays


def _decode_profile(meta: dict, arrays: dict):
    from repro.core.config_space import Configuration, ConfigurationSpace
    from repro.core.profiler import ObjectProfile, QualityModel, SizeModel

    measurements = {
        Configuration(int(g), int(p)): (float(quality), float(size))
        for g, p, quality, size in zip(
            arrays["measured_g"],
            arrays["measured_p"],
            arrays["measured_quality"],
            arrays["measured_size_mb"],
        )
    }
    return ObjectProfile(
        name=meta["name"],
        config_space=ConfigurationSpace(
            granularities=tuple(meta["granularities"]),
            patch_sizes=tuple(meta["patch_sizes"]),
        ),
        quality_model=QualityModel(**meta["quality_model"]),
        size_model=SizeModel(**meta["size_model"]),
        measurements=measurements,
        detail_weight=float(meta["detail_weight"]),
    )


def _texture_texels(model) -> np.ndarray:
    """The full texel array of a baked sub-model's texture.

    A materialised :class:`~repro.baking.texture.TextureAtlas` already holds
    it; a :class:`~repro.baking.texture.LazyTexture` is materialised by
    evaluating every texel centre — the exact coordinates lazy lookup
    quantises to, so sampling the stored atlas is bit-identical to sampling
    the original lazy texture.
    """
    from repro.baking.texture import bake_texture_atlas

    texture = model.texture
    texels = getattr(texture, "texels", None)
    if texels is not None:
        return np.asarray(texels, dtype=np.float64)
    return bake_texture_atlas(
        texture.radiance_fn, model.faces, int(model.patch_size)
    ).texels


def _encode_baked(model) -> tuple:
    grid = model.grid
    constants = model.size_constants
    meta = {
        "artifact": "baked",
        "name": model.name,
        "patch_size": int(model.patch_size),
        "resolution": int(grid.resolution),
        "voxel_size": float(grid.voxel_size),
        "size_constants": {
            f.name: float(getattr(constants, f.name))
            for f in dataclasses.fields(constants)
        },
    }
    arrays = {
        "origin": np.asarray(grid.origin, dtype=np.float64),
        # Occupancy packs 8 cells per byte; the exact shape is recovered
        # from ``resolution``.
        "occupancy_bits": np.packbits(grid.occupancy.reshape(-1)),
        "face_voxel_indices": np.asarray(model.faces.voxel_indices, dtype=np.int64),
        "face_axes": np.asarray(model.faces.axes, dtype=np.int8),
        "face_signs": np.asarray(model.faces.signs, dtype=np.int8),
        "texels": _texture_texels(model),
    }
    return meta, arrays


def _decode_baked(meta: dict, arrays: dict):
    from repro.baking.baked_model import BakedSubModel, SizeConstants
    from repro.baking.meshing import QuadFaceSet
    from repro.baking.texture import TextureAtlas
    from repro.baking.voxelize import VoxelGrid

    resolution = int(meta["resolution"])
    cells = resolution**3
    occupancy = (
        np.unpackbits(arrays["occupancy_bits"], count=cells)
        .astype(bool)
        .reshape(resolution, resolution, resolution)
    )
    grid = VoxelGrid(
        origin=arrays["origin"],
        voxel_size=float(meta["voxel_size"]),
        resolution=resolution,
        occupancy=occupancy,
    )
    faces = QuadFaceSet(
        voxel_indices=arrays["face_voxel_indices"],
        axes=arrays["face_axes"],
        signs=arrays["face_signs"],
        grid=grid,
    )
    patch_size = int(meta["patch_size"])
    return BakedSubModel(
        name=meta["name"],
        grid=grid,
        faces=faces,
        texture=TextureAtlas(
            patch_size=patch_size, texels=np.asarray(arrays["texels"], dtype=np.float64)
        ),
        patch_size=patch_size,
        size_constants=SizeConstants(**meta["size_constants"]),
    )


def encode_artifact(value) -> "tuple | None":
    """Encode a supported artefact to ``(meta, arrays)``; ``None`` otherwise.

    Dispatch is structural (profile-shaped versus baked-model-shaped) so
    the codec never imports the heavy modules for unsupported values.
    """
    if hasattr(value, "quality_model") and hasattr(value, "size_model"):
        return _encode_profile(value)
    if hasattr(value, "grid") and hasattr(value, "texture"):
        return _encode_baked(value)
    return None


_DECODERS = {"profile": _decode_profile, "baked": _decode_baked}


def decode_artifact(meta: dict, arrays: dict):
    """Rebuild an artefact from its ``(meta, arrays)`` encoding."""
    decoder = _DECODERS.get(meta.get("artifact"))
    if decoder is None:
        raise ValueError(f"unknown artifact payload {meta.get('artifact')!r}")
    return decoder(meta, arrays)


# ---------------------------------------------------------------------------
# Container format
# ---------------------------------------------------------------------------


def _pack(meta: dict, arrays: dict) -> bytes:
    buffer = io.BytesIO()
    payload_arrays = dict(arrays)
    payload_arrays["__meta__"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez(buffer, **payload_arrays)
    payload = buffer.getvalue()
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, len(payload), hashlib.sha256(payload).digest()
    )
    return header + payload


class _InvalidArtifact(Exception):
    """Raised internally for any unreadable artefact file."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _unpack(blob: bytes) -> tuple:
    if len(blob) < _HEADER.size:
        raise _InvalidArtifact("truncated")
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise _InvalidArtifact("corrupt")
    if version != FORMAT_VERSION:
        raise _InvalidArtifact("version")
    payload = blob[_HEADER.size :]
    if len(payload) != length or hashlib.sha256(payload).digest() != digest:
        raise _InvalidArtifact("corrupt")
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as exc:  # zip/npz damage past the checksum
        raise _InvalidArtifact("corrupt") from exc
    meta_bytes = arrays.pop("__meta__", None)
    if meta_bytes is None:
        raise _InvalidArtifact("corrupt")
    try:
        meta = json.loads(bytes(meta_bytes.tobytes()).decode("utf-8"))
    except ValueError as exc:
        raise _InvalidArtifact("corrupt") from exc
    return meta, arrays


# ---------------------------------------------------------------------------
# The disk store
# ---------------------------------------------------------------------------


@dataclass
class DiskStoreStats:
    """Operation counters of one :class:`DiskArtifactStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    version_mismatches: int = 0
    encode_skips: int = 0
    write_errors: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def default_artifact_dir() -> str:
    """The default persistent cache directory (``~/.cache/repro``)."""
    base = repro_env.XDG_CACHE_HOME.get() or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro")


def artifact_dir_from_env() -> "str | None":
    """The directory named by ``$REPRO_ARTIFACT_DIR``, if any."""
    return repro_env.REPRO_ARTIFACT_DIR.get()


def max_bytes_from_env() -> int:
    """On-disk size bound from ``$REPRO_ARTIFACT_MAX_MB`` (default 4 GiB)."""
    return repro_env.REPRO_ARTIFACT_MAX_MB.get()


class DiskArtifactStore:
    """Content-addressed artefact files under one cache directory.

    Args:
        root: cache directory (created on first use).
        max_bytes: total-size bound; least-recently-used files (by access
            time, refreshed on every hit) are evicted beyond it.  ``None``
            consults ``$REPRO_ARTIFACT_MAX_MB`` and defaults to 4 GiB.

    The store is safe against concurrent writers on one machine (atomic
    same-directory renames; last write wins on a key collision, which is
    harmless because keys are content-addressed and builds deterministic).
    It deliberately has no in-memory index: every lookup goes to the
    filesystem, and the memory tier above it absorbs the hot path.
    """

    def __init__(self, root: str, max_bytes: "int | None" = None) -> None:
        self.root = os.path.abspath(os.path.expanduser(root))
        self.max_bytes = max_bytes_from_env() if max_bytes is None else int(max_bytes)
        if self.max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.stats = DiskStoreStats()

    # -- paths --------------------------------------------------------------

    def path_for(self, key) -> str:
        return os.path.join(self.root, key_filename(key))

    def _entries(self) -> list:
        """Current ``(path, size, access_time)`` artefact entries."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        entries = []
        for name in names:
            if not name.endswith(".art"):
                continue
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:
                # Includes FileNotFoundError: a concurrent evictor removed
                # the entry between listdir and stat — already gone.
                continue
            entries.append((path, stat.st_size, stat.st_atime))
        return entries

    def size_bytes(self) -> int:
        """Total bytes currently stored."""
        return sum(size for _, size, _ in self._entries())

    def __len__(self) -> int:
        return len(self._entries())

    # -- read / write -------------------------------------------------------

    def get(self, key):
        """Load and decode the artefact for ``key`` (``None`` on any miss).

        Unreadable files — wrong magic, other format version, truncation,
        checksum or archive damage — are counted, removed and reported as
        misses, so a stale or torn cache can never break a run.
        """
        try:
            path = self.path_for(key)
            with open(path, "rb") as handle:
                blob = handle.read()
        except TypeError:
            # Key outside the canonical vocabulary: such a key can never
            # have been stored, so this is a plain miss (matching the
            # memory-only store's behaviour), not an error.
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            return None
        try:
            meta, arrays = _unpack(blob)
            value = decode_artifact(meta, arrays)
        except _InvalidArtifact as invalid:
            if invalid.reason == "version":
                self.stats.version_mismatches += 1
            else:
                self.stats.corrupt += 1
            self.stats.misses += 1
            self._discard(path)
            return None
        except Exception:
            # Decoder-level damage (e.g. arrays missing): same contract.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._discard(path)
            return None
        self.stats.hits += 1
        self._touch(path)
        return value

    def put(self, key, value) -> bool:
        """Persist an artefact; returns whether anything was written.

        Values without a codec (and keys outside the canonical vocabulary)
        are skipped silently — the memory tier still holds them.  So are
        values a codec cannot faithfully encode (e.g. a profile carrying
        the reference-only paper model classes): persistence must never
        turn a working in-memory store into an error.
        """
        try:
            encoded = encode_artifact(value)
            path = self.path_for(key)
        except (TypeError, AttributeError):
            self.stats.encode_skips += 1
            return False
        if encoded is None:
            self.stats.encode_skips += 1
            return False
        blob = _pack(*encoded)
        # An unwritable or full cache directory degrades to memory-only
        # operation (counted as a write error), honouring the same
        # never-an-error contract as the read path.
        temp_path = None
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        except OSError:
            if temp_path is not None:
                self._discard(temp_path)
            self.stats.write_errors += 1
            return False
        except BaseException:
            if temp_path is not None:
                self._discard(temp_path)
            raise
        self.stats.puts += 1
        self._evict_to_bound()
        return True

    def __contains__(self, key) -> bool:
        try:
            return os.path.exists(self.path_for(key))
        except TypeError:
            return False

    def clear(self) -> int:
        """Remove every stored artefact; returns how many were removed."""
        removed = 0
        for path, _, _ in self._entries():
            if self._discard(path):
                removed += 1
        return removed

    def remove_kind(self, kind: str) -> int:
        """Remove every artefact whose key led with the given kind tag."""
        prefix = "".join(c if c.isalnum() else "-" for c in kind)[:24] + "-"
        removed = 0
        for path, _, _ in self._entries():
            if os.path.basename(path).startswith(prefix):
                if self._discard(path):
                    removed += 1
        return removed

    # -- eviction -----------------------------------------------------------

    def _evict_to_bound(self) -> None:
        """Evict least-recently-used artefacts until the byte bound holds.

        Several processes may share one cache directory (two stores, or two
        cluster workers), so every file operation here races concurrent
        evictors: an entry listed a moment ago may already be gone by the
        time it is statted or unlinked.  Already-gone entries are treated
        exactly like entries this store evicted itself — they stop counting
        toward the bound — but only files *this* store actually removed are
        counted as its evictions.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        # Oldest access first; the file just written is naturally newest.
        for path, size, _ in sorted(entries, key=lambda entry: entry[2]):
            if total <= self.max_bytes:
                break
            if self._discard(path):
                self.stats.evictions += 1
                total -= size
            elif not os.path.exists(path):
                # A concurrent evictor removed it first: the entry no longer
                # occupies the directory, but it is not our eviction.
                total -= size
            # else: unremovable (e.g. permissions) — it still occupies the
            # directory, so it must not be counted as freed space.

    @staticmethod
    def _touch(path: str) -> None:
        """Refresh a file's access time (the LRU ordering used by eviction).

        Filesystems mounted ``noatime`` would otherwise never update it.
        """
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def _discard(path: str) -> bool:
        """Remove ``path``; ``False`` when it was already gone or unremovable.

        A missing file is the expected outcome of losing a race with a
        concurrent evictor (another process sharing the directory) and must
        never surface as :class:`FileNotFoundError` to a caller.
        """
        try:
            os.remove(path)
        except FileNotFoundError:
            return False  # a concurrent evictor got there first
        except OSError:
            return False
        return True
