"""Pluggable execution backends for the library's bulk workloads.

Every embarrassingly parallel workload in the reproduction — ray chunks in
:class:`repro.render.RenderEngine`, profiler measurements, per-object bake
geometry, baseline evaluation — is expressed as an ordered ``map(fn, items)``
and routed through one of three interchangeable backends:

* :class:`SerialBackend` — a plain in-process loop; the bit-identical
  reference every other backend is pinned against.
* :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  fan-out (the engine's historical ``workers`` knob).  Threads share memory,
  so tasks may mutate caller state, but the Python-heavy marcher loops are
  GIL-bound and only numpy-releasing sections overlap.
* :class:`ProcessBackend` — a ``fork``-based process pool that sidesteps the
  GIL entirely.  Workers inherit the parent's memory image, so the task
  callable is **never pickled** (closures over scenes, SDF lambdas and lazy
  textures all work).  The pool is persistent: consecutive maps with the
  same callable reuse the forked workers (items then cross the task queue
  pickled); a new callable re-forks, and maps whose items do not pickle
  fall back to a one-shot fork that inherits the items by memory image too.
  Task side effects (cache writes) stay in the worker and are re-applied by
  the caller from the returned values.

Backends are selected by name — ``PipelineConfig.backend``, the
``REPRO_BACKEND`` environment variable, or :func:`resolve_backend` directly.
All three produce bit-identical results for the workloads they run (pinned
in ``tests/test_exec_backends.py``): tasks are pure functions of their item
and results are assembled in item order.  Every task currently shipped is
fully deterministic; should a future workload need randomness, it must
derive its stream from :func:`shard_rng` — a pure function of
``(seed, shard_index)`` for integer seeds — so the draw never depends on
which worker (or in which order) a shard executes.

A fourth backend, :class:`repro.exec.cluster.ClusterBackend` (name
``"cluster"``), executes cost-weighted shards on worker daemons behind a
length-prefixed socket protocol — see :mod:`repro.exec.cluster`.  It
registers itself into :data:`BACKENDS` on import; :func:`resolve_backend`
imports it lazily when the name is requested.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor

import numpy as np

#: Environment variable that overrides the default backend selection.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Backend used when neither the caller nor the environment picks one.  The
#: thread backend with one worker degenerates to the serial loop, so the
#: default is behaviour-preserving.
DEFAULT_BACKEND_NAME = "thread"


def fresh_seed_root() -> int:
    """A fresh OS-entropy seed root for one map's nondeterministic streams.

    Callers that want nondeterministic *but shard-count-invariant* shard
    streams must draw one root per map and pass it as the ``seed`` of every
    shard's :func:`shard_rng` — the draw then depends only on the root and
    the item index, never on how items were grouped into shards or which
    worker ran them.
    """
    return int(np.random.SeedSequence().entropy)


def shard_rng(seed: "int | None", shard_index: int) -> np.random.Generator:
    """Deterministic, order-independent generator for one shard of work.

    Unlike :func:`repro.utils.rng.derive_rng` (which draws entropy from the
    parent generator and therefore depends on call order), the shard stream
    is a pure function of ``(seed, shard_index)`` for any integer seed.
    Two backends that execute shards in different orders — or on different
    workers — therefore draw identical numbers per shard, which is what
    keeps randomised workloads bit-identical across backends.

    ``seed=None`` explicitly requests nondeterminism and draws a fresh
    entropy root (via :func:`fresh_seed_root`) for this call alone — it
    must never alias the deterministic ``seed=0`` stream, or
    "nondeterministic" callers would silently collide with seeded runs.
    Callers that need one consistent nondeterministic stream per *map*
    should draw :func:`fresh_seed_root` once and pass the int.
    """
    root = fresh_seed_root() if seed is None else int(seed)
    sequence = np.random.SeedSequence([root, int(shard_index)])
    return np.random.default_rng(sequence)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def in_worker_process() -> bool:
    """Whether the current process is a pool worker (workers must not fork)."""
    process = multiprocessing.current_process()
    return bool(process.daemon) or process.name != "MainProcess"


class Backend:
    """Ordered-map execution backend.

    ``map(fn, items)`` returns ``[fn(item) for item in items]`` — same
    length, same order, computed with the backend's execution strategy.
    When ``timer`` and ``stage`` are provided, the wall-clock time spent
    *inside the tasks* (summed across workers) is attributed to the stage
    via :meth:`repro.utils.timing.StageTimer.add_worker`, so multi-process
    runs do not silently drop worker-side time from the overhead analysis.
    """

    name = "base"
    workers = 1

    def map(self, fn, items, timer=None, stage=None) -> list:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name}({self.workers})"


def _timed(fn, item) -> tuple:
    start = time.perf_counter()
    result = fn(item)
    return time.perf_counter() - start, result


def _credit(timer, stage, pairs) -> list:
    """Record summed task seconds on the timer; return the bare results."""
    if timer is not None and stage is not None:
        timer.add_worker(stage, float(sum(elapsed for elapsed, _ in pairs)))
    return [result for _, result in pairs]


class SerialBackend(Backend):
    """The in-process reference backend: a plain ordered loop."""

    name = "serial"

    def __init__(self, workers: "int | None" = None) -> None:
        self.workers = 1

    def map(self, fn, items, timer=None, stage=None) -> list:
        items = list(items)
        if timer is None or stage is None:
            return [fn(item) for item in items]
        return _credit(timer, stage, [_timed(fn, item) for item in items])


class ThreadBackend(Backend):
    """Thread-pool fan-out (shared memory, GIL-bound for pure-Python tasks)."""

    name = "thread"

    def __init__(self, workers: "int | None" = None) -> None:
        self.workers = max(int(workers) if workers is not None else 1, 1)

    def map(self, fn, items, timer=None, stage=None) -> list:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return SerialBackend().map(fn, items, timer=timer, stage=stage)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            if timer is None or stage is None:
                return list(pool.map(fn, items))
            pairs = list(pool.map(lambda item: _timed(fn, item), items))
        return _credit(timer, stage, pairs)


#: Task state inherited by forked workers (set immediately before the fork).
#: Because workers are forked *after* these are assigned, the callable and
#: its items travel by memory image, never through pickle.  ``_FORK_LOCK``
#: serialises whole ``map`` calls: two threads mapping concurrently would
#: otherwise overwrite each other's task state, and the globals must stay
#: valid for the pool's entire lifetime (a pool that replaces a dead worker
#: re-forks mid-map and must still see this map's task state).
_TASK_FN = None
_TASK_ITEMS: "list | None" = None
_FORK_LOCK = threading.Lock()

#: Task callables of the *persistent* pools, keyed by a per-pool token.
#: Entries are added immediately before the pool is forked (so workers
#: inherit them by memory image) and removed only when the pool is disposed
#: — therefore a replacement worker re-forked by a live pool at any later
#: time still finds its own pool's callable under its token, even after
#: other pools have come and gone.
_POOL_TASKS: dict = {}
_POOL_TOKENS = itertools.count()

#: Live backends with persistent pools, for interpreter-exit cleanup.
_LIVE_BACKENDS: "weakref.WeakSet" = weakref.WeakSet()

#: Bound on concurrently *live* persistent pools across all backend
#: instances.  Pipelines, engines and baselines each resolve their own
#: backend; without a bound, every instance's last pool would idle until
#: interpreter exit (workers each pinning a copy-on-write image of the
#: parent).  Pools are disposed least-recently-used beyond this.
_MAX_LIVE_POOLS = 2

#: Backends owning live pools, oldest first (weakrefs; callers hold
#: ``_FORK_LOCK``).
_POOL_OWNERS: list = []


def _note_pool_owner(backend) -> None:
    """Mark ``backend``'s pool most-recently-used; evict idle pools beyond
    the global bound.  Caller holds ``_FORK_LOCK``, so no evicted pool can
    have a map in flight."""
    _POOL_OWNERS[:] = [
        ref
        for ref in _POOL_OWNERS
        if ref() is not None and ref() is not backend and ref()._pool is not None
    ]
    _POOL_OWNERS.append(weakref.ref(backend))
    while len(_POOL_OWNERS) > _MAX_LIVE_POOLS:
        oldest = _POOL_OWNERS.pop(0)()
        if oldest is not None:
            oldest._dispose_pool()


def shutdown_process_pools() -> None:
    """Shut down every live :class:`ProcessBackend` pool (atexit hook)."""
    for backend in list(_LIVE_BACKENDS):
        backend.shutdown()


atexit.register(shutdown_process_pools)


def _run_forked_task(index: int) -> tuple:
    """Execute one inherited task in a forked worker; time it locally."""
    start = time.perf_counter()
    result = _TASK_FN(_TASK_ITEMS[index])
    return time.perf_counter() - start, result


def _reap_pool(pool, token) -> None:
    """Terminate a persistent pool and drop its task registration.

    Module-level so :func:`weakref.finalize` can run it when a backend is
    garbage-collected without an explicit :meth:`ProcessBackend.shutdown`.
    """
    pool.terminate()
    pool.join()
    _POOL_TASKS.pop(token, None)


def _run_pooled_task(payload: tuple) -> tuple:
    """Execute one task in a persistent-pool worker; time it locally.

    The item arrives pickled through the task queue; the callable was
    inherited by memory image when the pool was forked and is looked up by
    its pool token.
    """
    token, item = payload
    start = time.perf_counter()
    result = _POOL_TASKS[token](item)
    return time.perf_counter() - start, result


class ProcessBackend(Backend):
    """Fork-based process pool: true multi-core execution of Python tasks.

    Sharding contract: tasks must be pure functions of their item (caller
    state mutated inside a worker is lost — callers re-apply side effects
    from the returned values), return values must pickle, and any
    randomness must come from :func:`shard_rng` keyed by the item index.

    The pool is **persistent**: the first map forks ``workers`` children
    that inherit the task callable by memory image, and consecutive maps
    with the *same* callable reuse them — items cross the task queue
    pickled, results come back pickled, and nothing is re-forked.  A map
    with a different callable disposes the pool and forks a fresh one (the
    callable itself can only travel by fork).  Maps whose items do not
    pickle take the one-shot fork path instead, inheriting both callable
    and items by memory image exactly as before; the persistent pool is
    left intact for the next reusable map.  :meth:`shutdown` (also run at
    interpreter exit) reaps the children.

    Falls back to the serial loop when the platform lacks ``fork`` (the
    inheritance trick requires it), when called from inside a pool worker
    (daemonic workers cannot fork children), or when the workload is too
    small to amortise a dispatch.
    """

    name = "process"

    def __init__(self, workers: "int | None" = None) -> None:
        default = os.cpu_count() or 1
        self.workers = max(int(workers) if workers is not None else default, 1)
        self._pool = None
        self._pool_fn = None
        self._pool_token = None
        self._pool_size = 0
        self._pool_finalizer = None
        #: Number of pools forked over this backend's lifetime; a map served
        #: without this increasing reused the persistent pool.
        self.fork_count = 0
        #: Number of times a mid-map worker death was detected and the
        #: in-flight items re-enqueued (see :meth:`_pooled_results`).
        self.worker_revivals = 0
        _LIVE_BACKENDS.add(self)

    def map(self, fn, items, timer=None, stage=None) -> list:
        items = list(items)
        if (
            self.workers <= 1
            or len(items) <= 1
            or not fork_available()
            or in_worker_process()
        ):
            return SerialBackend().map(fn, items, timer=timer, stage=stage)
        # Serialise concurrent fork maps end to end: the inherited globals
        # must stay stable while any pool is being forked, and a persistent
        # pool must never run two maps at once.  Parallelism comes from the
        # workers inside one map, not from overlapping maps.
        with _FORK_LOCK:
            try:
                # Probe once whether the items can cross a task queue; the
                # probe's serialisation work is redundant with the pool's
                # own, but items on the hot paths are chunk indices and
                # small configuration tuples, so it is noise there.
                pickle.dumps(items)
            except Exception:
                return _credit(timer, stage, self._map_one_shot(fn, items))
            return _credit(timer, stage, self._map_pooled(fn, items))

    def _map_pooled(self, fn, items: list) -> list:
        """Run a map on the persistent pool, (re)forking it if needed.

        The pool is re-forked when the callable changes and when a larger
        map could use more workers than the pool was sized for (pools are
        forked at ``min(workers, len(items))`` so small maps do not spawn
        idle children).
        """
        wanted = min(self.workers, len(items))
        if (
            self._pool is None
            or self._pool_fn is not fn
            or wanted > self._pool_size
        ):
            self._dispose_pool()
            token = next(_POOL_TOKENS)
            _POOL_TASKS[token] = fn
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(processes=wanted)
            self._pool_fn = fn
            self._pool_token = token
            self._pool_size = wanted
            self._pool_finalizer = weakref.finalize(
                self, _reap_pool, self._pool, token
            )
            self.fork_count += 1
        _note_pool_owner(self)
        try:
            return self._pooled_results(items)
        except BaseException:
            # A worker may have died mid-map (or the pool be otherwise
            # unusable); dispose it so the next map forks a clean one.
            self._dispose_pool()
            raise

    def _pool_worker_pids(self) -> "set | None":
        """Pids of the persistent pool's current workers.

        Reads the pool's internal worker list (stable across CPython 3.x);
        returns ``None`` when unavailable, which disables death detection
        and degrades to the historical behaviour.
        """
        processes = getattr(self._pool, "_pool", None)
        if processes is None:
            return None
        try:
            return {process.pid for process in processes}
        except Exception:  # pragma: no cover - exotic Pool internals
            return None

    def _pooled_results(self, items: list) -> list:
        """Dispatch one map on the persistent pool, surviving worker deaths.

        ``Pool.map`` blocks forever when a worker is killed mid-task: the
        pool's maintainer thread re-forks a replacement worker (which
        re-inherits this pool's callable through ``_POOL_TASKS``), but the
        task that died with the worker is simply lost and its result never
        arrives.  Items are therefore dispatched individually and watched:
        when the pool's worker pid-set changes (a death was repaired), every
        still-pending item is re-enqueued.  Duplicated execution is harmless
        — tasks are pure, so whichever attempt completes first supplies the
        value — and the queue join that used to hang can no longer occur.
        """
        token = self._pool_token
        completion = threading.Event()

        def submit(item):
            return self._pool.apply_async(
                _run_pooled_task,
                ((token, item),),
                callback=lambda _: completion.set(),
                error_callback=lambda _: completion.set(),
            )

        results: list = [None] * len(items)
        # Snapshot the worker pids *before* submitting: a worker killed while
        # the submissions are still being enqueued must still register as
        # churn on the first comparison, or its lost item would never be
        # re-enqueued.
        known_pids = self._pool_worker_pids()
        pending: dict = {index: [submit(item)] for index, item in enumerate(items)}
        # Bound on revival rounds within one map: a task that
        # deterministically kills its worker (e.g. a reliable OOM) must
        # surface as an error, not an infinite kill/refork/re-enqueue loop.
        revival_budget = 2 * self.workers + 2
        while pending:
            progressed = False
            for index in list(pending):
                attempts = pending[index]
                for attempt in list(attempts):
                    if not attempt.ready():
                        continue
                    try:
                        results[index] = attempt.get()
                    except BaseException:
                        # A re-enqueued duplicate may fail from conditions
                        # the duplication itself created (e.g. memory
                        # pressure); the error is only fatal once no other
                        # attempt of this item can still deliver.
                        attempts.remove(attempt)
                        if not attempts:
                            raise
                        progressed = True
                        continue
                    del pending[index]
                    progressed = True
                    break
            if not pending or progressed:
                continue
            # Any completion wakes the scan immediately; the timeout is the
            # cadence of the worker-death check, not added result latency.
            completion.wait(0.05)
            completion.clear()
            current_pids = self._pool_worker_pids()
            if (
                known_pids is not None
                and current_pids is not None
                and current_pids != known_pids
            ):
                # Worker churn: anything in flight on the dead worker was
                # lost.  We cannot tell which items those were, so re-enqueue
                # them all onto the repaired pool.
                if revival_budget <= 0:
                    raise RuntimeError(
                        "process pool workers kept dying mid-map; giving up "
                        f"after {2 * self.workers + 2} revival rounds"
                    )
                revival_budget -= 1
                self.worker_revivals += 1
                for index in pending:
                    pending[index].append(submit(items[index]))
                known_pids = current_pids
        return results

    def _map_one_shot(self, fn, items: list) -> list:
        """Fork a single-use pool inheriting the callable *and* the items."""
        global _TASK_FN, _TASK_ITEMS
        _TASK_FN, _TASK_ITEMS = fn, items
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=min(self.workers, len(items))) as pool:
                return pool.map(_run_forked_task, range(len(items)), chunksize=1)
        finally:
            _TASK_FN, _TASK_ITEMS = None, None

    def _dispose_pool(self) -> None:
        """Tear down the persistent pool and its task registration."""
        finalizer = self._pool_finalizer
        self._pool = self._pool_fn = self._pool_token = None
        self._pool_size = 0
        self._pool_finalizer = None
        if finalizer is not None:
            finalizer()  # idempotent: terminate + join + registry cleanup

    def shutdown(self) -> None:
        """Reap the persistent pool's workers (idempotent, thread-safe)."""
        with _FORK_LOCK:
            self._dispose_pool()


#: Registry of selectable backends, keyed by the names accepted from
#: ``PipelineConfig.backend`` and the ``REPRO_BACKEND`` environment variable.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(backend=None, workers: "int | None" = None) -> Backend:
    """Resolve a backend instance from a name, an instance, or the environment.

    Args:
        backend: a :class:`Backend` instance (returned unchanged), a backend
            name from :data:`BACKENDS`, or ``None`` to consult the
            ``REPRO_BACKEND`` environment variable and fall back to the
            behaviour-preserving default (``thread``).
        workers: worker count; ``None`` uses the backend's own default
            (1 for serial/thread — today's inline behaviour — and the host
            CPU count for the process pool).
    """
    if isinstance(backend, Backend):
        return backend
    name = backend
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND_NAME
    name = str(name).strip().lower()
    if name == "cluster" and name not in BACKENDS:
        # The cluster backend lives in its own module (it pulls in the
        # persistence layer for store-aware scheduling); importing it
        # registers it into BACKENDS.
        import repro.exec.cluster  # noqa: F401

    if name not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {name!r}; available: {sorted(BACKENDS)}"
        )
    return BACKENDS[name](workers=workers)
