"""Pluggable execution backends for the library's bulk workloads.

Every embarrassingly parallel workload in the reproduction — ray chunks in
:class:`repro.render.RenderEngine`, profiler measurements, per-object bake
geometry, baseline evaluation — is expressed as an ordered ``map(fn, items)``
and routed through one of the interchangeable backends:

* :class:`SerialBackend` — a plain in-process loop; the bit-identical
  reference every other backend is pinned against.
* :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`
  fan-out (the engine's historical ``workers`` knob).  Threads share memory,
  so tasks may mutate caller state, but the Python-heavy marcher loops are
  GIL-bound and only numpy-releasing sections overlap.
* :class:`ProcessBackend` — true multi-core execution on persistent worker
  daemons, one item per shard.  The daemons are owned by a
  :class:`~repro.exec.worker.WorkerHost` over a pluggable
  :class:`~repro.exec.transport.Transport` (socketpair+fork by default,
  loopback TCP via ``REPRO_TRANSPORT=tcp``): consecutive maps with the
  same callable reuse the live daemons (items then cross the wire
  pickled); a new callable re-registers — respawning only when the
  transport cannot ship the callable — and maps whose items do not pickle
  take a one-shot path that inherits callable *and* items by fork memory
  image (closures over scenes, SDF lambdas and lazy textures all work).
  Task side effects (cache writes) stay in the worker and are re-applied
  by the caller from the returned values.

Backends are selected by name — ``PipelineConfig.backend``, the
``REPRO_BACKEND`` environment variable, or :func:`resolve_backend` directly.
All backends produce bit-identical results for the workloads they run
(pinned in ``tests/test_exec_backends.py``): tasks are pure functions of
their item and results are assembled in item order.  Every task currently
shipped is fully deterministic; should a future workload need randomness,
it must derive its stream from :func:`shard_rng` — a pure function of
``(seed, shard_index)`` for integer seeds — so the draw never depends on
which worker (or in which order) a shard executes.

A fourth backend, :class:`repro.exec.cluster.ClusterBackend` (name
``"cluster"``), schedules cost-weighted shards — with store-aware placement
and straggler stealing — on the same worker-host machinery; see
:mod:`repro.exec.cluster`.  It registers itself into :data:`BACKENDS` on
import; :func:`resolve_backend` imports it lazily when the name is
requested.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.analysis.sanitize import map_boundary, task_span
from repro.config import env as repro_env
from repro.exec.transport import (  # noqa: F401  (re-exported API)
    fork_available,
    in_worker_process,
)
from repro.exec.worker import (
    Shard,
    WorkerHost,
    shutdown_worker_hosts,
)

#: Environment variable that overrides the default backend selection.
BACKEND_ENV_VAR = repro_env.REPRO_BACKEND.name

#: Backend used when neither the caller nor the environment picks one.  The
#: thread backend with one worker degenerates to the serial loop, so the
#: default is behaviour-preserving.  Declared (with the parser) in
#: :mod:`repro.config.env`, the registry every environment read goes through.
DEFAULT_BACKEND_NAME = repro_env.REPRO_BACKEND.default


def fresh_seed_root() -> int:
    """A fresh OS-entropy seed root for one map's nondeterministic streams.

    Callers that want nondeterministic *but shard-count-invariant* shard
    streams must draw one root per map and pass it as the ``seed`` of every
    shard's :func:`shard_rng` — the draw then depends only on the root and
    the item index, never on how items were grouped into shards or which
    worker ran them.
    """
    return int(np.random.SeedSequence().entropy)


def shard_rng(seed: "int | None", shard_index: int) -> np.random.Generator:
    """Deterministic, order-independent generator for one shard of work.

    Unlike :func:`repro.utils.rng.derive_rng` (which draws entropy from the
    parent generator and therefore depends on call order), the shard stream
    is a pure function of ``(seed, shard_index)`` for any integer seed.
    Two backends that execute shards in different orders — or on different
    workers — therefore draw identical numbers per shard, which is what
    keeps randomised workloads bit-identical across backends.

    ``seed=None`` explicitly requests nondeterminism and draws a fresh
    entropy root (via :func:`fresh_seed_root`) for this call alone — it
    must never alias the deterministic ``seed=0`` stream, or
    "nondeterministic" callers would silently collide with seeded runs.
    Callers that need one consistent nondeterministic stream per *map*
    should draw :func:`fresh_seed_root` once and pass the int.
    """
    root = fresh_seed_root() if seed is None else int(seed)
    sequence = np.random.SeedSequence([root, int(shard_index)])
    return np.random.default_rng(sequence)


#: Backward-compatible name: shutting down "process pools" now means
#: shutting down the worker hosts both parallel backends run on.
shutdown_process_pools = shutdown_worker_hosts


def transport_label(backend) -> str:
    """The worker-transport name a report should carry for ``backend``.

    Daemon-backed backends report their transport's name (``"fork"`` /
    ``"tcp"``); in-process backends have no transport and report the
    explicit ``"none"`` — never the empty string, so report consumers can
    distinguish "no transport" from "field missing".
    """
    return getattr(getattr(backend, "transport", None), "name", None) or "none"


class Backend:
    """Ordered-map execution backend.

    ``map(fn, items)`` returns ``[fn(item) for item in items]`` — same
    length, same order, computed with the backend's execution strategy.
    When ``timer`` and ``stage`` are provided, the wall-clock time spent
    *inside the tasks* (summed across workers) is attributed to the stage
    via :meth:`repro.utils.timing.StageTimer.add_worker`, so multi-process
    runs do not silently drop worker-side time from the overhead analysis.
    """

    name = "base"
    workers = 1
    #: Whether the constructor accepts a ``transport=`` argument (the
    #: worker-host backends); consulted by :func:`resolve_backend`.
    accepts_transport = False

    def map(self, fn, items, timer=None, stage=None) -> list:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name}({self.workers})"


def _timed(fn, item) -> tuple:
    start = time.perf_counter()
    result = fn(item)
    return time.perf_counter() - start, result


def _credit(timer, stage, pairs) -> list:
    """Record summed task seconds on the timer; return the bare results."""
    if timer is not None and stage is not None:
        timer.add_worker(stage, float(sum(elapsed for elapsed, _ in pairs)))
    return [result for _, result in pairs]


class SerialBackend(Backend):
    """The in-process reference backend: a plain ordered loop."""

    name = "serial"

    def __init__(self, workers: "int | None" = None) -> None:
        self.workers = 1

    def map(self, fn, items, timer=None, stage=None) -> list:
        items = list(items)
        if timer is None or stage is None:
            return [fn(item) for item in items]
        return _credit(timer, stage, [_timed(fn, item) for item in items])


class ThreadBackend(Backend):
    """Thread-pool fan-out (shared memory, GIL-bound for pure-Python tasks)."""

    name = "thread"

    def __init__(self, workers: "int | None" = None) -> None:
        self.workers = max(int(workers) if workers is not None else 1, 1)

    def map(self, fn, items, timer=None, stage=None) -> list:
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return SerialBackend().map(fn, items, timer=timer, stage=stage)

        def task(item):
            # task_span / map_boundary: concurrency-sanitizer hooks, no-ops
            # unless REPRO_SANITIZE is set.
            with task_span():
                return fn(item)

        with map_boundary(f"ThreadBackend.map:{stage or ''}"):
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                if timer is None or stage is None:
                    return list(pool.map(task, items))
                pairs = list(pool.map(lambda item: _timed(task, item), items))
        return _credit(timer, stage, pairs)


class ProcessBackend(Backend):
    """Persistent worker daemons: true multi-core execution of Python tasks.

    Sharding contract: tasks must be pure functions of their item (caller
    state mutated inside a worker is lost — callers re-apply side effects
    from the returned values), return values must pickle, and any
    randomness must come from :func:`shard_rng` keyed by the item index.

    The backend is the degenerate one-shard-per-item case of the shared
    :class:`~repro.exec.worker.WorkerHost`: every item is its own shard,
    dispatched pull-based to whichever daemon is idle.  Daemons are
    **persistent** — consecutive maps with the *same* callable reuse them
    (items cross the wire pickled, results come back pickled, nothing is
    respawned); a map with a different callable re-registers the task,
    respawning the daemons only when the transport cannot ship the
    callable (the default fork transport inherits it by memory image).
    Maps whose items do not pickle take the host's one-shot path instead,
    inheriting both callable and items by memory image; the persistent
    daemons stay intact for the next reusable map.  :meth:`shutdown`
    (also run at interpreter exit) reaps the daemons.

    Falls back to the serial loop when the transport cannot launch workers
    on this platform, when called from inside a worker daemon (daemons
    must not fork), or when the workload is too small to amortise a
    dispatch.
    """

    name = "process"
    accepts_transport = True

    def __init__(self, workers: "int | None" = None, transport=None) -> None:
        default = os.cpu_count() or 1
        self.workers = max(int(workers) if workers is not None else default, 1)
        self.host = WorkerHost(transport=transport, workers=self.workers)

    @property
    def transport(self):
        """The worker transport the backend's host speaks."""
        return self.host.transport

    @property
    def fork_count(self) -> int:
        """Task generations installed on the host; a map served without
        this increasing reused the persistent daemons."""
        return self.host.task_generations

    @property
    def worker_revivals(self) -> int:
        """Worker deaths detected (and their lost items re-enqueued)."""
        return self.host.worker_deaths

    def map(self, fn, items, timer=None, stage=None) -> list:
        items = list(items)
        if (
            self.workers <= 1
            or len(items) <= 1
            or not self.host.available()
            or in_worker_process()
        ):
            return SerialBackend().map(fn, items, timer=timer, stage=stage)
        shards = [
            Shard(index=index, item_indices=(index,), cost=1.0)
            for index in range(len(items))
        ]
        # raise_original: a failing task re-raises its own exception type
        # (when it pickles), exactly like the serial and thread backends —
        # callers' error handling must not depend on REPRO_BACKEND.
        results, report = self.host.run(fn, items, shards, raise_original=True)
        if timer is not None and stage is not None:
            timer.add_worker(stage, report.accepted_seconds)
        return results

    def shutdown(self) -> None:
        """Reap the persistent daemons (idempotent, thread-safe)."""
        self.host.shutdown()

    def describe(self) -> str:
        return f"{self.name}({self.workers},{self.transport.name})"


#: Registry of selectable backends, keyed by the names accepted from
#: ``PipelineConfig.backend`` and the ``REPRO_BACKEND`` environment variable.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}

#: Backends resolvable by name but imported lazily (module -> backend name).
LAZY_BACKENDS = {"cluster": "repro.exec.cluster"}


def known_backend_names() -> list:
    """Every backend name :func:`resolve_backend` accepts, the lazily
    imported ones included (without importing them)."""
    return sorted(set(BACKENDS) | set(LAZY_BACKENDS))


def resolve_backend(backend=None, workers: "int | None" = None, transport=None) -> Backend:
    """Resolve a backend instance from a name, an instance, or the environment.

    Args:
        backend: a :class:`Backend` instance (returned unchanged), a backend
            name from :func:`known_backend_names`, or ``None`` to consult
            the ``REPRO_BACKEND`` environment variable and fall back to the
            behaviour-preserving default (``thread``).
        workers: worker count; ``None`` uses the backend's own default
            (1 for serial/thread — today's inline behaviour — and the host
            CPU count for the worker-daemon backends).
        transport: worker transport (a name or a
            :class:`~repro.exec.transport.Transport` instance) for backends
            that run on worker daemons; ``None`` consults the
            ``REPRO_TRANSPORT`` environment variable.  Ignored by the
            in-process backends.

    Raises:
        ValueError: the name is not a known backend; the message lists
            every valid name, the lazily imported ``cluster`` included.
    """
    if isinstance(backend, Backend):
        return backend
    name = backend
    if name is None:
        name = repro_env.REPRO_BACKEND.get()
    name = str(name).strip().lower()
    if name not in BACKENDS and name in LAZY_BACKENDS:
        # The cluster backend lives in its own module (it pulls in the
        # persistence layer for store-aware scheduling); importing it
        # registers it into BACKENDS.
        import importlib

        importlib.import_module(LAZY_BACKENDS[name])
    if name not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {name!r}; valid backends: "
            f"{', '.join(known_backend_names())} (select via "
            f"PipelineConfig.backend or the {BACKEND_ENV_VAR} environment "
            "variable)"
        )
    cls = BACKENDS[name]
    if transport is not None and getattr(cls, "accepts_transport", False):
        return cls(workers=workers, transport=transport)
    return cls(workers=workers)
