"""Detail-frequency analysis.

The segmentation module scores every detected object by the *frequency of
detail* it exhibits in each training image and keeps, per object, the
maximum over all views (§III-A): single NeRFs learn high-frequency content
poorly, and users focus on the detailed side of an object, so the maximum
observed frequency is the importance signal that decides which objects get
a dedicated network.

The frequency measure here is spectral: the masked object region is Fourier
transformed and the high-frequency tail of its radially averaged energy
spectrum is summarised.  A spectral-residual saliency map (Hou & Zhang,
2007 — reference [28] of the paper) is provided as well.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.utils.image import bbox_from_mask, crop_to_bbox, to_gray


def radial_energy_profile(image: np.ndarray, num_bins: int = 32) -> tuple:
    """Radially averaged power spectrum of a grayscale image.

    Returns:
        ``(frequencies, energy)`` — bin centres in cycles/pixel (0 .. 0.5)
        and the mean spectral power in each bin.
    """
    gray = to_gray(np.asarray(image, dtype=np.float64))
    if gray.size == 0:
        raise ValueError("empty image")
    gray = gray - float(gray.mean())
    spectrum = np.abs(np.fft.fftshift(np.fft.fft2(gray))) ** 2

    rows, cols = gray.shape
    freq_y = np.fft.fftshift(np.fft.fftfreq(rows))
    freq_x = np.fft.fftshift(np.fft.fftfreq(cols))
    radius = np.sqrt(freq_y[:, None] ** 2 + freq_x[None, :] ** 2)

    bins = np.linspace(0.0, 0.5, num_bins + 1)
    centers = 0.5 * (bins[:-1] + bins[1:])
    energy = np.zeros(num_bins)
    for index in range(num_bins):
        mask = (radius >= bins[index]) & (radius < bins[index + 1])
        if mask.any():
            energy[index] = spectrum[mask].mean()
    return centers, energy


def detail_frequency(
    image: np.ndarray,
    mask: "np.ndarray | None" = None,
    energy_quantile: float = 0.90,
    min_pixels: int = 16,
) -> float:
    """Detail frequency of an object in one image.

    The measure is the spatial frequency (cycles/pixel, in ``[0, 0.5]``)
    below which ``energy_quantile`` of the object's spectral energy lies —
    objects whose appearance needs high frequencies to represent score
    higher.  The object is isolated by cropping to its mask's bounding box
    and zeroing out background pixels so surrounding content does not leak
    into the spectrum.

    Args:
        image: RGB or grayscale training image.
        mask: boolean object mask (whole image is analysed when omitted).
        energy_quantile: quantile of cumulative radial energy defining the
            reported frequency.
        min_pixels: objects smaller than this return 0.0 (too small to
            measure).
    """
    gray = to_gray(np.asarray(image, dtype=np.float64))
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != gray.shape:
            raise ValueError("mask and image shapes differ")
        if mask.sum() < min_pixels:
            return 0.0
        bbox = bbox_from_mask(mask, margin=1)
        gray = crop_to_bbox(np.where(mask, gray, gray[mask].mean()), bbox)
    if gray.size < min_pixels:
        return 0.0

    frequencies, energy = radial_energy_profile(gray)
    total = energy.sum()
    if total <= 0:
        return 0.0
    cumulative = np.cumsum(energy) / total
    index = int(np.searchsorted(cumulative, energy_quantile))
    index = min(index, len(frequencies) - 1)
    return float(frequencies[index])


def spectral_residual_saliency(image: np.ndarray, sigma: float = 2.5) -> np.ndarray:
    """Spectral-residual saliency map (Hou & Zhang, CVPR 2007).

    Returns a saliency map in ``[0, 1]`` highlighting the regions a viewer's
    attention is drawn to — the domain-knowledge justification the paper
    gives for scoring objects by their *maximum* frequency across views.
    """
    gray = to_gray(np.asarray(image, dtype=np.float64))
    gray = gray - float(gray.mean())
    spectrum = np.fft.fft2(gray)
    amplitude = np.abs(spectrum)
    phase = np.angle(spectrum)
    log_amplitude = np.log(amplitude + 1e-9)
    residual = log_amplitude - gaussian_filter(log_amplitude, sigma=1.0, mode="wrap")
    saliency = np.abs(np.fft.ifft2(np.exp(residual + 1j * phase))) ** 2
    saliency = gaussian_filter(saliency, sigma=sigma, mode="reflect")
    maximum = saliency.max()
    if maximum > 0:
        saliency = saliency / maximum
    return saliency


def max_frequency_over_views(
    images: list, masks: list, energy_quantile: float = 0.90
) -> float:
    """Maximum detail frequency of one object across several views.

    ``images`` and ``masks`` are parallel lists; views where the object is
    absent (empty/None mask) are skipped.
    """
    if len(images) != len(masks):
        raise ValueError("images and masks must have the same length")
    best = 0.0
    for image, mask in zip(images, masks):
        if mask is None or not np.asarray(mask, dtype=bool).any():
            continue
        best = max(best, detail_frequency(image, mask, energy_quantile=energy_quantile))
    return best
