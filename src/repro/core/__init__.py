"""NeRFlex core: the paper's primary contribution.

* :mod:`repro.core.frequency`    — detail-frequency analysis of objects in
  training images (the importance signal of the segmentation module);
* :mod:`repro.core.segmentation` — detail-based segmentation: which objects
  get a dedicated NeRF, plus crop-and-enlarge training-set construction;
* :mod:`repro.core.config_space` — the ``(g, p)`` configuration space;
* :mod:`repro.core.profiler`     — lightweight white-box models mapping a
  configuration to rendering quality (SSIM) and baked data size;
* :mod:`repro.core.selector`     — the dynamic-programming multiple-choice
  knapsack configuration selector (Algorithm 1);
* :mod:`repro.core.selector_baselines` — Fairness, SLSQP, greedy and
  brute-force selectors used for comparison;
* :mod:`repro.core.pipeline`     — the end-to-end NeRFlex pipeline
  (segment -> profile -> select -> bake -> deploy).
"""

from repro.core.config_space import Configuration, ConfigurationSpace
from repro.core.frequency import detail_frequency, spectral_residual_saliency
from repro.core.profiler import ObjectProfile, ProfileFitter, QualityModel, SizeModel
from repro.core.segmentation import DetailBasedSegmenter, SegmentationResult, SubScene
from repro.core.selector import ExactMCKSelector, NeRFlexDPSelector, SelectionResult
from repro.core.selector_baselines import (
    BruteForceSelector,
    FairnessSelector,
    GreedySelector,
    SLSQPSelector,
)
from repro.core.pipeline import DeploymentReport, NeRFlexPipeline, PipelineConfig

__all__ = [
    "Configuration",
    "ConfigurationSpace",
    "detail_frequency",
    "spectral_residual_saliency",
    "ObjectProfile",
    "ProfileFitter",
    "QualityModel",
    "SizeModel",
    "DetailBasedSegmenter",
    "SegmentationResult",
    "SubScene",
    "ExactMCKSelector",
    "NeRFlexDPSelector",
    "SelectionResult",
    "BruteForceSelector",
    "FairnessSelector",
    "GreedySelector",
    "SLSQPSelector",
    "DeploymentReport",
    "NeRFlexPipeline",
    "PipelineConfig",
]
