"""The per-object configuration space: mesh granularity ``g`` and texture
patch size ``p``.

The paper's knobs are the voxel-grid resolution per axis (``g``) and the
one-dimensional texture patch size per quad face (``p``).  The MLP is
excluded as a knob because it is only a few kilobytes and quantising it
breaks commercial rendering engines (§III-B).

Note on ranges: the paper evaluates ``g`` in roughly [20, 128] and ``p`` in
[5, 41] against an 800-pixel-class renderer.  This reproduction renders and
scores at 100–200 pixels, so the texel-per-screen-pixel trade-off saturates
at proportionally smaller patch sizes; the default patch range is scaled
accordingly (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Configuration:
    """One configuration pair ``theta = (g, p)``."""

    granularity: int
    patch_size: int

    def __post_init__(self) -> None:
        if self.granularity < 2:
            raise ValueError("granularity must be at least 2")
        if self.patch_size < 1:
            raise ValueError("patch_size must be at least 1")

    @property
    def g(self) -> int:
        """Alias matching the paper's notation."""
        return self.granularity

    @property
    def p(self) -> int:
        """Alias matching the paper's notation."""
        return self.patch_size

    def as_tuple(self) -> tuple:
        return (self.granularity, self.patch_size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(g={self.granularity}, p={self.patch_size})"


#: Default knob values used across the evaluation.
DEFAULT_GRANULARITIES = (16, 24, 32, 48, 64, 96, 128)
DEFAULT_PATCH_SIZES = (1, 2, 3, 4, 6, 8)


@dataclass(frozen=True)
class ConfigurationSpace:
    """The discrete set of configurations available to one object's NeRF."""

    granularities: tuple = DEFAULT_GRANULARITIES
    patch_sizes: tuple = DEFAULT_PATCH_SIZES

    def __post_init__(self) -> None:
        if not self.granularities or not self.patch_sizes:
            raise ValueError("configuration space must not be empty")
        object.__setattr__(self, "granularities", tuple(sorted(set(int(g) for g in self.granularities))))
        object.__setattr__(self, "patch_sizes", tuple(sorted(set(int(p) for p in self.patch_sizes))))

    def __iter__(self):
        for granularity in self.granularities:
            for patch_size in self.patch_sizes:
                yield Configuration(granularity, patch_size)

    def __len__(self) -> int:
        return len(self.granularities) * len(self.patch_sizes)

    def __contains__(self, config: Configuration) -> bool:
        return (
            config.granularity in self.granularities
            and config.patch_size in self.patch_sizes
        )

    @property
    def min_config(self) -> Configuration:
        """The cheapest configuration ``(min g, min p)`` (paper line 1)."""
        return Configuration(self.granularities[0], self.patch_sizes[0])

    @property
    def max_config(self) -> Configuration:
        return Configuration(self.granularities[-1], self.patch_sizes[-1])

    def configs(self) -> list:
        """All configurations as a list (iteration order: g-major)."""
        return list(self)

    def profiling_granularities(self, growth_factor: float = 3.0) -> tuple:
        """Granularity sample points for profiling.

        Implements the paper's variable-step-size rule: starting from the
        smallest granularity, each next sample point adds a step of
        ``2 * previous`` (i.e. the sampled value triples), clamped to the
        largest available granularity.
        """
        samples = []
        value = self.granularities[0]
        while value < self.granularities[-1]:
            nearest = min(self.granularities, key=lambda g: abs(g - value))
            if nearest not in samples:
                samples.append(nearest)
            value = value * growth_factor
        if self.granularities[-1] not in samples:
            samples.append(self.granularities[-1])
        return tuple(samples)

    def profiling_patch_sizes(self) -> tuple:
        """Patch-size sample points: minimum, midpoint and maximum (§III-B)."""
        patches = self.patch_sizes
        mid = patches[len(patches) // 2]
        unique = sorted({patches[0], mid, patches[-1]})
        return tuple(unique)

    def profiling_configs(self) -> list:
        """The sample configurations used to fit the profiling models."""
        return [
            Configuration(granularity, patch_size)
            for granularity in self.profiling_granularities()
            for patch_size in self.profiling_patch_sizes()
        ]
