"""Lightweight profiling: white-box models from configuration to quality and size.

Training every candidate configuration to measure its rendering quality and
baked size is prohibitively expensive (hours per configuration in the
paper).  NeRFlex instead fits small white-box models per object from a
handful of sample configurations chosen with a variable-step-size rule, and
the configuration selector then optimises over *predicted* quality and size.

Model families
--------------

* :class:`SizeModel` — ``S(g, p) = s0 + s1 g^2 + s2 g^2 p^2 + s3 g^3``.  The
  baked data is geometry (one quad per boundary voxel face, scaling with the
  surface area resolved at granularity ``g``, i.e. ~``g^2``), textures
  (``p^2`` texels per face) and the dense per-cell volume data (``g^3``), so
  the size is linear in the features ``{1, g^2, g^2 p^2, g^3}`` and is
  fitted by ordinary least squares.
* :class:`QualityModel` — ``Q(g, p) = qmax - k / ((g + a) * (p + b))``, a
  saturating law: quality approaches the representation ceiling ``qmax`` as
  either knob grows, with diminishing returns.
* :class:`PaperSizeModel` / :class:`PaperQualityModel` — the literal
  functional forms printed in the paper's equation (1), provided for
  comparison (see DESIGN.md for why the saturating quality form is used as
  the default).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import OptimizeWarning, curve_fit

from repro.core.config_space import Configuration, ConfigurationSpace


def _configs_to_arrays(configs: list) -> tuple:
    g = np.array([config.granularity for config in configs], dtype=np.float64)
    p = np.array([config.patch_size for config in configs], dtype=np.float64)
    return g, p


@dataclass
class SizeModel:
    """White-box size model ``S = s0 + s1 g^2 + s2 g^2 p^2 + s3 g^3`` (MB)."""

    s0: float = 0.0
    s1: float = 0.0
    s2: float = 0.0
    s3: float = 0.0

    def predict(self, config: Configuration) -> float:
        g = float(config.granularity)
        p = float(config.patch_size)
        return max(
            self.s0 + self.s1 * g * g + self.s2 * g * g * p * p + self.s3 * g**3, 0.0
        )

    @classmethod
    def fit(cls, configs: list, sizes_mb: np.ndarray) -> "SizeModel":
        """Least-squares fit of the four coefficients."""
        if len(configs) < 4:
            raise ValueError("need at least 4 sample configurations to fit SizeModel")
        g, p = _configs_to_arrays(configs)
        sizes = np.asarray(sizes_mb, dtype=np.float64)
        features = np.stack([np.ones_like(g), g * g, g * g * p * p, g**3], axis=1)
        coeffs, *_ = np.linalg.lstsq(features, sizes, rcond=None)
        return cls(
            s0=float(coeffs[0]),
            s1=float(coeffs[1]),
            s2=float(coeffs[2]),
            s3=float(coeffs[3]),
        )


@dataclass
class QualityModel:
    """Saturating quality model ``Q = qmax - k / ((g + a)(p + b))``."""

    qmax: float = 1.0
    k: float = 1.0
    a: float = 1.0
    b: float = 1.0

    def predict(self, config: Configuration) -> float:
        g = float(config.granularity)
        p = float(config.patch_size)
        return float(self.qmax - self.k / ((g + self.a) * (p + self.b)))

    @classmethod
    def fit(cls, configs: list, qualities: np.ndarray) -> "QualityModel":
        """Bounded nonlinear least-squares fit (with a linear fallback)."""
        if len(configs) < 4:
            raise ValueError("need at least 4 sample configurations to fit QualityModel")
        g, p = _configs_to_arrays(configs)
        quality = np.asarray(qualities, dtype=np.float64)

        def model(x, qmax, k, a, b):
            gg, pp = x
            return qmax - k / ((gg + a) * (pp + b))

        initial = (min(float(quality.max()) + 0.03, 1.0), 5.0, 8.0, 1.0)
        bounds = ([0.0, 0.0, 0.01, 0.01], [1.2, 1e4, 1e3, 1e2])
        degenerate = True
        params = None
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", OptimizeWarning)
                params, pcov = curve_fit(
                    model, (g, p), quality, p0=initial, bounds=bounds, maxfev=20000
                )
            # Degenerate measurement sets (constant quality, collinear
            # samples) make the covariance inestimable; scipy fills pcov
            # with inf and warns.  The condition is read off pcov rather
            # than by escalating the warning to an error: warning filters
            # are process-global state, and the stage-DAG scheduler fits
            # profiles of independent scenes concurrently — an "error"
            # filter installed here could be restored mid-fit by a sibling
            # thread (or leak into its fits), making the fallback decision
            # racy.  Degenerate fits take the deterministic linear fallback
            # instead of keeping dubious parameters.
            degenerate = not bool(np.all(np.isfinite(pcov)))
        except (RuntimeError, ValueError):
            degenerate = True
        if not degenerate:
            return cls(qmax=float(params[0]), k=float(params[1]), a=float(params[2]), b=float(params[3]))
        # Fallback: fix the offsets and solve the linear problem in
        # (qmax, k) exactly.
        a_fixed, b_fixed = 8.0, 1.0
        basis = 1.0 / ((g + a_fixed) * (p + b_fixed))
        features = np.stack([np.ones_like(basis), -basis], axis=1)
        coeffs, *_ = np.linalg.lstsq(features, quality, rcond=None)
        return cls(qmax=float(coeffs[0]), k=float(coeffs[1]), a=a_fixed, b=b_fixed)


@dataclass
class PaperSizeModel:
    """The paper's literal size form ``S = m - k / ((g + a)^3 (p + b)^2)``."""

    m: float = 100.0
    k: float = 1.0
    a: float = 1.0
    b: float = 1.0

    def predict(self, config: Configuration) -> float:
        g = float(config.granularity)
        p = float(config.patch_size)
        return float(self.m - self.k / (((g + self.a) ** 3) * ((p + self.b) ** 2)))

    @classmethod
    def fit(cls, configs: list, sizes_mb: np.ndarray) -> "PaperSizeModel":
        g, p = _configs_to_arrays(configs)
        sizes = np.asarray(sizes_mb, dtype=np.float64)

        def model(x, m, k, a, b):
            gg, pp = x
            return m - k / (((gg + a) ** 3) * ((pp + b) ** 2))

        # Seed the optimiser so the curve passes near the smallest and the
        # largest observed sizes: m is just above the maximum, and k makes
        # the cheapest sample hit the minimum.
        a0, b0 = 5.0, 1.0
        m0 = float(sizes.max()) * 1.05 + 1.0
        cheapest = int(np.argmin(sizes))
        k0 = max(
            (m0 - float(sizes.min()))
            * ((g[cheapest] + a0) ** 3)
            * ((p[cheapest] + b0) ** 2),
            1.0,
        )
        initial = (m0, k0, a0, b0)
        bounds = ([0.0, 0.0, 0.01, 0.01], [1e6, 1e14, 1e3, 1e2])
        with warnings.catch_warnings():
            # Reference-only model: an inestimable covariance is tolerable.
            warnings.simplefilter("ignore", OptimizeWarning)
            params, _ = curve_fit(model, (g, p), sizes, p0=initial, bounds=bounds, maxfev=40000)
        return cls(m=float(params[0]), k=float(params[1]), a=float(params[2]), b=float(params[3]))


@dataclass
class PaperQualityModel:
    """The paper's literal quality form ``Q = k' (g + a')^3 (p + b')^2``."""

    k: float = 1e-6
    a: float = 1.0
    b: float = 1.0

    def predict(self, config: Configuration) -> float:
        g = float(config.granularity)
        p = float(config.patch_size)
        return float(self.k * ((g + self.a) ** 3) * ((p + self.b) ** 2))

    @classmethod
    def fit(cls, configs: list, qualities: np.ndarray) -> "PaperQualityModel":
        g, p = _configs_to_arrays(configs)
        quality = np.asarray(qualities, dtype=np.float64)

        def model(x, k, a, b):
            gg, pp = x
            return k * ((gg + a) ** 3) * ((pp + b) ** 2)

        initial = (float(quality.mean()) / (64.0**3 * 9.0), 1.0, 1.0)
        bounds = ([0.0, 0.01, 0.01], [1.0, 1e3, 1e2])
        with warnings.catch_warnings():
            # Reference-only model: an inestimable covariance is tolerable.
            warnings.simplefilter("ignore", OptimizeWarning)
            params, _ = curve_fit(model, (g, p), quality, p0=initial, bounds=bounds, maxfev=20000)
        return cls(k=float(params[0]), a=float(params[1]), b=float(params[2]))


@dataclass
class ObjectProfile:
    """The fitted profile of one object (or joint sub-scene).

    Attributes:
        name: object / sub-scene name.
        config_space: the configurations available to this object's NeRF.
        quality_model / size_model: fitted white-box models.
        measurements: the sampled ground-truth measurements the models were
            fitted from, keyed by :class:`Configuration`.
        detail_weight: relative importance of this object in the selector's
            objective.  The segmentation stage derives it from the object's
            maximum detail frequency (normalised to mean 1 across a scene's
            sub-scenes), so the configuration budget flows toward the
            high-frequency detail region the paper's Fig. 4 scores — a
            low-detail backdrop should not outbid a detailed object for
            texture bytes.  The default of 1.0 reproduces the unweighted
            objective.
    """

    name: str
    config_space: ConfigurationSpace
    quality_model: QualityModel
    size_model: SizeModel
    measurements: dict = field(default_factory=dict)
    detail_weight: float = 1.0

    def state_tuple(self) -> tuple:
        """The profile's complete fitted state as one nested tuple.

        Covers every field that influences predictions and selection — the
        configuration space, both models' parameters, the raw measurements
        (in insertion order) and the detail weight.  Two profiles with equal
        state tuples behave identically everywhere the library reads them,
        which is what the persistence round-trip and cross-invocation golden
        tests assert (floats are compared exactly, no tolerance).
        """
        return (
            self.name,
            tuple(self.config_space.granularities),
            tuple(self.config_space.patch_sizes),
            (type(self.quality_model).__name__,) + dataclasses.astuple(self.quality_model),
            (type(self.size_model).__name__,) + dataclasses.astuple(self.size_model),
            tuple(
                (config.granularity, config.patch_size, quality, size_mb)
                for config, (quality, size_mb) in self.measurements.items()
            ),
            self.detail_weight,
        )

    def predict_quality(self, config: Configuration) -> float:
        return self.quality_model.predict(config)

    def objective_quality(self, config: Configuration) -> float:
        """Detail-weighted quality used by the configuration selectors."""
        return self.detail_weight * self.quality_model.predict(config)

    def predict_size(self, config: Configuration) -> float:
        return self.size_model.predict(config)

    def min_predicted_size(self) -> float:
        """Smallest predicted size over the configuration space."""
        return min(self.predict_size(config) for config in self.config_space)

    def best_config_within(self, size_budget_mb: float) -> "Configuration | None":
        """Highest-predicted-quality configuration within a size budget.

        Returns ``None`` when no configuration fits.
        """
        best = None
        best_quality = -np.inf
        for config in self.config_space:
            if self.predict_size(config) > size_budget_mb:
                continue
            quality = self.predict_quality(config)
            if quality > best_quality:
                best, best_quality = config, quality
        return best


class ProfileFitter:
    """Builds :class:`ObjectProfile` instances from a measurement callback.

    Args:
        config_space: the configuration space shared by the objects (a
            per-object space can be passed to :meth:`fit`).

    The measurement callback has signature
    ``measure(config: Configuration) -> (quality, size_mb)`` — in the full
    pipeline it bakes the object at ``config`` and scores SSIM against the
    ground truth; in unit tests it can be any synthetic function.
    """

    def __init__(self, config_space: "ConfigurationSpace | None" = None) -> None:
        self.config_space = config_space or ConfigurationSpace()

    def fit(
        self,
        name: str,
        measure,
        config_space: "ConfigurationSpace | None" = None,
        extra_configs: "list | None" = None,
        map_fn=None,
    ) -> ObjectProfile:
        """Sample the profiling configurations and fit both models.

        ``map_fn(fn, items)`` — an ordered map, defaulting to a serial loop
        — executes the sample measurements; passing an execution backend's
        map (see :mod:`repro.exec.backends`) runs the samples concurrently.
        Measurements are keyed back to their configuration by position, so
        any order-preserving map produces identical profiles.
        """
        space = config_space or self.config_space
        configs = list(space.profiling_configs())
        for config in extra_configs or []:
            if config not in configs:
                configs.append(config)

        if map_fn is None:
            results = [measure(config) for config in configs]
        else:
            results = map_fn(measure, configs)
        measurements = {
            config: (float(quality), float(size_mb))
            for config, (quality, size_mb) in zip(configs, results)
        }

        sampled = list(measurements)
        qualities = np.array([measurements[c][0] for c in sampled])
        sizes = np.array([measurements[c][1] for c in sampled])
        quality_model = QualityModel.fit(sampled, qualities)
        size_model = SizeModel.fit(sampled, sizes)
        return ObjectProfile(
            name=name,
            config_space=space,
            quality_model=quality_model,
            size_model=size_model,
            measurements=measurements,
        )


def profile_error_analysis(
    profile: ObjectProfile, measure, configs: list, map_fn=None
) -> dict:
    """Prediction-error statistics over held-out configurations.

    Mirrors the paper's profiler validation (four objects, 45 configuration
    pairs): returns the mean and standard deviation of the absolute quality
    and size prediction errors.  ``map_fn`` (an ordered map, e.g. an
    execution backend's) runs the held-out measurements concurrently.
    """
    if map_fn is None:
        results = [measure(config) for config in configs]
    else:
        results = map_fn(measure, configs)
    quality_errors = []
    size_errors = []
    for config, (quality, size_mb) in zip(configs, results):
        quality_errors.append(abs(profile.predict_quality(config) - quality))
        size_errors.append(abs(profile.predict_size(config) - size_mb))
    quality_errors = np.asarray(quality_errors)
    size_errors = np.asarray(size_errors)
    return {
        "num_configs": len(configs),
        "quality_mean_error": float(quality_errors.mean()),
        "quality_std_error": float(quality_errors.std()),
        "size_mean_error": float(size_errors.mean()),
        "size_std_error": float(size_errors.std()),
    }
