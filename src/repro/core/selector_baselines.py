"""Baseline configuration selectors: Fairness, SLSQP, greedy and brute force.

The paper compares its DP selector against two alternatives inside the same
NeRFlex framework (§IV-C): an average-size ("Fairness") allocation and a
sequential-least-squares-programming (SLSQP) solver on the continuous
relaxation of equation (2).  A greedy marginal-utility selector and an
exhaustive brute-force solver are additionally provided as references for
tests and ablations.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.optimize import minimize

from repro.core.config_space import Configuration
from repro.core.profiler import ObjectProfile, QualityModel, SizeModel
from repro.core.selector import SelectionResult, _fallback_min_assignments, build_result


class FairnessSelector:
    """Average-size allocation: every object gets ``H / n`` MB.

    Within its equal share each object independently picks the
    highest-predicted-quality configuration that fits; objects whose
    cheapest configuration exceeds the share fall back to that cheapest
    configuration.
    """

    method_name = "fairness"

    def select(self, profiles: list, budget_mb: float) -> SelectionResult:
        if not profiles:
            raise ValueError("select() needs at least one object profile")
        if budget_mb <= 0:
            raise ValueError("budget_mb must be positive")
        share = budget_mb / len(profiles)
        assignments = {}
        for profile in profiles:
            config = profile.best_config_within(share)
            assignments[profile.name] = config or profile.config_space.min_config
        return build_result(self.method_name, profiles, assignments, budget_mb)


class GreedySelector:
    """Marginal-utility greedy: repeatedly apply the upgrade with the best
    quality-gain-per-MB that still fits the budget."""

    method_name = "greedy"

    def select(self, profiles: list, budget_mb: float) -> SelectionResult:
        if not profiles:
            raise ValueError("select() needs at least one object profile")
        if budget_mb <= 0:
            raise ValueError("budget_mb must be positive")
        assignments = _fallback_min_assignments(profiles)
        by_name = {profile.name: profile for profile in profiles}

        def total_size(current: dict) -> float:
            return sum(
                by_name[name].predict_size(config) for name, config in current.items()
            )

        while True:
            best_gain_rate = 0.0
            best_upgrade = None
            current_total = total_size(assignments)
            for profile in profiles:
                current_config = assignments[profile.name]
                current_quality = profile.objective_quality(current_config)
                current_size = profile.predict_size(current_config)
                for config in profile.config_space:
                    quality_gain = profile.objective_quality(config) - current_quality
                    size_gain = profile.predict_size(config) - current_size
                    if quality_gain <= 0 or size_gain <= 0:
                        continue
                    if current_total + size_gain > budget_mb:
                        continue
                    rate = quality_gain / size_gain
                    if rate > best_gain_rate:
                        best_gain_rate = rate
                        best_upgrade = (profile.name, config)
            if best_upgrade is None:
                break
            assignments[best_upgrade[0]] = best_upgrade[1]
        return build_result(self.method_name, profiles, assignments, budget_mb)


class BruteForceSelector:
    """Exhaustive search over the joint configuration space (tests only)."""

    method_name = "brute-force"

    def __init__(self, max_combinations: int = 2_000_000) -> None:
        self.max_combinations = int(max_combinations)

    def select(self, profiles: list, budget_mb: float) -> SelectionResult:
        if not profiles:
            raise ValueError("select() needs at least one object profile")
        total_combinations = 1
        for profile in profiles:
            total_combinations *= len(profile.config_space)
        if total_combinations > self.max_combinations:
            raise ValueError(
                f"joint space of {total_combinations} combinations exceeds the "
                f"brute-force limit of {self.max_combinations}"
            )
        best_assignments = None
        best_quality = -np.inf
        spaces = [list(profile.config_space) for profile in profiles]
        for combo in itertools.product(*spaces):
            size = sum(
                profile.predict_size(config) for profile, config in zip(profiles, combo)
            )
            if size > budget_mb:
                continue
            quality = sum(
                profile.objective_quality(config) for profile, config in zip(profiles, combo)
            )
            if quality > best_quality:
                best_quality = quality
                best_assignments = {
                    profile.name: config for profile, config in zip(profiles, combo)
                }
        if best_assignments is None:
            result = build_result(
                self.method_name, profiles, _fallback_min_assignments(profiles), budget_mb
            )
            result.feasible = False
            return result
        return build_result(self.method_name, profiles, best_assignments, budget_mb)


def _continuous_quality(profile: ObjectProfile, g: float, p: float) -> float:
    """Evaluate the detail-weighted quality model at a continuous (g, p) point."""
    weight = getattr(profile, "detail_weight", 1.0)
    model = profile.quality_model
    if isinstance(model, QualityModel):
        return weight * float(model.qmax - model.k / ((g + model.a) * (p + model.b)))
    return weight * float(
        model.predict(Configuration(max(int(round(g)), 2), max(int(round(p)), 1)))
    )


def _continuous_size(profile: ObjectProfile, g: float, p: float) -> float:
    """Evaluate the size model at a continuous (g, p) point."""
    model = profile.size_model
    if isinstance(model, SizeModel):
        return float(model.s0 + model.s1 * g * g + model.s2 * g * g * p * p)
    return float(model.predict(Configuration(max(int(round(g)), 2), max(int(round(p)), 1))))


class SLSQPSelector:
    """Continuous relaxation of equation (2) solved with SLSQP, then rounded.

    The optimisation variables are the continuous ``(g_i, p_i)`` of every
    object; the constraint is the shared size budget.  After the continuous
    solve, each object's configuration is rounded to the nearest discrete
    option and the result is repaired (downgraded greedily) if rounding
    violated the budget.  As the paper observes, the method is sensitive to
    its initial point and to the approximation error of the relaxation,
    which is what produces its occasionally unreasonable allocations.
    """

    method_name = "slsqp"

    def __init__(self, initial: str = "min") -> None:
        if initial not in {"min", "mid"}:
            raise ValueError("initial must be 'min' or 'mid'")
        self.initial = initial

    def select(self, profiles: list, budget_mb: float) -> SelectionResult:
        if not profiles:
            raise ValueError("select() needs at least one object profile")
        if budget_mb <= 0:
            raise ValueError("budget_mb must be positive")

        bounds = []
        x0 = []
        for profile in profiles:
            granularities = profile.config_space.granularities
            patches = profile.config_space.patch_sizes
            bounds.append((granularities[0], granularities[-1]))
            bounds.append((patches[0], patches[-1]))
            if self.initial == "min":
                x0.extend([granularities[0], patches[0]])
            else:
                x0.extend(
                    [
                        granularities[len(granularities) // 2],
                        patches[len(patches) // 2],
                    ]
                )

        def objective(x: np.ndarray) -> float:
            total = 0.0
            for index, profile in enumerate(profiles):
                total += _continuous_quality(profile, x[2 * index], x[2 * index + 1])
            return -total

        def budget_constraint(x: np.ndarray) -> float:
            total = 0.0
            for index, profile in enumerate(profiles):
                total += _continuous_size(profile, x[2 * index], x[2 * index + 1])
            return budget_mb - total

        solution = minimize(
            objective,
            np.asarray(x0, dtype=np.float64),
            method="SLSQP",
            bounds=bounds,
            constraints=[{"type": "ineq", "fun": budget_constraint}],
            options={"maxiter": 200, "ftol": 1e-7},
        )
        x = solution.x if solution.success else np.asarray(x0, dtype=np.float64)

        assignments = {}
        for index, profile in enumerate(profiles):
            assignments[profile.name] = self._round_to_space(
                profile, x[2 * index], x[2 * index + 1]
            )
        assignments = self._repair(profiles, assignments, budget_mb)
        return build_result(self.method_name, profiles, assignments, budget_mb)

    @staticmethod
    def _round_to_space(profile: ObjectProfile, g: float, p: float) -> Configuration:
        granularity = min(profile.config_space.granularities, key=lambda value: abs(value - g))
        patch = min(profile.config_space.patch_sizes, key=lambda value: abs(value - p))
        return Configuration(granularity, patch)

    @staticmethod
    def _repair(profiles: list, assignments: dict, budget_mb: float) -> dict:
        """Greedy downgrade until the rounded selection fits the budget."""
        by_name = {profile.name: profile for profile in profiles}

        def total_size(current: dict) -> float:
            return sum(
                by_name[name].predict_size(config) for name, config in current.items()
            )

        while total_size(assignments) > budget_mb:
            best_choice = None
            best_loss_rate = np.inf
            for profile in profiles:
                current_config = assignments[profile.name]
                current_size = profile.predict_size(current_config)
                current_quality = profile.objective_quality(current_config)
                for config in profile.config_space:
                    size_gain = profile.predict_size(config) - current_size
                    if size_gain >= 0:
                        continue
                    quality_loss = current_quality - profile.objective_quality(config)
                    loss_rate = quality_loss / (-size_gain)
                    if loss_rate < best_loss_rate:
                        best_loss_rate = loss_rate
                        best_choice = (profile.name, config)
            if best_choice is None:
                break
            assignments[best_choice[0]] = best_choice[1]
        return assignments
